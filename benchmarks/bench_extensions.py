"""Benches for the library extensions: adaptivity and energy economics."""

from repro.experiments.ablations import (
    extension_adaptive,
    extension_energy,
    extension_sensitivity,
)


def bench_extension_adaptive(benchmark, report):
    result = benchmark(extension_adaptive)
    report("extension-adaptive", result.render())
    rows = result.row_map()
    # adaptation must recover a solid chunk of the throttle's damage
    assert rows["adaptive"][1] < 0.85 * rows["static DP1"][1]
    assert rows["adaptive"][3] >= 1
    benchmark.extra_info["recovered_fraction"] = (
        1 - rows["adaptive"][1] / rows["static DP1"][1]
    )


def bench_extension_energy(benchmark, report):
    result = benchmark(extension_energy)
    report("extension-energy", result.render())
    rows = result.row_map()
    # GPUs beat the CPU on joules per update; collaboration costs extra
    # energy for its speed
    assert rows["2080S"][4] < rows["6242"][4]
    assert rows["6242-2080S"][3] > rows["2080S"][3]
    assert rows["6242-2080S"][1] < rows["2080S"][1]
    benchmark.extra_info["joules_per_mupdate"] = {
        r[0]: r[4] for r in result.rows
    }


def bench_extension_sensitivity(benchmark, report):
    result = benchmark.pedantic(extension_sensitivity, rounds=1, iterations=1)
    report("sensitivity", result.render())
    util_i = result.headers.index("netflix-utilization")
    assert all(row[util_i] > 0.8 for row in result.rows)
