"""Table 6: the MovieLens-20m limitation (comm ~ compute)."""

from repro.experiments.figures import table6


def bench_table6_movielens_limitation(benchmark, report):
    result = benchmark(table6)
    report("table6", result.render())

    single = result.extra["totals"]["single"]
    dual = result.extra["totals"]["dual"]
    # adding a whole second GPU saves well under half (paper: 0.559->0.449)
    assert dual < single
    assert dual / single > 0.6

    benchmark.extra_info["single_gpu_s"] = single
    benchmark.extra_info["dual_gpu_s"] = dual
    benchmark.extra_info["saving"] = 1 - dual / single
