"""Table 4: computing power and utilization across datasets."""

import pytest

from repro.experiments.figures import table4


def bench_table4_computing_power(benchmark, report):
    result = benchmark(table4)
    report("table4", result.render())

    util = dict(zip(result.column("dataset"), result.column("utilization")))
    # paper shape: >85% Netflix/R2, mid on R1, lowest on MovieLens
    assert util["Netflix"] > 0.8
    assert util["R2"] > 0.8
    assert 0.35 < util["R1"] < 0.75
    assert util["MovieLens-20m"] == min(util.values())

    # exact Table 4 single-processor anchors
    rows = result.row_map()
    assert rows["Netflix"][5] == pytest.approx(2_592_493_089, rel=0.005)
    assert rows["R2"][5] == pytest.approx(1_172_502_951, rel=0.005)

    benchmark.extra_info["utilization"] = util
