"""Figure 8: 20-epoch phase stacks under DP0 / DP1 / DP2."""

from repro.experiments.figures import fig8


def bench_fig8_partition_strategies(benchmark, report):
    result = benchmark(fig8)
    report("fig8", result.render())

    red = result.extra["reductions"]
    # paper: DP1 cuts ~12.2% on Netflix-4w, ~10% on R2-4w; DP2 ~12.1% on R1*-4w
    assert 0.05 < red[("Netflix", 4, "dp1")] < 0.25
    assert 0.05 < red[("R2", 4, "dp1")] < 0.20
    assert red[("R1*", 4, "dp2")] > 0.05

    benchmark.extra_info["reductions"] = {
        f"{ds}-{n}w-{s}": round(v, 4) for (ds, n, s), v in red.items()
    }
