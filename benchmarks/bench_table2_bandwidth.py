"""Table 2: runtime memory bandwidth, independent worker vs DP0."""

import pytest

from repro.experiments.figures import table2


def bench_table2_bandwidth(benchmark, report):
    result = benchmark(table2)
    report("table2", result.render())
    for worker, iw_model, dp0_model, iw_paper, dp0_paper in result.rows:
        assert iw_model == pytest.approx(iw_paper, rel=0.01), worker
        assert dp0_model > iw_model  # the partition boost direction
    benchmark.extra_info["workers"] = [row[0] for row in result.rows]
