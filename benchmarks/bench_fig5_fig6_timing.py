"""Figures 5 and 6: epoch timing sequences and the async pipeline."""

import pytest

from repro.experiments.figures import fig5_timing_sequences, fig6_async_pipeline


def bench_fig5_timing_sequences(benchmark, report):
    result = benchmark(fig5_timing_sequences)
    rendered = result.render()
    for label, art in result.extra["gantt"].items():
        rendered += f"\n  -- {label} --\n" + "\n".join(
            f"  {l}" for l in art.splitlines()
        )
    report("fig5", rendered)
    times = result.column("epoch_time_s")
    assert times[0] > times[1] > times[2]  # original > DP1 > DP2
    benchmark.extra_info["epoch_times_s"] = times


def bench_fig6_async_pipeline(benchmark, report):
    result = benchmark(lambda: fig6_async_pipeline(streams=4))
    report("fig6", result.render())
    exposed = result.column("exposed_comm_s")
    # the 1/streams law (paper Figure 6's caption)
    assert exposed[3] == pytest.approx(exposed[0] / 4, rel=0.05)
    benchmark.extra_info["exposed_comm_s"] = exposed
