"""Microbenchmarks of the numeric substrate's hot kernels.

These complement the paper-table benches: they measure the real NumPy
SGD throughput (this host's "computing power" in the paper's Eq. 8
sense), the communication buffers' copy discipline, and the FP16 codec.

The workload is :func:`repro.obs.bench.kernel_workload` — the same
pinned synthetic matrix the ``repro bench`` suite measures, so
pytest-benchmark numbers and ``BENCH_train.json`` entries describe the
same work.
"""

import numpy as np

from repro.core.comm import PullBuffer
from repro.core.compression import compress_fp16, decompress_fp16
from repro.mf.kernels import ConflictPolicy, sgd_epoch
from repro.mf.model import MFModel
from repro.obs.bench import kernel_workload as _data


def bench_sgd_epoch_atomic(benchmark):
    ratings = _data()
    model = MFModel.init_for(ratings, 32, seed=0)
    benchmark(
        sgd_epoch, model, ratings, 0.005, 0.01, 4096, ConflictPolicy.ATOMIC
    )
    benchmark.extra_info["updates_per_round"] = ratings.nnz
    benchmark.extra_info["host_updates_per_s"] = (
        ratings.nnz / benchmark.stats.stats.mean
    )


def bench_sgd_epoch_last_write(benchmark):
    ratings = _data()
    model = MFModel.init_for(ratings, 32, seed=0)
    benchmark(
        sgd_epoch, model, ratings, 0.005, 0.01, 4096, ConflictPolicy.LAST_WRITE
    )
    benchmark.extra_info["updates_per_round"] = ratings.nnz


def bench_fp16_roundtrip(benchmark):
    arr = np.random.default_rng(0).uniform(0.01, 2.0, (128, 20_000)).astype(np.float32)

    def roundtrip():
        return decompress_fp16(compress_fp16(arr))

    out = benchmark(roundtrip)
    assert out.dtype == np.float32
    benchmark.extra_info["mbytes"] = arr.nbytes / 1e6


def bench_pull_buffer_cycle(benchmark):
    q = np.random.default_rng(0).uniform(0.0, 1.0, (64, 30_000)).astype(np.float32)
    buf = PullBuffer(q.shape)

    def cycle():
        buf.deposit(q)
        return buf.read()

    benchmark(cycle)
    benchmark.extra_info["mbytes"] = q.nbytes / 1e6


def bench_partition_rows(benchmark):
    from repro.data.grid import partition_rows

    ratings = _data(nnz=120_000, seed=3)
    parts = benchmark(partition_rows, ratings, [0.1, 0.2, 0.3, 0.4])
    assert sum(p.nnz for p in parts) == ratings.nnz
