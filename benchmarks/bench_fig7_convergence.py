"""Figure 7: convergence rate and training speed vs FPSGD / CuMF_SGD.

This is the numeric-plane experiment (real SGD on scaled datasets), so
it is the slowest bench; it runs one round.
"""

from repro.experiments.figures import fig7


def bench_fig7_convergence(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig7(max_nnz=25_000, epochs=20, k=12, seed=7),
        rounds=1,
        iterations=1,
    )
    report("fig7", result.render())

    by = {(r[0], r[1]): r for r in result.rows}
    for ds in ("Netflix", "R1", "R2"):
        # HCC is fastest; FPSGD slowest (Figure 7d-f ordering)
        assert by[(ds, "FPSGD")][4] > by[(ds, "cuMF_SGD")][4] >= 1.0
    # headline factors (paper: 2.3x and 2.9x vs CuMF_SGD)
    assert 1.5 < by[("Netflix", "cuMF_SGD")][4] < 3.5
    assert 2.0 < by[("R2", "cuMF_SGD")][4] < 4.0

    for ds, methods in result.extra["curves"].items():
        for name, series in methods.items():
            assert series["rmse"][-1] < series["rmse"][0], (ds, name)

    benchmark.extra_info["speedups_vs_cumf"] = {
        ds: by[(ds, "cuMF_SGD")][4] for ds in ("Netflix", "R1", "R2")
    }
