"""Figure 9: computing power vs system scale (stacked per worker)."""

from repro.experiments.figures import fig9


def bench_fig9_worker_scaling(benchmark, report):
    result = benchmark(fig9)
    report("fig9", result.render())

    for ds in ("Netflix", "R2"):
        by_scale = {}
        for row in result.rows:
            if row[0] == ds:
                by_scale[row[1]] = row[5]
        scales = sorted(by_scale)
        assert all(by_scale[b] > by_scale[a] for a, b in zip(scales, scales[1:])), ds

    eff = result.extra["worker_efficiency"]
    netflix_ordinary = [
        e for (ds, w), e in eff.items() if ds == "Netflix" and "cpu0w" not in w
    ]
    assert min(netflix_ordinary) > 0.7  # paper: >80% of own power
    r1_vals = [e for (ds, _), e in eff.items() if ds == "R1"]
    assert max(r1_vals) < 0.7           # paper: ~45% on R1

    benchmark.extra_info["netflix_worker_efficiency"] = {
        w: round(e, 3) for (ds, w), e in eff.items() if ds == "Netflix"
    }
