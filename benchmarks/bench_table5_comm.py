"""Table 5: communication time under COMM / COMM-P and each strategy."""

import pytest

from repro.experiments.figures import table5


def bench_table5_communication(benchmark, report):
    result = benchmark(table5)
    report("table5", result.render())

    rows = {(r[0], r[1], r[2]): r for r in result.rows}
    # Q-only speedup ordering: Netflix (~18x) >> R2 (~7.5x) > R1 (~2.9x)
    assert rows[("COMM", "Netflix", "Q")][4] > rows[("COMM", "R2", "Q")][4]
    assert rows[("COMM", "R2", "Q")][4] > rows[("COMM", "R1", "Q")][4]
    assert rows[("COMM", "R1", "Q")][4] == pytest.approx(2.7, rel=0.2)
    # FP16 doubles the Q-only saving
    for ds in ("Netflix", "R1", "R2"):
        q, half = rows[("COMM", ds, "Q")][3], rows[("COMM", ds, "half-Q")][3]
        assert q / half == pytest.approx(2.0, rel=0.05)
    # COMM ~7x faster than ps-lite COMM-P
    ratio = rows[("COMM-P", "Netflix", "P&Q")][3] / rows[("COMM", "Netflix", "P&Q")][3]
    assert 5.5 < ratio < 8.5

    benchmark.extra_info["q_only_speedups"] = {
        ds: rows[("COMM", ds, "Q")][4] for ds in ("Netflix", "R1", "R2")
    }
