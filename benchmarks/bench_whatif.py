"""What-if platform sweeps: GPU counts, interconnects, channel contention."""

import pytest

from repro.data.datasets import MOVIELENS_20M, NETFLIX
from repro.experiments.whatif import (
    sweep_channel_contention,
    sweep_gpu_count,
    sweep_interconnect,
)


def bench_whatif_gpu_count(benchmark, report):
    rows = benchmark(lambda: sweep_gpu_count(MOVIELENS_20M, max_gpus=6))
    lines = [f"{r.label:30s} {r.total_time:7.3f}s  util {r.utilization:6.1%}" for r in rows]
    report("whatif-gpu-count", "[whatif] GPUs added to MovieLens-20m\n" + "\n".join(lines))
    times = [r.total_time for r in rows]
    # the generalized Table 6: scaling flattens, then reverses
    assert min(times) == min(times[2:5])
    assert times[5] > min(times)


def bench_whatif_interconnect(benchmark, report):
    rows = benchmark(lambda: sweep_interconnect(MOVIELENS_20M))
    lines = [f"{r.label:30s} {r.total_time:7.3f}s" for r in rows]
    report("whatif-interconnect", "[whatif] interconnect generations\n" + "\n".join(lines))
    by = {r.label: r.total_time for r in rows}
    assert by["2x 2080S over nvlink"] < by["2x 2080S over pcie4"] < by["2x 2080S over pcie3"]


def bench_whatif_contention(benchmark, report):
    rows = benchmark(lambda: sweep_channel_contention(MOVIELENS_20M, max_gpus=3))
    lines = [f"{r.label:32s} {r.total_time:7.3f}s  util {r.utilization:6.1%}" for r in rows]
    report("whatif-contention", "[whatif] exclusive slots vs one shared link\n" + "\n".join(lines))
    by = {r.label: r.total_time for r in rows}
    # Figure 2's caveat quantified: a shared link breaks worker scaling
    assert by["3x 2080S, shared link"] > by["3x 2080S, exclusive slots"]
    assert by["3x 2080S, shared link"] > 0.9 * by["1x 2080S, shared link"]


def bench_whatif_netflix_scales_clean(benchmark, report):
    rows = benchmark(lambda: sweep_gpu_count(NETFLIX, max_gpus=4))
    times = [r.total_time for r in rows]
    report(
        "whatif-netflix",
        "[whatif] GPUs added to Netflix (compute-bound: clean scaling)\n"
        + "\n".join(f"{r.label:30s} {r.total_time:7.3f}s" for r in rows),
    )
    assert times[3] < 0.5 * times[0]
