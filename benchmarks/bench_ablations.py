"""Ablation benches: the design-choice sweeps DESIGN.md calls out."""

import pytest

from repro.experiments.ablations import (
    ablate_heterogeneous_baselines,
    ablate_lambda,
    ablate_latent_dim,
    ablate_streams,
    extension_q_rotate,
)


def bench_ablation_streams(benchmark, report):
    result = benchmark(lambda: ablate_streams(max_streams=6))
    report("ablate-streams", result.render())
    epochs = result.column("epoch_ms")
    assert all(b <= a + 1e-9 for a, b in zip(epochs, epochs[1:]))
    benchmark.extra_info["epoch_ms_by_streams"] = epochs


def bench_ablation_lambda(benchmark, report):
    result = benchmark(ablate_lambda)
    report("ablate-lambda", result.render())
    strategies = result.column("chosen_strategy")
    assert "dp1" in strategies and "dp2" in strategies
    benchmark.extra_info["strategies"] = strategies


def bench_ablation_latent_dim(benchmark, report):
    result = benchmark(lambda: ablate_latent_dim(dims=(16, 32, 64, 128)))
    report("ablate-k", result.render())
    fr = result.column("comm_fraction")
    assert fr[0] == pytest.approx(fr[-1], rel=0.1)  # k-invariance (Eq. 2)


def bench_ablation_baselines(benchmark, report):
    result = benchmark(ablate_heterogeneous_baselines)
    report("ablate-baselines", result.render())
    rows = result.row_map()
    assert rows["DSGD (equal blocks)"][2] > 3.0
    benchmark.extra_info["dsgd_equal_vs_hcc"] = rows["DSGD (equal blocks)"][2]


def bench_extension_q_rotate(benchmark, report):
    result = benchmark(extension_q_rotate)
    report("extension-q-rotate", result.render())
    by = {(r[0], r[1]): r[2] for r in result.rows}
    assert by[(4, "Q-rotate")] < by[(4, "Q-only")]
    benchmark.extra_info["rotation_scaling_1_to_4"] = (
        by[(1, "Q-rotate")] / by[(4, "Q-rotate")]
    )
