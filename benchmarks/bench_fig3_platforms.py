"""Figure 3: platform survey (a) and prices (b).

Regenerates the motivation experiment: Netflix 20-epoch training time
on single CPUs/GPUs vs good and bad collaborations, and the hardware
price chart that makes the economics argument.
"""

from repro.experiments.figures import fig3a, fig3b


def bench_fig3a_platform_survey(benchmark, report):
    result = benchmark(fig3a)
    report("fig3a", result.render())
    rows = result.row_map()
    # headline shapes (asserted, not just printed)
    assert rows["6242-2080S"][2] < rows["2080S"][2]
    assert rows["2080-2080S"][2] < rows["2080S"][2]
    assert rows["6242-2080S(Bad communication)"][2] > rows["2080S"][2]
    benchmark.extra_info["best_collab_s"] = rows["2080-2080S"][2]
    benchmark.extra_info["single_gpu_s"] = rows["2080S"][2]


def bench_fig3b_prices(benchmark, report):
    result = benchmark(fig3b)
    report("fig3b", result.render())
    rows = result.row_map()
    assert rows["6242-2080S"][1] < rows["V100"][1] / 2.5
    benchmark.extra_info["combo_price"] = rows["6242-2080S"][1]
    benchmark.extra_info["v100_price"] = rows["V100"][1]
