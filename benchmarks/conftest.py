"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures;
``pytest benchmarks/ --benchmark-only`` times the generators and prints
the reproduced rows (the same rows/series the paper reports) at the end
of the session.
"""

from __future__ import annotations

import pytest

#: rendered experiment tables collected during the run, printed at exit
_REPORTS: dict[str, str] = {}


def record_report(experiment_id: str, rendered: str) -> None:
    """Stash a rendered experiment table for the session summary."""
    _REPORTS[experiment_id] = rendered


@pytest.fixture
def report():
    return record_report


def pytest_sessionfinish(session, exitstatus):
    if not _REPORTS:
        return
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is None:  # pragma: no cover
        return
    tr.section("reproduced paper tables & figures")
    for exp_id in sorted(_REPORTS):
        tr.write_line("")
        for line in _REPORTS[exp_id].splitlines():
            tr.write_line(line)
