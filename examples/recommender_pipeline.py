#!/usr/bin/env python
"""End-to-end recommender pipeline on HCC-MF.

The motivating application from the paper's introduction: a
recommendation system that must fill in the missing interest values of
the rating matrix (Figure 1).  This example:

1. generates a MovieLens-shaped dataset with a held-out test split,
2. trains the factor model collaboratively with HCC-MF,
3. evaluates test RMSE (the predicted pink cells of Figure 1), and
4. produces top-N recommendations for a few users.

Run:  python examples/recommender_pipeline.py
"""

import numpy as np

from repro import HCCMF, HCCConfig, MOVIELENS_20M, paper_workstation


def top_n(model, user: int, known_items: set[int], n: int = 5) -> list[tuple[int, float]]:
    """Highest-predicted unseen items for a user."""
    scores = model.P[user] @ model.Q
    order = np.argsort(scores)[::-1]
    recs = []
    for item in order:
        if int(item) in known_items:
            continue
        recs.append((int(item), float(scores[item])))
        if len(recs) == n:
            break
    return recs


def main() -> None:
    spec = MOVIELENS_20M.scaled(60_000)
    full = spec.generate(seed=42)
    train, test = full.split(test_fraction=0.1, seed=42)
    print(f"dataset: {full}  (train {train.nnz}, test {test.nnz})")

    config = HCCConfig(k=24, epochs=15, learning_rate=0.01, seed=42)
    hcc = HCCMF(paper_workstation(), MOVIELENS_20M, config, ratings=train)
    result = hcc.train(eval_data=test)

    print("\ntest RMSE per epoch:")
    for epoch, rmse in enumerate(result.rmse_history, 1):
        marker = " <- converged region" if epoch == len(result.rmse_history) else ""
        print(f"  epoch {epoch:2d}: {rmse:.4f}{marker}")

    model = result.model
    # note: the numeric plane may have transposed a wide matrix; for the
    # MovieLens shape (m > n) P stays the user matrix.
    seen_by_user: dict[int, set[int]] = {}
    for r, c in zip(train.rows.tolist(), train.cols.tolist()):
        seen_by_user.setdefault(r, set()).add(c)

    active_users = np.argsort(train.row_counts())[::-1][:3]
    print("\ntop-5 recommendations for the three most active users:")
    for user in active_users:
        recs = top_n(model, int(user), seen_by_user.get(int(user), set()))
        pretty = ", ".join(f"item {i} ({s:.2f})" for i, s in recs)
        print(f"  user {int(user):5d}: {pretty}")

    # sanity: predictions should live on the rating scale
    preds = model.predict(test.rows, test.cols)
    print(f"\nprediction range on test cells: "
          f"[{preds.min():.2f}, {preds.max():.2f}] "
          f"(rating scale {spec.rating_min}..{spec.rating_max})")


if __name__ == "__main__":
    main()
