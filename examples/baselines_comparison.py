#!/usr/bin/env python
"""Compare every SGD-MF parallelization family in the library.

Implements the paper's section-5 related-work discussion as a runnable
comparison: FPSGD (multi-core blocks), CuMF_SGD (GPU waves), DSGD
(synchronous strata), NOMAD (column passing), and HCC-MF (heterogeneous
parameter server), all on the same Netflix-shaped data:

* convergence per epoch for every method, plus candidate-ranking NDCG;
* DSGD's bucket effect on heterogeneous workers (modeled);
* NOMAD's message overhead vs HCC-MF's bulk transfers.

Run:  python examples/baselines_comparison.py
"""

from repro import HCCConfig, HCCMF, NETFLIX, paper_workstation
from repro.mf import DSGD, NOMAD, CuMFSGD, FPSGD, candidate_ndcg
from repro.mf.dsgd import dsgd_epoch_time


def main() -> None:
    epochs, k, lr = 8, 12, 0.01
    full = NETFLIX.scaled(30_000).generate(seed=5)
    train, test = full.split(0.15, seed=5)
    print(f"data: {full} (train/test split 85/15)\n")

    results = {}

    hcc = HCCMF(
        paper_workstation(16), NETFLIX,
        HCCConfig(k=k, epochs=epochs, learning_rate=lr, seed=5),
        ratings=train,
    ).train(eval_data=test)
    results["HCC-MF"] = (hcc.rmse_history, hcc.model)

    for name, algo in [
        ("FPSGD", FPSGD(k=k, threads=4, lr=lr, reg=NETFLIX.reg, seed=5)),
        ("CuMF_SGD", CuMFSGD(k=k, gpu_threads=4096, lr=lr, reg=NETFLIX.reg, seed=5)),
        ("DSGD", DSGD(k=k, workers=4, lr=lr, reg=NETFLIX.reg, seed=5)),
        ("NOMAD", NOMAD(k=k, workers=4, lr=lr, reg=NETFLIX.reg, seed=5)),
    ]:
        algo.fit(train, epochs=epochs, eval_data=test)
        results[name] = (algo.history.rmse, algo.model)
        if name == "NOMAD":
            nomad = algo

    print(f"{'method':10s} " + " ".join(f"ep{e + 1:><6d}"[1:] for e in range(epochs)))
    for name, (history, _) in results.items():
        print(f"{name:10s} " + " ".join(f"{r:6.3f}" for r in history))

    print("\nheld-out candidate-ranking NDCG (1.0 = perfect ordering):")
    for name, (_, model) in results.items():
        ndcg = candidate_ndcg(model, test, max_users=400, seed=5)
        print(f"  {name:10s} {ndcg:.3f}")

    # --- the section-5 critiques, quantified -------------------------
    import numpy as np

    platform = paper_workstation(16)
    rates = [w.update_rate(128, NETFLIX, corun=True) for w in platform.workers]
    p = len(rates)
    equal_blocks = np.full((p, p), NETFLIX.nnz / (p * p))
    t_dsgd = dsgd_epoch_time(equal_blocks, rates)
    t_hcc = HCCMF(platform, NETFLIX, HCCConfig(k=128, epochs=20)).train().epoch_cost.total
    print(f"\nDSGD equal split on the heterogeneous testbed: "
          f"{t_dsgd * 1e3:.0f} ms/epoch vs HCC-MF {t_hcc * 1e3:.0f} ms "
          f"({t_dsgd / t_hcc:.1f}x slower — the bucket effect)")

    msgs_per_epoch = nomad.column_messages / epochs
    print(f"NOMAD column messages: {msgs_per_epoch:,.0f}/epoch vs HCC-MF's "
          f"{2 * 4} bulk transfers — the 'huge communication overhead' of "
          f"section 5 is per-message software cost")


if __name__ == "__main__":
    main()
