#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs all eleven experiment generators (Figure 3 through Table 6) and
prints their rendered tables; pass ``--fast`` to shrink the numeric
Figure 7 run, or experiment ids to run a subset:

    python examples/reproduce_paper.py
    python examples/reproduce_paper.py --fast table4 fig8
"""

import sys
import time

from repro.experiments.figures import ALL_EXPERIMENTS, fig7


def main(argv: list[str]) -> None:
    fast = "--fast" in argv
    wanted = [a for a in argv if not a.startswith("-")]
    ids = wanted if wanted else list(ALL_EXPERIMENTS)

    unknown = set(ids) - set(ALL_EXPERIMENTS)
    if unknown:
        raise SystemExit(
            f"unknown experiment ids {sorted(unknown)}; "
            f"available: {sorted(ALL_EXPERIMENTS)}"
        )

    for exp_id in ids:
        generator = ALL_EXPERIMENTS[exp_id]
        t0 = time.perf_counter()
        if exp_id == "fig7" and fast:
            result = fig7(max_nnz=10_000, epochs=8, k=8)
        else:
            result = generator()
        elapsed = time.perf_counter() - t0
        print(result.render())
        if "gantt" in result.extra:
            for label, art in result.extra["gantt"].items():
                print(f"\n  -- {label} --")
                for line in str(art).splitlines():
                    print(f"  {line}")
        if "curves" in result.extra:
            from repro.experiments.plots import convergence_chart

            for dataset, curves in result.extra["curves"].items():
                print(f"\n  -- {dataset}: RMSE vs modeled time (Fig. 7d-f) --")
                for line in convergence_chart(curves, against="time").splitlines():
                    print(f"  {line}")
        print(f"\n  ({elapsed:.1f}s)\n{'=' * 78}\n")


if __name__ == "__main__":
    main(sys.argv[1:])
