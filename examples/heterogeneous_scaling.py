#!/usr/bin/env python
"""Scaling study: computing power as heterogeneous workers join (Fig. 9).

Adds the testbed's processors one at a time — 2080S, 6242, 2080, then
the time-shared 6242L — and prints how much of each worker's ideal
computing power the collaboration actually harvests, per dataset.

Run:  python examples/heterogeneous_scaling.py
"""

from repro import HCCConfig, HCCMF
from repro.data.datasets import NETFLIX, R1_STAR, YAHOO_R1, YAHOO_R2
from repro.experiments.platforms import workers_platform


def scale_study(spec, max_workers: int = 4) -> None:
    print(f"=== {spec.name} ===")
    previous_total = 0.0
    for n in range(1, max_workers + 1):
        platform = workers_platform(n)
        result = HCCMF(platform, spec, HCCConfig(k=128, epochs=20)).train()
        added = platform.workers[-1]
        gain = result.power - previous_total
        previous_total = result.power
        print(f"  {n} worker(s): {result.power / 1e6:8.1f} M updates/s "
              f"(ideal {result.ideal_power / 1e6:8.1f} M, "
              f"util {result.utilization:5.1%}) "
              f"— adding {added.name} contributed {gain / 1e6:+7.1f} M")
    print()


def main() -> None:
    for spec in (NETFLIX, YAHOO_R2):
        scale_study(spec)
    # R1: the paper's Figure 9(c) stops at three workers — the 4th
    # (time-shared) worker's extra sync merge cancels its capacity
    scale_study(YAHOO_R1, max_workers=3)
    scale_study(R1_STAR)

    print("paper shape: power rises with every worker; ordinary workers")
    print("contribute >80% of their own power on Netflix/R2, ~45% on R1.")


if __name__ == "__main__":
    main()
