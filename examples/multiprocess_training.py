#!/usr/bin/env python
"""Real shared-memory multi-process training (paper 3.5's architecture).

Unlike the other examples (which combine real numerics with the
calibrated platform model), this one runs HCC-MF's process architecture
for real on your CPUs: one OS process per worker, shared-memory
feature matrices, single-copy pull/push buffers, and the server's
delta merge.

Run:  python examples/multiprocess_training.py
"""

from repro import NETFLIX, SharedMemoryTrainer


def main() -> None:
    ratings = NETFLIX.scaled(40_000).generate(seed=7)
    print(f"training data: {ratings}\n")

    for n_workers in (1, 2, 4):
        trainer = SharedMemoryTrainer(
            ratings, k=16, n_workers=n_workers, lr=0.01, reg=0.01, seed=7
        )
        result = trainer.train(epochs=6)
        curve = " -> ".join(f"{r:.3f}" for r in result.rmse_history)
        print(f"{n_workers} worker process(es): "
              f"{result.elapsed_seconds:6.2f}s wall, "
              f"{result.updates_per_second / 1e3:8.0f} K updates/s")
        print(f"  rmse: {curve}\n")

    print("note: wall-clock scaling here depends on the host's cores and")
    print("NumPy's thread usage; the paper's CPU+GPU testbed timing lives")
    print("in the calibrated model (see examples/quickstart.py).")


if __name__ == "__main__":
    main()
