#!/usr/bin/env python
"""The full model lifecycle: tune, train, checkpoint, resume, fold in.

A downstream user's workflow beyond the paper's experiments:

1. hyper-parameter grid search on a validation split;
2. training with a decaying learning-rate schedule;
3. checkpoint to disk and resume for extra epochs;
4. fold a brand-new user into the trained model without retraining;
5. compare solver families (SGD vs ALS vs CCD++) at equal epochs.

Run:  python examples/model_lifecycle.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.checkpoint import Checkpoint, load_checkpoint, resume_hogwild, save_checkpoint
from repro.data.datasets import NETFLIX
from repro.mf.als import ALS
from repro.mf.ccd import CCDPlusPlus, fold_in_user
from repro.mf.schedules import InverseTimeDecay
from repro.mf.search import SearchSpace, grid_search
from repro.mf.sgd import HogwildSGD


def main() -> None:
    data = NETFLIX.scaled(25_000).generate(seed=11)
    print(f"data: {data}\n")

    # 1. hyper-parameter search ---------------------------------------
    space = SearchSpace(k=(8, 16), lr=(0.01, 0.02), reg=(0.01, 0.05))
    report = grid_search(data, space, epochs=8, seed=11)
    print("grid search (validation RMSE, best first):")
    for r in report.top(4):
        print(f"  k={r.params['k']:3d} lr={r.params['lr']:5.3f} "
              f"reg={r.params['reg']:5.3f} -> {r.val_rmse:.4f} "
              f"({r.epochs_run} epochs)")
    best = report.best.params

    # 2. train with a decaying schedule --------------------------------
    trainer = HogwildSGD(
        k=best["k"], reg=best["reg"], seed=11,
        lr_schedule=InverseTimeDecay(best["lr"], decay=0.15),
    )
    trainer.fit(data, epochs=8)
    print(f"\ntrained with inverse-time decay: final rmse "
          f"{trainer.history.final_rmse:.4f}")

    # 3. checkpoint and resume -----------------------------------------
    workdir = Path(tempfile.mkdtemp(prefix="hccmf-ckpt-"))
    ckpt = Checkpoint(
        model=trainer.model, epoch=8, rmse_history=trainer.history.rmse,
        config={"lr": best["lr"], "reg": best["reg"], "seed": 11,
                "batch_size": 4096},
    )
    save_checkpoint(ckpt, workdir / "model")
    resumed = resume_hogwild(load_checkpoint(workdir / "model"), data, extra_epochs=4)
    print(f"resumed +4 epochs: {ckpt.rmse_history[-1]:.4f} -> "
          f"{resumed.rmse_history[-1]:.4f} (epoch {resumed.epoch})")

    # 4. fold in a new user ---------------------------------------------
    rng = np.random.default_rng(5)
    new_items = rng.choice(data.n, size=8, replace=False)
    new_ratings = rng.uniform(3.5, 5.0, size=8).astype(np.float32)
    p_new = fold_in_user(resumed.model, new_items, new_ratings, reg=best["reg"])
    scores = p_new @ resumed.model.Q
    top = np.argsort(scores)[::-1][:5]
    print(f"new user folded in from 8 ratings; top-5 items: {top.tolist()}")

    # 5. solver families at equal epochs --------------------------------
    print("\nsolver families (5 epochs each):")
    for name, solver in (
        ("SGD (Hogwild)", HogwildSGD(k=best["k"], lr=best["lr"], reg=best["reg"], seed=11)),
        ("ALS", ALS(k=best["k"], reg=0.1, seed=11)),
        ("CCD++", CCDPlusPlus(k=best["k"], reg=0.05, seed=11)),
    ):
        solver.fit(data, epochs=5)
        curve = " -> ".join(f"{r:.3f}" for r in solver.history.rmse)
        print(f"  {name:14s} {curve}")
    print("\nclosed-form solvers win per epoch; SGD wins per second at")
    print("large k — which is why HCC-MF parallelizes SGD (docs/cost_model.md).")

    for p in workdir.iterdir():
        p.unlink()
    workdir.rmdir()


if __name__ == "__main__":
    main()
