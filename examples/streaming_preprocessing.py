#!/usr/bin/env python
"""Out-of-core preprocessing: the paper's step 1 for files that don't fit.

Full-scale rating files (R2 is ~9 GB of text) cannot be shuffled in
memory on a workstation.  This example writes a rating file, profiles
it in a single streaming pass, disk-shuffles it with bounded memory,
and trains from the shuffled file — the complete preprocessing pipeline
of paper Figure 4's steps 1-3, file-backed.

Run:  python examples/streaming_preprocessing.py
"""

import tempfile
from pathlib import Path

from repro.data.datasets import NETFLIX
from repro.data.io import load_text, save_text
from repro.data.streaming import (
    count_statistics,
    external_shuffle,
    stream_text_batches,
)
from repro.mf.sgd import HogwildSGD


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hccmf-streaming-"))
    raw = workdir / "ratings.txt"
    shuffled = workdir / "ratings.shuffled.txt"

    ratings = NETFLIX.scaled(60_000).generate(seed=3)
    save_text(ratings, raw)
    print(f"wrote {raw} ({raw.stat().st_size / 1e6:.1f} MB)")

    # single-pass statistics, no materialization
    stats = count_statistics(raw)
    print(f"\nstreamed stats: {stats.m:,} x {stats.n:,}, nnz {stats.nnz:,}, "
          f"mean rating {stats.mean:.2f}, nnz/(m+n) {stats.reuse_ratio:,.0f}")

    # the paper's preprocessing step 1, bounded-memory
    moved = external_shuffle(raw, shuffled, buckets=8, seed=3)
    print(f"external shuffle: {moved:,} lines through 8 disk buckets "
          f"(peak memory ~1/8 of the file)")

    # bounded-memory iteration: e.g. feeding an out-of-core trainer
    chunk_sizes = [b.nnz for b in stream_text_batches(shuffled, batch_size=16_384)]
    print(f"stream batches: {len(chunk_sizes)} chunks, "
          f"largest {max(chunk_sizes):,} entries")

    # train from the shuffled file
    data = load_text(shuffled)
    h = HogwildSGD(k=16, lr=0.01, reg=0.01, seed=3)
    h.fit(data, epochs=6)
    curve = " -> ".join(f"{r:.3f}" for r in h.history.rmse)
    print(f"\ntraining from the shuffled file: rmse {curve}")

    for p in (raw, shuffled):
        p.unlink()
    workdir.rmdir()
    print("\n(temporary files cleaned up)")


if __name__ == "__main__":
    main()
