#!/usr/bin/env python
"""Explore the communication-optimization strategies (paper 3.4).

Sweeps the three strategies — "Transmit Q only", "FP16 wire", and
"asynchronous computing-transmission" — over the paper's datasets and
shows how each changes the 20-epoch communication bill and the epoch
time, including the MovieLens limitation (Table 6 / section 4.6).

Run:  python examples/communication_tuning.py
"""

from repro import CommConfig, HCCConfig, HCCMF, TransmitMode
from repro.data.datasets import MOVIELENS_20M, NETFLIX, YAHOO_R1, YAHOO_R2
from repro.hardware.topology import paper_workstation


def sweep(spec) -> None:
    print(f"=== {spec.name}  (nnz/(m+n) = {spec.reuse_ratio:,.0f}; "
          f"the paper flags < 1,000 as comm-bound) ===")
    configs = [
        ("P&Q (no optimization)", CommConfig(transmit=TransmitMode.P_AND_Q)),
        ("Q only (Strategy 1)", CommConfig(transmit=TransmitMode.Q_ONLY)),
        ("Q + FP16 (Strategy 2)", CommConfig(transmit=TransmitMode.Q_ONLY, fp16=True)),
        ("Q + FP16 + 4 streams (Strategy 3)",
         CommConfig(transmit=TransmitMode.Q_ONLY, fp16=True, streams=4)),
    ]
    base_comm = None
    for label, comm in configs:
        result = HCCMF(
            paper_workstation(16), spec, HCCConfig(k=128, epochs=20, comm=comm)
        ).train()
        if base_comm is None:
            base_comm = result.comm_time
        print(f"  {label:36s} comm {result.comm_time:8.3f}s "
              f"({base_comm / result.comm_time:5.1f}x)  "
              f"epoch {result.epoch_cost.total * 1e3:7.2f} ms  "
              f"util {result.utilization:5.1%}")
    print()


def main() -> None:
    for spec in (NETFLIX, YAHOO_R1, YAHOO_R2, MOVIELENS_20M):
        sweep(spec)

    print("MovieLens limitation (Table 6): even with every optimization,")
    print("communication does not shrink with more workers, so adding a")
    print("second GPU barely helps on a dataset whose comm ~ compute.")


if __name__ == "__main__":
    main()
