#!/usr/bin/env python
"""Auto-tune the strategy stack and explore hypothetical hardware.

Two library extensions beyond the paper:

1. **Auto-tuning** — the paper hand-picks communication strategies per
   dataset; ``repro.core.autotune`` searches the space with the cost
   model and explains whether collaboration is worthwhile at all
   (section 3.4's nnz/(m+n) bound).
2. **What-if exploration** — the calibrated model prices hardware the
   paper never had: more GPUs, PCI-E 4.0, NVLink, or a hypothetical
   24 GB card that dodges R2's memory-pressure collapse.

Run:  python examples/autotuning_and_whatif.py
"""

from repro.core.autotune import autotune
from repro.data.datasets import MOVIELENS_20M, NETFLIX, YAHOO_R2
from repro.experiments.whatif import (
    gpu_pool,
    hypothetical_gpu,
    sweep_gpu_count,
    sweep_interconnect,
)
from repro.hardware.processor import Processor
from repro.hardware.topology import paper_workstation


def main() -> None:
    platform = paper_workstation(16)

    print("=== auto-tuning the strategy stack ===")
    for spec in (NETFLIX, MOVIELENS_20M):
        report = autotune(platform, spec)
        print(f"\n{spec.name}: best = {report.best.label} "
              f"({report.best.total_time:.3f}s / 20 epochs)")
        print(f"  {report.advice}")
        print("  top 4 candidates:")
        for cand in report.ranking[:4]:
            print(f"    {cand.label:22s} {cand.total_time:8.3f}s")

    print("\n=== what-if: GPUs added to a comm-bound dataset ===")
    for row in sweep_gpu_count(MOVIELENS_20M, max_gpus=6):
        bar = "#" * int(row.utilization * 40)
        print(f"  {row.label:26s} {row.total_time:6.3f}s  util {row.utilization:5.1%} {bar}")
    print("  -> the Table 6 limitation, generalized: scaling reverses "
          "once sync outweighs added capacity")

    print("\n=== what-if: interconnect generations ===")
    for row in sweep_interconnect(MOVIELENS_20M):
        print(f"  {row.label:26s} {row.total_time:6.3f}s")

    print("\n=== what-if: a hypothetical 24 GB card on R2 ===")
    real = Processor(gpu_pool("2080S", 1).workers[0].spec)
    big = Processor(hypothetical_gpu("2080S-24GB", base="2080S", memory_gb=24.0))
    r_real = real.update_rate(128, YAHOO_R2)
    r_big = big.update_rate(128, YAHOO_R2)
    print(f"  2080S (8 GB):      {r_real / 1e6:7.1f} M updates/s on R2")
    print(f"  2080S-24GB (hyp.): {r_big / 1e6:7.1f} M updates/s on R2 "
          f"({r_big / r_real:.1f}x — no device-memory pressure)")


if __name__ == "__main__":
    main()
