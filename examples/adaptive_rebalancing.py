#!/usr/bin/env python
"""Online load re-balancing under a runtime slowdown.

The paper's DP1 (Algorithm 1) runs once, before training — but a GPU
that thermally throttles mid-run turns a balanced partition into a
straggler party.  This example injects a 2x throttle on the 2080S at
epoch 5 and compares a static DP1 run against the adaptive controller
(`repro.core.adaptive`), which re-solves Eq. 6 from the observed epoch
times.

Run:  python examples/adaptive_rebalancing.py
"""

from repro.core.adaptive import SlowdownEvent, simulate_adaptive_run
from repro.data.datasets import NETFLIX
from repro.hardware.topology import paper_workstation


def spark(values, width: int = 50) -> str:
    """Crude per-epoch bar chart."""
    peak = max(values)
    return "\n".join(
        f"  epoch {i:2d} |{'#' * int(v / peak * width):<{width}}| {v * 1e3:6.1f} ms"
        for i, v in enumerate(values)
    )


def main() -> None:
    platform = paper_workstation(16)
    events = [SlowdownEvent(worker_index=2, epoch=5, factor=0.5)]
    print("scenario: the RTX 2080S throttles to half speed at epoch 5\n")

    static = simulate_adaptive_run(platform, NETFLIX, events, epochs=16, adaptive=False)
    adaptive = simulate_adaptive_run(platform, NETFLIX, events, epochs=16, adaptive=True)

    print("static DP1 partition (epoch times):")
    print(spark(static.epoch_totals))
    print(f"\nadaptive (re-partitioned at epochs {adaptive.repartition_epochs}):")
    print(spark(adaptive.epoch_totals))

    saving = 1 - adaptive.total_time / static.total_time
    print(f"\ntotals: static {static.total_time:.3f}s, "
          f"adaptive {adaptive.total_time:.3f}s ({saving:.0%} recovered)")
    print("\nAlgorithm 1 only needs measured epoch times, so the same")
    print("compensation loop the paper runs offline doubles as a runtime")
    print("controller — no new mechanism required.")


if __name__ == "__main__":
    main()
