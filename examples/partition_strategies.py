#!/usr/bin/env python
"""Visualize the DP0 / DP1 / DP2 data-partition strategies (paper 3.3).

Reruns the Figure 5 / Figure 8 scenario: the R1* dataset on the
4-worker heterogeneity platform, under each partition strategy,
printing per-worker phase breakdowns and ASCII timing sequences.

Run:  python examples/partition_strategies.py
"""

from repro import HCCConfig, HCCMF, PartitionStrategy, R1_STAR
from repro.experiments.platforms import workers_platform


def main() -> None:
    epochs = 20
    print(f"dataset: {R1_STAR.name}  m={R1_STAR.m:,} n={R1_STAR.n:,} "
          f"nnz={R1_STAR.nnz:,}\n")

    totals = {}
    for strategy in ("even", "dp0", "dp1", "dp2"):
        config = HCCConfig(
            k=128, epochs=epochs, partition=PartitionStrategy(strategy)
        )
        result = HCCMF(workers_platform(4), R1_STAR, config).train()
        totals[strategy] = epochs * result.epoch_cost.total

        print(f"=== {strategy.upper()} "
              f"(epoch {result.epoch_cost.total * 1e3:.1f} ms, "
              f"exposed sync {result.epoch_cost.exposed_sync * 1e3:.1f} ms) ===")
        for name, phases in result.phase_totals.items():
            print(f"  {name:16s} pull {phases['pull']:7.3f}s  "
                  f"compute {phases['computing']:7.3f}s  "
                  f"push+sync {phases['push']:7.3f}s")
        print("  timeline (one epoch):")
        first_epoch = [s for s in result.timeline.spans if s.epoch == 0]
        from repro.hardware.timeline import Timeline

        tl = Timeline()
        tl.extend(first_epoch)
        for line in tl.ascii_gantt(width=60).splitlines():
            print(f"    {line}")
        print()

    print("20-epoch totals:")
    for strategy, total in totals.items():
        print(f"  {strategy:5s}: {total:7.3f} s")
    print(f"\nDP1 vs DP0: {1 - totals['dp1'] / totals['dp0']:.1%} faster "
          f"(paper Figure 8: ~10-12%)")
    print(f"DP2 vs DP1: {1 - totals['dp2'] / totals['dp1']:.1%} faster "
          f"(paper Figure 8f: ~12%)")


if __name__ == "__main__":
    main()
