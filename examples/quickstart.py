#!/usr/bin/env python
"""Quickstart: train SGD-based MF collaboratively with HCC-MF.

Builds the paper's multi-CPU/GPU workstation model, generates a
Netflix-shaped synthetic rating matrix, trains for a few epochs, and
prints convergence, the derived data partition, and the platform
utilization — the three things HCC-MF is about.

Run:  python examples/quickstart.py
"""

from repro import HCCMF, HCCConfig, NETFLIX, paper_workstation


def main() -> None:
    # 1. the platform: 2x Xeon 6242 + RTX 2080 + RTX 2080 Super (paper 4.1)
    platform = paper_workstation(cpu0_threads=16)
    print("Platform:")
    print(platform.describe())

    # 2. the data: a laptop-scale rating matrix with Netflix's shape
    ratings = NETFLIX.scaled(50_000).generate(seed=0)
    print(f"\nTraining data: {ratings}")

    # 3. train: the framework shuffles, partitions (DP0 -> DP1 -> DP2 as
    #    the cost model dictates), and runs pull -> compute -> push -> sync
    config = HCCConfig(k=16, epochs=10, learning_rate=0.01, seed=0)
    hcc = HCCMF(platform, NETFLIX, config, ratings=ratings)
    result = hcc.train()

    print(f"\nPartition strategy: {result.plan.strategy} "
          f"(regime: {result.regime.value})")
    for worker, frac in zip(hcc.platform.workers, result.plan.fractions):
        print(f"  {worker.name:16s} gets {frac:6.1%} of the ratings")

    print("\nRMSE per epoch:")
    for epoch, rmse in enumerate(result.rmse_history, 1):
        print(f"  epoch {epoch:2d}: {rmse:.4f}")

    print(f"\nModeled full-scale training time: {result.total_time:.3f} s "
          f"for {result.epochs} epochs")
    print(f"Computing power: {result.power / 1e6:,.0f} M updates/s "
          f"({result.utilization:.0%} of the platform's ideal)")

    print("\nFirst epochs' timeline:")
    print(result.timeline.ascii_gantt(width=68))


if __name__ == "__main__":
    main()
