#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table & figure.

Run from the repository root:

    python scripts/generate_experiments_md.py > EXPERIMENTS.md

The content comes from :func:`repro.experiments.report.build_markdown_report`;
pass ``--fast`` to shrink the numeric Figure 7 run.
"""

import sys

from repro.experiments.report import build_markdown_report


def main(argv: list[str]) -> None:
    fig7_kwargs = None
    if "--fast" in argv:
        fig7_kwargs = {"max_nnz": 12_000, "epochs": 12, "k": 8}
    print(build_markdown_report(fig7_kwargs=fig7_kwargs), end="")


if __name__ == "__main__":
    main(sys.argv[1:])
