#!/usr/bin/env bash
# Pre-PR gate: hcclint + ruff + mypy + tier-1 pytest.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the pytest stage (lint/type gates only)
#
# ruff and mypy are part of the dev extra (pip install -e ".[dev]"); when
# they are not installed the stage is reported as SKIPPED rather than
# failing, so the gate still runs on minimal containers.  hcclint and
# pytest have no extra dependencies and always run.

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

failures=0

stage() {  # stage <name> <command...>
    local name="$1"; shift
    echo "== $name =="
    if "$@"; then
        echo "-- $name: OK"
    else
        echo "-- $name: FAILED"
        failures=$((failures + 1))
    fi
    echo
}

skipped() {
    echo "== $1 =="
    echo "-- $1: SKIPPED ($2)"
    echo
}

# 1. hcclint: the domain rules (docs/static_analysis.md)
stage "hcclint" python -m repro lint src

# 1b. hcclint over the telemetry plane alone (timing rules, HCC110)
stage "hcclint-obs" python -m repro lint src/repro/obs

# 2. race-check: dynamic P-row ownership + one-copy discipline proof
stage "race-check" python -m repro race-check --inject-overlap

# 2b. instrumented-run smoke: a tiny real training must produce a
# loadable Chrome trace (the telemetry plane's end-to-end guarantee)
obs_smoke() {
    local tmpdir trace metrics
    tmpdir="$(mktemp -d)" || return 1
    trace="$tmpdir/run.json"
    metrics="$tmpdir/run.jsonl"
    python -m repro train --nnz 2000 --epochs 2 --k 8 \
        --trace "$trace" --metrics "$metrics" \
        && python -m repro obs-report --trace "$trace" --metrics "$metrics" \
            > /dev/null
    local rc=$?
    rm -rf "$tmpdir"
    return "$rc"
}
stage "obs-smoke" obs_smoke

# 2c. engine-parity: the sim and process planes must execute the same
# stage sequence with the same per-epoch update counts (docs/engine.md)
stage "engine-parity" python -m repro engine-parity \
    --nnz 4000 --epochs 2 --k 8 --workers 2

# 2d. fault-smoke: kill a worker mid-run; recovery must redistribute its
# shard and converge within tolerance of the fault-free baseline
# (docs/resilience.md)
stage "fault-smoke" python -m repro fault-smoke \
    --nnz 4000 --epochs 4 --k 8 --workers 3 --barrier-timeout 5

# 2e. chaos-parity: a small seeded fault matrix through both planes —
# one scenario cross-plane, the rest sim-only invariants — plus a
# randomized sim-only sweep (docs/resilience.md)
stage "chaos-parity" python -m repro chaos-parity \
    --seed 0 --process-scenarios 1 --sim-scenarios 8

# 3. ruff (style/pyflakes), if installed
if command -v ruff >/dev/null 2>&1; then
    stage "ruff" ruff check src tests
elif python -c "import ruff" >/dev/null 2>&1; then
    stage "ruff" python -m ruff check src tests
else
    skipped "ruff" "not installed; pip install -e '.[dev]'"
fi

# 4. mypy (types), if installed
if command -v mypy >/dev/null 2>&1; then
    stage "mypy" mypy
elif python -c "import mypy" >/dev/null 2>&1; then
    stage "mypy" python -m mypy
else
    skipped "mypy" "not installed; pip install -e '.[dev]'"
fi

# 5. tier-1 tests
if [ "$fast" -eq 1 ]; then
    skipped "pytest" "--fast"
else
    stage "pytest" python -m pytest -x -q
fi

if [ "$failures" -gt 0 ]; then
    echo "check.sh: $failures stage(s) FAILED"
    exit 1
fi
echo "check.sh: all stages passed"
