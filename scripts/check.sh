#!/usr/bin/env bash
# Pre-PR gate: hcclint (+ flow rules) + dynamic checks + ruff + mypy + pytest.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the pytest stage (lint/type gates only)
#
# ruff and mypy are part of the dev extra (pip install -e ".[dev]"); when
# they are not installed the stage is reported as SKIPPED rather than
# failing, so the gate still runs on minimal containers.  hcclint and
# pytest have no extra dependencies and always run.
#
# Stages are classified as "lint" (static analysis, style, types) or
# "test" (dynamic checks and the tier-1 suite), and the exit code says
# which side broke:
#   0  everything passed
#   2  lint-stage failure(s) only
#   3  test-stage failure(s) only
#   4  both lint- and test-stage failures

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

lint_failures=0
test_failures=0
stage_names=()
stage_kinds=()
stage_results=()
stage_times=()

record() {  # record <name> <kind> <result> <seconds>
    stage_names+=("$1")
    stage_kinds+=("$2")
    stage_results+=("$3")
    stage_times+=("$4")
}

stage() {  # stage <lint|test> <name> <command...>
    local kind="$1" name="$2"; shift 2
    echo "== $name =="
    local start end rc
    start=$SECONDS
    "$@"
    rc=$?
    end=$SECONDS
    if [ "$rc" -eq 0 ]; then
        echo "-- $name: OK"
        record "$name" "$kind" "OK" "$((end - start))"
    else
        echo "-- $name: FAILED (exit $rc)"
        record "$name" "$kind" "FAILED" "$((end - start))"
        if [ "$kind" = "lint" ]; then
            lint_failures=$((lint_failures + 1))
        else
            test_failures=$((test_failures + 1))
        fi
    fi
    echo
}

skipped() {  # skipped <lint|test> <name> <reason>
    echo "== $2 =="
    echo "-- $2: SKIPPED ($3)"
    echo
    record "$2" "$1" "SKIPPED" 0
}

# 1. hcclint: the AST domain rules (docs/static_analysis.md)
stage lint "hcclint" python -m repro lint \
    --baseline .hcclint-baseline.json src

# 1b. hcclint over the telemetry plane alone (timing rules, HCC110)
stage lint "hcclint-obs" python -m repro lint src/repro/obs

# 1c. flow-lint: the flow-sensitive HCC2xx rules (CFG + dataflow over
# resource lifecycle, exception safety, dtype taint, stage protocol)
stage lint "flow-lint" python -m repro lint \
    --flow --select HCC2 --baseline .hcclint-baseline.json src

# 2. race-check: dynamic P-row ownership + one-copy discipline proof
stage test "race-check" python -m repro race-check --inject-overlap

# 2b. instrumented-run smoke: a tiny real training must produce a
# loadable Chrome trace (the telemetry plane's end-to-end guarantee)
obs_smoke() {
    local tmpdir trace metrics
    tmpdir="$(mktemp -d)" || return 1
    trace="$tmpdir/run.json"
    metrics="$tmpdir/run.jsonl"
    python -m repro train --nnz 2000 --epochs 2 --k 8 \
        --trace "$trace" --metrics "$metrics" \
        && python -m repro obs-report --trace "$trace" --metrics "$metrics" \
            > /dev/null
    local rc=$?
    rm -rf "$tmpdir"
    return "$rc"
}
stage test "obs-smoke" obs_smoke

# 2c. engine-parity: the sim and process planes must execute the same
# stage sequence with the same per-epoch update counts (docs/engine.md)
stage test "engine-parity" python -m repro engine-parity \
    --nnz 4000 --epochs 2 --k 8 --workers 2

# 2d. fault-smoke: kill a worker mid-run; recovery must redistribute its
# shard and converge within tolerance of the fault-free baseline
# (docs/resilience.md)
stage test "fault-smoke" python -m repro fault-smoke \
    --nnz 4000 --epochs 4 --k 8 --workers 3 --barrier-timeout 5

# 2e. bench-smoke: the pinned perf suite at smoke sizes must emit a
# schema-valid document (write_bench validates before writing,
# load_bench re-validates on read) and self-compare must pass clean
# (docs/observability.md).  Writes BENCH_smoke.json, not the committed
# full-suite BENCH_train.json baseline; CI uploads both.
bench_smoke() {
    python -m repro bench --quick --out BENCH_smoke.json \
        && python -m repro bench --compare BENCH_smoke.json \
            --against BENCH_smoke.json > /dev/null
}
stage test "bench-smoke" bench_smoke

# 2e'. serve-smoke: the serving plane's load-generation suite at smoke
# sizes must emit a schema-valid BENCH_serving document and self-compare
# clean (docs/serving.md).  Writes BENCH_serving_smoke.json, not the
# committed full-suite BENCH_serving.json baseline; CI uploads both.
serve_smoke() {
    python -m repro serve-bench --quick --out BENCH_serving_smoke.json \
        && python -m repro serve-bench --compare BENCH_serving_smoke.json \
            --against BENCH_serving_smoke.json > /dev/null
}
stage test "serve-smoke" serve_smoke

# 2f. chaos-parity: a small seeded fault matrix through both planes —
# one scenario cross-plane, the rest sim-only invariants — plus a
# randomized sim-only sweep (docs/resilience.md)
stage test "chaos-parity" python -m repro chaos-parity \
    --seed 0 --process-scenarios 1 --sim-scenarios 8

# 3. ruff (style/pyflakes), if installed
if command -v ruff >/dev/null 2>&1; then
    stage lint "ruff" ruff check src tests
elif python -c "import ruff" >/dev/null 2>&1; then
    stage lint "ruff" python -m ruff check src tests
else
    skipped lint "ruff" "not installed; pip install -e '.[dev]'"
fi

# 4. mypy (types), if installed
if command -v mypy >/dev/null 2>&1; then
    stage lint "mypy" mypy
elif python -c "import mypy" >/dev/null 2>&1; then
    stage lint "mypy" python -m mypy
else
    skipped lint "mypy" "not installed; pip install -e '.[dev]'"
fi

# 5. tier-1 tests
if [ "$fast" -eq 1 ]; then
    skipped test "pytest" "--fast"
else
    stage test "pytest" python -m pytest -x -q
fi

# ---------------------------------------------------------------------------
# per-stage summary table
echo "== summary =="
printf '%-14s %-5s %-7s %s\n' "stage" "kind" "result" "time"
printf '%-14s %-5s %-7s %s\n' "-----" "----" "------" "----"
for i in "${!stage_names[@]}"; do
    printf '%-14s %-5s %-7s %ss\n' \
        "${stage_names[$i]}" "${stage_kinds[$i]}" \
        "${stage_results[$i]}" "${stage_times[$i]}"
done
echo

if [ "$lint_failures" -gt 0 ] && [ "$test_failures" -gt 0 ]; then
    echo "check.sh: $lint_failures lint stage(s) and $test_failures test stage(s) FAILED"
    exit 4
elif [ "$test_failures" -gt 0 ]; then
    echo "check.sh: $test_failures test stage(s) FAILED"
    exit 3
elif [ "$lint_failures" -gt 0 ]; then
    echo "check.sh: $lint_failures lint stage(s) FAILED"
    exit 2
fi
echo "check.sh: all stages passed"
