"""The hcclint domain rules.

Each rule machine-checks one invariant the HCC-MF design depends on:

====== ================== ========================================================
id     name               invariant (paper anchor)
====== ================== ========================================================
HCC101 shm-lifecycle      every SharedMemory segment has a guaranteed
                          close()/unlink() path (3.5: named segments outlive
                          the process on crash)
HCC102 hot-copy           no hidden NumPy allocation in per-sample hot paths
                          (Eq. 2: T_comp multiplies by nnz)
HCC103 kernel-promotion   kernels stay FP32; no silent float64 promotion
                          (3.4 Strategy 2: FP32 compute / FP16 wire)
HCC104 frozen-dataclass   Spec/Plan/Config/Stats dataclasses are immutable
                          (plans are shared across worker processes)
HCC105 mutable-default    no mutable default arguments (shared-state hazard)
HCC106 pq-mutation        P/Q mutated only by kernels and the server sync
                          (3.4 Strategy 1: row-grid ownership)
HCC107 blocking-call      no sleep / unbounded join-wait in worker loops
                          (Eq. 1: the epoch ends at max_i{T_i})
HCC108 unit-mix           cost-model formulas never add bytes to seconds
                          (Eq. 1-7 unit discipline)
HCC109 hot-gather         advisory: fancy-index gathers inside hot loops
                          allocate per iteration
HCC110 wall-clock         advisory: timing code uses time.perf_counter(),
                          never time.time() (telemetry spans need one
                          monotonic cross-process time base)
HCC111 epoch-loop         epoch-loop orchestration lives in repro/engine/
                          only; the legacy plane modules are facades that
                          delegate to EpochEngine
HCC112 unbounded-wait     cross-process rendezvous (.wait/.join/.get) in
                          repro/parallel/ and repro/engine/ always carry a
                          timeout, so a dead peer surfaces as a detectable
                          failure instead of a hang
====== ================== ========================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.hotpath import (
    is_bounded_wait_module,
    is_cost_model_module,
    is_epoch_loop_guarded_module,
    is_kernel_module,
    is_pq_owner_module,
    is_timing_module,
    is_worker_loop_module,
)
from repro.analysis.lint import FileContext, LintIssue, Rule, Severity, rule

_CLEANUP_ATTRS = {"close", "unlink", "terminate", "shutdown"}
_OWNERSHIP_SINKS = {"enter_context", "callback", "push"}


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------
def _func_tail(func: ast.AST) -> str:
    """Last segment of a call target: ``a.b.c(...)`` -> ``c``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted(func: ast.AST) -> str:
    """Dotted call target when statically resolvable, else ''."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _contains_name(root: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name for node in ast.walk(root)
    )


def _name_used_as_value(root: ast.AST, name: str) -> bool:
    """True when *name* appears in *root* outside an attribute access.

    ``return shm`` transfers ownership of the object; ``return shm.name``
    only leaks a field of it and must not count as an escape.
    """
    parents = _parent_map(root)
    for node in ast.walk(root):
        if isinstance(node, ast.Name) and node.id == name:
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            return True
    return False


def _try_has_cleanup(node: ast.Try) -> bool:
    scopes: list[ast.AST] = list(node.finalbody) + list(node.handlers)
    for scope in scopes:
        for sub in ast.walk(scope):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _CLEANUP_ATTRS
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# HCC101: SharedMemory lifecycle
# ---------------------------------------------------------------------------
@rule
class ShmLifecycleRule(Rule):
    rule_id = "HCC101"
    name = "shm-lifecycle"
    severity = Severity.ERROR
    rationale = (
        "Named shared-memory segments survive process crashes (paper 3.5 maps "
        "pull/push buffers this way); every creation or attach needs a "
        "guaranteed close()/unlink() — a finally block, a context manager, an "
        "ExitStack registration, or an explicit ownership transfer."
    )

    _CREATORS = {"SharedMemory"}
    _FACTORY_TAILS = {"create", "attach"}

    def _is_creation(self, node: ast.Call) -> bool:
        tail = _func_tail(node.func)
        if tail in self._CREATORS:
            return True
        dotted = _dotted(node.func)
        return (
            tail in self._FACTORY_TAILS
            and "SharedArray" in dotted.split(".")
        )

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        for fn in ctx.iter_functions():
            creations = [
                node
                for node in _walk_shallow(fn)
                if isinstance(node, ast.Call) and self._is_creation(node)
            ]
            if not creations:
                continue
            parents = _parent_map(fn)
            for creation in creations:
                if not self._is_guarded(fn, creation, parents):
                    yield self.issue(
                        ctx,
                        creation,
                        "shared-memory segment created without a guaranteed "
                        "close()/unlink() (use try/finally, a context manager, "
                        "ExitStack, or return it to transfer ownership)",
                    )

    # -- guard detection ------------------------------------------------
    def _is_guarded(
        self, fn: ast.AST, creation: ast.Call, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        node: ast.AST = creation
        while node is not fn:
            parent = parents.get(node)
            if parent is None:
                break
            if isinstance(parent, ast.withitem):
                return True
            if isinstance(parent, ast.Call) and node in parent.args:
                if _func_tail(parent.func) in _OWNERSHIP_SINKS:
                    return True
            if isinstance(parent, ast.Return):
                return True
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                if self._assignment_guarded(fn, parent, parents):
                    return True
            if isinstance(parent, ast.Try) and _try_has_cleanup(parent):
                return True
            node = parent
        return False

    def _assignment_guarded(
        self, fn: ast.AST, assign: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        targets = (
            assign.targets if isinstance(assign, ast.Assign) else [assign.target]
        )
        for target in targets:
            # stored on an object: lifecycle owned by that object's close()
            if isinstance(target, ast.Attribute):
                return True
            if isinstance(target, ast.Name) and self._name_escapes(
                fn, target.id, assign, parents
            ):
                return True
        return False

    def _name_escapes(
        self,
        fn: ast.AST,
        name: str,
        assign: ast.AST,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        for node in _walk_shallow(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                if _name_used_as_value(node.value, name):
                    return True
            if isinstance(node, ast.withitem) and _contains_name(
                node.context_expr, name
            ):
                return True
            if isinstance(node, ast.Call) and _func_tail(node.func) in _OWNERSHIP_SINKS:
                if any(_contains_name(arg, name) for arg in node.args):
                    return True
        # acquisition immediately followed by a try whose cleanup releases it
        follower = self._next_statement(fn, assign, parents)
        return isinstance(follower, ast.Try) and _try_has_cleanup(follower)

    @staticmethod
    def _next_statement(
        fn: ast.AST, stmt: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> ast.AST | None:
        parent = parents.get(stmt)
        if parent is None:
            return None
        for field in ("body", "orelse", "finalbody"):
            block = getattr(parent, field, None)
            if isinstance(block, list) and stmt in block:
                idx = block.index(stmt)
                return block[idx + 1] if idx + 1 < len(block) else None
        return None


# ---------------------------------------------------------------------------
# HCC102: hot-path allocation
# ---------------------------------------------------------------------------
@rule
class HotCopyRule(Rule):
    rule_id = "HCC102"
    name = "hot-copy"
    severity = Severity.WARNING
    rationale = (
        "Hot-path functions run once per sample/batch, so a hidden NumPy copy "
        "multiplies by nnz and lands straight in T_comp (Eq. 2).  The paper's "
        "one-copy discipline (3.5) allows exactly one pull and one push copy "
        "per worker per epoch."
    )

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        for fn in ctx.iter_functions():
            if not ctx.function_is_hot(fn):
                continue
            for node in _walk_shallow(fn):
                if not isinstance(node, ast.Call):
                    continue
                tail = _func_tail(node.func)
                if tail == "copy" and isinstance(node.func, ast.Attribute):
                    if not node.args and not node.keywords:
                        yield self.issue(
                            ctx,
                            node,
                            ".copy() allocates in a hot path; hoist it out of "
                            "the per-sample loop or suppress with a comment "
                            "saying which one-copy budget it spends",
                        )
                elif tail == "astype":
                    if not any(
                        kw.arg == "copy"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                        for kw in node.keywords
                    ):
                        yield self.issue(
                            ctx,
                            node,
                            "astype() copies even when the dtype already "
                            "matches; pass copy=False in hot paths",
                        )
                elif _dotted(node.func) in {"np.array", "numpy.array"}:
                    yield self.issue(
                        ctx,
                        node,
                        "np.array() copies by default in a hot path; use "
                        "np.asarray() or pass copy=False",
                    )


@rule
class HotGatherRule(Rule):
    rule_id = "HCC109"
    name = "hot-gather"
    severity = Severity.INFO
    rationale = (
        "Fancy indexing (a[idx]) materializes a new array every loop "
        "iteration.  Batched SGD needs its gathers, so this is advisory — "
        "but each one should be a deliberate part of the kernel."
    )

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        for fn in ctx.iter_functions():
            if not ctx.function_is_hot(fn):
                continue
            seen: set[tuple[int, int]] = set()
            for loop in _walk_shallow(fn):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.Subscript)
                        and isinstance(node.ctx, ast.Load)
                        and isinstance(node.slice, (ast.Name, ast.Attribute))
                    ):
                        key = (node.lineno, node.col_offset)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.issue(
                            ctx,
                            node,
                            "fancy-index gather inside a hot loop allocates "
                            "a new array per iteration",
                        )


# ---------------------------------------------------------------------------
# HCC103: float64 promotion in kernel code
# ---------------------------------------------------------------------------
@rule
class KernelPromotionRule(Rule):
    rule_id = "HCC103"
    name = "kernel-promotion"
    severity = Severity.ERROR
    rationale = (
        "Training is FP32 with an FP16 wire (3.4 Strategy 2); a float64 "
        "intermediate doubles memory traffic and silently changes the "
        "numerics the FP16 round-trip was validated against."
    )

    _F64_STRINGS = {"float64", "f8", ">f8", "<f8"}

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not is_kernel_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "float64":
                yield self.issue(
                    ctx, node, "float64 in FP32 kernel code (use float32, or "
                    "suppress where a reduction deliberately widens)"
                )
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in self._F64_STRINGS
            ):
                yield self.issue(
                    ctx, node, f"dtype string {node.value!r} promotes FP32 "
                    "kernel data to float64"
                )
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                if isinstance(node.value, ast.Name) and node.value.id == "float":
                    yield self.issue(
                        ctx, node.value, "dtype=float means float64; kernel "
                        "code must say float32 explicitly"
                    )


# ---------------------------------------------------------------------------
# HCC104 / HCC105: dataclass and default hygiene
# ---------------------------------------------------------------------------
@rule
class FrozenDataclassRule(Rule):
    rule_id = "HCC104"
    name = "frozen-dataclass"
    severity = Severity.WARNING
    rationale = (
        "Spec/Plan/Config/Stats dataclasses cross process boundaries (plans "
        "are pickled to spawn workers); freezing makes aliasing across the "
        "server and workers safe by construction."
    )

    _SUFFIXES = ("Spec", "Plan", "Config", "Stats")

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(self._SUFFIXES):
                continue
            for deco in node.decorator_list:
                frozen = None
                if _func_tail(deco) == "dataclass" and not isinstance(deco, ast.Call):
                    frozen = False
                elif isinstance(deco, ast.Call) and _func_tail(deco.func) == "dataclass":
                    frozen = any(
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in deco.keywords
                    )
                if frozen is False:
                    # anchor on the decorator so a suppression comment
                    # directly above ``@dataclass`` covers the finding
                    yield self.issue(
                        ctx,
                        deco,
                        f"dataclass {node.name} looks like shared plan/spec "
                        "state; declare it @dataclass(frozen=True)",
                    )


@rule
class MutableDefaultRule(Rule):
    rule_id = "HCC105"
    name = "mutable-default"
    severity = Severity.ERROR
    rationale = (
        "A mutable default argument is shared across every call — in a "
        "framework whose workers are long-lived processes, that is hidden "
        "global state."
    )

    _MUTABLE_CALLS = {"list", "dict", "set"}
    _MUTABLE_NODES = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        for fn in ctx.iter_functions():
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, self._MUTABLE_NODES) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                )
                if bad:
                    yield self.issue(
                        ctx,
                        default,
                        f"mutable default argument in {fn.name}(); default to "
                        "None and allocate inside the function",
                    )


# ---------------------------------------------------------------------------
# HCC106: P/Q ownership
# ---------------------------------------------------------------------------
@rule
class PQMutationRule(Rule):
    rule_id = "HCC106"
    name = "pq-mutation"
    severity = Severity.WARNING
    rationale = (
        "Strategy 1 ('transmit Q only') holds because P rows are written "
        "only by their owning worker and Q only through the server's merge; "
        "a stray write from analysis/experiment code would reintroduce the "
        "races the row grid exists to prevent."
    )

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if is_pq_owner_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = self._pq_attr(target)
                if attr is not None:
                    yield self.issue(
                        ctx,
                        target,
                        f"direct mutation of .{attr} outside the kernel/server "
                        "modules; go through sgd_batch_update or the "
                        "ParameterServer buffer API",
                    )

    @staticmethod
    def _pq_attr(target: ast.AST) -> str | None:
        if isinstance(target, ast.Attribute) and target.attr in {"P", "Q"}:
            return target.attr
        if isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr in {"P", "Q"}:
                return value.attr
        return None


# ---------------------------------------------------------------------------
# HCC107: blocking calls in worker loops
# ---------------------------------------------------------------------------
@rule
class BlockingCallRule(Rule):
    rule_id = "HCC107"
    name = "blocking-call"
    severity = Severity.ERROR
    rationale = (
        "The epoch ends at max_i{T_i} (Eq. 1): one worker sleeping or "
        "waiting without a timeout stalls every other worker at the barrier "
        "and can deadlock the whole run on a crashed peer."
    )

    _WAIT_ATTRS = {"join", "wait", "acquire"}

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not is_worker_loop_module(ctx.module):
            return
        for fn in ctx.iter_functions():
            for node in _walk_shallow(fn):
                if not isinstance(node, ast.Call):
                    continue
                tail = _func_tail(node.func)
                if tail == "sleep":
                    yield self.issue(
                        ctx, node, "sleep() in a worker/server loop inflates "
                        "max_i{T_i}; use event- or barrier-based waiting"
                    )
                elif (
                    tail in self._WAIT_ATTRS
                    and isinstance(node.func, ast.Attribute)
                    and not isinstance(node.func.value, (ast.Constant, ast.JoinedStr))
                    and not node.args
                    and not any(kw.arg == "timeout" for kw in node.keywords)
                ):
                    yield self.issue(
                        ctx, node, f".{tail}() without a timeout can hang the "
                        "epoch forever if a peer worker dies; pass timeout="
                    )


# ---------------------------------------------------------------------------
# HCC108: bytes-vs-seconds unit mixing in cost-model code
# ---------------------------------------------------------------------------
@rule
class UnitMixRule(Rule):
    rule_id = "HCC108"
    name = "unit-mix"
    severity = Severity.WARNING
    rationale = (
        "Eq. 1-7 mix byte counts, bandwidths and times; adding a *_bytes "
        "quantity to a *_s/*_time quantity is always a bug (divide by a "
        "bandwidth first).  Units are inferred from naming conventions."
    )

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not is_cost_model_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = self._unit_of(node.left)
            right = self._unit_of(node.right)
            if left is not None and right is not None and left != right:
                yield self.issue(
                    ctx,
                    node,
                    f"adding a {left} quantity to a {right} quantity; convert "
                    "through a bandwidth/scale factor first",
                )

    def _unit_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self._unit_from_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._unit_from_name(node.attr)
        if isinstance(node, ast.Call):
            return self._unit_from_name(_func_tail(node.func))
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self._unit_of(node.left)
            right = self._unit_of(node.right)
            return left if left == right else None
        return None

    @staticmethod
    def _unit_from_name(name: str) -> str | None:
        n = name.lower()
        if n == "nbytes" or n.endswith("bytes"):
            return "bytes"
        if n.endswith(("_us",)):
            return "microseconds"
        if n.endswith(("_ms",)):
            return "milliseconds"
        if n.endswith(("_gbs", "_gbps")):
            return "GB/s"
        if n.endswith(("_s", "_sec", "_seconds", "_time")) or n in {
            "seconds",
            "elapsed",
        }:
            return "seconds"
        return None


# ---------------------------------------------------------------------------
# HCC110: wall-clock timestamps in timing code
# ---------------------------------------------------------------------------
@rule
class WallClockRule(Rule):
    rule_id = "HCC110"
    name = "wall-clock"
    severity = Severity.INFO
    rationale = (
        "Telemetry spans and probes are compared across processes, so they "
        "need one monotonic time base.  time.time() jumps under NTP slew — "
        "a span can end before it starts; time.monotonic() is a *different* "
        "base (and coarser on some platforms), so mixing it in misaligns "
        "spans against every other module; time.perf_counter() is the "
        "system-wide monotonic clock every timing module must share."
    )

    _BANNED = {
        "time.time": "time.time() is wall clock (non-monotonic); timing "
                     "code must use time.perf_counter()",
        "time.monotonic": "time.monotonic() is a second monotonic base; "
                          "timing code must share time.perf_counter()",
    }

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not is_timing_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                message = self._BANNED.get(_dotted(node.func))
                if message is not None:
                    yield self.issue(ctx, node, message)


# ---------------------------------------------------------------------------
# HCC111: epoch-loop orchestration belongs to the engine
# ---------------------------------------------------------------------------
@rule
class EpochLoopRule(Rule):
    rule_id = "HCC111"
    name = "epoch-loop"
    severity = Severity.WARNING
    rationale = (
        "Both planes execute one epoch pipeline — pull, compute, push, sync "
        "— and since the planes were unified that loop lives only in "
        "repro/engine/ (EpochEngine).  An epoch loop reappearing in a "
        "legacy plane module means the facade is growing its own "
        "orchestration again, and the two planes can silently diverge.  "
        "Sanctioned non-pipeline loops (the Q-rotation mode) carry an "
        "explicit suppression."
    )

    #: calls that mark a loop body as *driving* the training pipeline
    #: (iterating epochs to render a table or an axis is fine)
    _STAGE_TAILS = {
        "pull",
        "push",
        "sync",
        "compute",
        "begin_epoch",
        "push_and_sync",
        "run_epoch",
        "run_rotation_step",
    }

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not is_epoch_loop_guarded_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.For)
                and self._is_epoch_range(node.iter)
                and self._drives_stages(node)
            ):
                yield self.issue(
                    ctx,
                    node,
                    "epoch loop outside repro/engine/: the stage pipeline "
                    "lives in EpochEngine — delegate to it (or suppress a "
                    "sanctioned non-pipeline loop with a comment)",
                )

    @staticmethod
    def _is_epoch_range(iter_node: ast.AST) -> bool:
        """True for ``range(...)`` whose bound names an epoch count."""
        if not (
            isinstance(iter_node, ast.Call)
            and _func_tail(iter_node.func) == "range"
        ):
            return False
        for arg in iter_node.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    name = sub.id
                elif isinstance(sub, ast.Attribute):
                    name = sub.attr
                else:
                    continue
                if "epoch" in name.lower():
                    return True
        return False

    def _drives_stages(self, loop: ast.For) -> bool:
        for stmt in loop.body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and _func_tail(sub.func) in self._STAGE_TAILS
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# HCC112: unbounded cross-process rendezvous
# ---------------------------------------------------------------------------
@rule
class UnboundedWaitRule(Rule):
    rule_id = "HCC112"
    name = "unbounded-wait"
    severity = Severity.ERROR
    rationale = (
        "Fault tolerance starts at detection: a .wait()/.join()/.get() "
        "with no timeout in coordination code blocks forever when a peer "
        "process dies, so the failure never surfaces and recovery never "
        "runs.  Every cross-process rendezvous in repro/parallel/ and "
        "repro/engine/ must be bounded (the server's barrier timeout is "
        "the run's failure detector)."
    )

    _WAIT_ATTRS = {"wait", "join", "get"}

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not is_bounded_wait_module(ctx.module):
            return
        # worker-loop modules already get wait/join coverage from HCC107;
        # there this rule only adds the .get() check (no double reports)
        covered = is_worker_loop_module(ctx.module)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _func_tail(node.func)
            if tail not in self._WAIT_ATTRS:
                continue
            if covered and tail != "get":
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            # "sep".join(parts) / f"{x}".join(...) are string operations
            if isinstance(node.func.value, (ast.Constant, ast.JoinedStr)):
                continue
            if node.args or any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.issue(
                ctx,
                node,
                f".{tail}() without timeout= blocks forever on a dead peer "
                "process; bound every rendezvous so failure detection can run",
            )
