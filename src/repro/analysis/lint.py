"""hcclint: the AST lint framework (rule registry, suppression, runner).

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and
yields :class:`LintIssue` records.  Rules register themselves with the
:func:`rule` decorator; the runner applies every registered rule to
every file and drops issues suppressed by comment:

* ``# hcclint: disable=hot-copy`` on a line suppresses the named
  rule(s) for that line (comma-separate to suppress several; rule ids
  like ``HCC102`` work too, and ``all`` suppresses everything);
* ``# hcclint: disable-file=frozen-dataclass`` anywhere in the file
  suppresses the rule(s) for the whole file.

Suppression is deliberately explicit — a disabled rule leaves a visible
audit trail next to the code it excuses, which is the point: the lint
encodes paper invariants (section 3.4/3.5, Eq. 1-7), and every exception
should say why the invariant still holds.
"""

from __future__ import annotations

import ast
import enum
import os
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.hotpath import HOT_MARKER_RE, is_hot_module, module_key


class Severity(enum.IntEnum):
    """Issue severity; the CLI fails on >= WARNING by default."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r} (expected info, warning or error)"
            ) from None


@dataclass(frozen=True)
class LintIssue:
    """One finding: where, which rule, how bad, and why."""

    rule: str
    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


_SUPPRESS_RE = re.compile(
    r"#\s*hcclint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_\-, ]+)"
)


class FileContext:
    """One parsed source file plus everything rules need to scope checks."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.module = module_key(path)
        self._line_disable: dict[int, set[str]] = {}
        self._file_disable: set[str] = set()
        self._scan_suppressions()
        self._functions: list[ast.AST] | None = None

    # -- suppressions --------------------------------------------------
    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            names = {n.strip().lower() for n in m.group(2).split(",") if n.strip()}
            if m.group(1) == "disable-file":
                self._file_disable |= names
            else:
                # a comment-only line suppresses the line below it (the
                # eslint-disable-next-line idiom); a trailing comment
                # suppresses its own line
                target = lineno + 1 if text.lstrip().startswith("#") else lineno
                self._line_disable.setdefault(target, set()).update(names)

    def is_suppressed(self, rule_name: str, rule_id: str, line: int) -> bool:
        keys = {rule_name.lower(), rule_id.lower(), "all"}
        if keys & self._file_disable:
            return True
        return bool(keys & self._line_disable.get(line, set()))

    # -- function scoping ----------------------------------------------
    def iter_functions(self) -> Iterator[ast.AST]:
        """Every function/method definition in the file."""
        if self._functions is None:
            self._functions = [
                node
                for node in ast.walk(self.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        return iter(self._functions)

    def function_is_hot(self, node: ast.AST) -> bool:
        """Hot iff the module is a hot path or the def carries a marker."""
        if is_hot_module(self.module):
            return True
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(self.lines) and HOT_MARKER_RE.search(
                self.lines[lineno - 1]
            ):
                return True
        return False


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (``HCCnnn``), ``name`` (the slug used in
    suppression comments), ``severity``, and ``rationale`` (the paper
    invariant the rule protects — surfaced by ``repro lint --rules``).
    """

    rule_id = "HCC000"
    name = "abstract-rule"
    severity = Severity.WARNING
    rationale = ""

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:  # pragma: no cover
        raise NotImplementedError

    def issue(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
    ) -> LintIssue:
        return LintIssue(
            rule=self.name,
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}

#: Flow-sensitive rules (HCC2xx) live in their own registry: they cost a
#: CFG + fixpoint per function, so the default ``repro lint`` run stays
#: AST-only and ``--flow`` (or ``--select HCC2``) opts in.
_FLOW_REGISTRY: dict[str, Rule] = {}


def _register(cls: type, registry: dict[str, Rule]) -> type:
    instance = cls()
    for existing in (*_REGISTRY.values(), *_FLOW_REGISTRY.values()):
        if existing.rule_id == instance.rule_id:
            raise ValueError(f"duplicate rule id {instance.rule_id}")
    registry[instance.name] = instance
    return cls


def rule(cls: type) -> type:
    """Class decorator: instantiate and register an AST rule."""
    return _register(cls, _REGISTRY)


def flow_rule(cls: type) -> type:
    """Class decorator: instantiate and register a flow-sensitive rule."""
    return _register(cls, _FLOW_REGISTRY)


def all_rules() -> list[Rule]:
    """Registered AST rules, importing the built-in rule set on first use."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return sorted(_REGISTRY.values(), key=lambda r: r.rule_id)


def flow_rules() -> list[Rule]:
    """Registered flow-sensitive rules (the HCC2xx set)."""
    import repro.analysis.flow  # noqa: F401  (registration side effect)

    return sorted(_FLOW_REGISTRY.values(), key=lambda r: r.rule_id)


def filter_rules(
    rules: Sequence[Rule],
    select: str | None = None,
    ignore: str | None = None,
) -> list[Rule]:
    """Apply ``--select`` / ``--ignore`` tokens to a rule list.

    Tokens are comma-separated and case-insensitive; each matches a rule
    by id prefix (``HCC2`` selects every HCC2xx rule, ``HCC101`` exactly
    one) or by exact slug (``shm-lifecycle``).  ``select`` keeps only
    matching rules; ``ignore`` then drops matches.  Unknown tokens raise
    so typos fail loudly instead of silently disabling a gate.
    """

    def parse(spec: str | None) -> list[str]:
        if not spec:
            return []
        return [tok.strip().lower() for tok in spec.split(",") if tok.strip()]

    def matches(r: Rule, token: str) -> bool:
        return r.rule_id.lower().startswith(token) or r.name.lower() == token

    chosen = list(rules)
    for label, tokens in (("select", parse(select)), ("ignore", parse(ignore))):
        for token in tokens:
            if not any(matches(r, token) for r in rules):
                raise ValueError(f"--{label} token {token!r} matches no known rule")
        if not tokens:
            continue
        if label == "select":
            chosen = [r for r in chosen if any(matches(r, t) for t in tokens)]
        else:
            chosen = [r for r in chosen if not any(matches(r, t) for t in tokens)]
    return chosen


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[LintIssue]:
    """Lint one source string (`path` drives module-scoped rules)."""
    chosen = list(rules) if rules is not None else all_rules()
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [
            LintIssue(
                rule="parse-error",
                rule_id="HCC000",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    issues: list[LintIssue] = []
    for r in chosen:
        for issue in r.check(ctx):
            if not ctx.is_suppressed(issue.rule, issue.rule_id, issue.line):
                issues.append(issue)
    return sorted(issues, key=LintIssue.sort_key)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in {"__pycache__", ".git", ".ruff_cache"}
                )
                for fname in sorted(files):
                    if fname.endswith(".py"):
                        yield os.path.join(root, fname)
        elif path.endswith(".py") or os.path.isfile(path):
            yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] | None = None,
    on_file: Callable[[str], None] | None = None,
) -> list[LintIssue]:
    """Lint every ``.py`` file under ``paths``; issues sorted by location."""
    issues: list[LintIssue] = []
    for fpath in iter_python_files(paths):
        if on_file is not None:
            on_file(fpath)
        with open(fpath, "r", encoding="utf-8") as fh:
            source = fh.read()
        issues.extend(lint_source(source, fpath, rules))
    return sorted(issues, key=LintIssue.sort_key)


def max_severity(issues: Iterable[LintIssue]) -> Severity | None:
    """Highest severity present, or None for a clean run."""
    worst: Severity | None = None
    for issue in issues:
        if worst is None or issue.severity > worst:
            worst = issue.severity
    return worst
