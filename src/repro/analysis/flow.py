"""Flow-sensitive lint checkers (the HCC2xx rules) and their dataflow core.

Built on :mod:`repro.analysis.cfg`, this module provides:

* a generic forward **worklist fixpoint** (:func:`run_analysis`) over a
  user-supplied :class:`FlowAnalysis` (transfer / join / exception-edge
  hook), i.e. a small abstract interpreter over per-variable lattices;
* **reaching definitions** (:func:`reaching_definitions`) as the
  classic instance of the framework;
* lightweight **intraprocedural function summaries**
  (:func:`summarize_function` / :func:`module_summaries`) so helpers
  like a module-local ``_cleanup(shm)`` participate in the analysis
  without full interprocedural dataflow;
* the four flow-sensitive rules:

  ======= ==================== =========================================
  id      slug                 invariant
  ======= ==================== =========================================
  HCC201  flow-resource-leak   every SharedMemory / span-ring /
                               tmp-checkpoint acquisition reaches
                               close/unlink/os.replace on all normal
                               *and* exception paths
  HCC202  flow-exception-safety in engine/resilience code, no path may
                               raise after mutating P/Q or opening a
                               backend attempt without passing through
                               rollback / snapshot-restore / close
  HCC203  flow-dtype-taint     float64 taint must not flow through
                               assignments/calls into FP32 kernel
                               arguments
  HCC204  flow-stage-protocol  calls on ComputeBackend objects must
                               follow open→(pull→compute→push→sync)*
                               →finalize→close
  ======= ==================== =========================================

These registrations live in the *flow* registry (``lint.flow_rules()``),
not the default AST registry, because each rule pays for a CFG build
plus a fixpoint per function: ``repro lint --flow`` opts in, and the
``flow-lint`` stage of ``scripts/check.sh`` keeps ``src/`` clean.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.analysis.cfg import (
    CFG,
    EDGE_EXC,
    Block,
    build_cfg,
    stmt_atoms,
)
from repro.analysis.hotpath import is_exception_safety_module
from repro.analysis.lint import FileContext, LintIssue, Rule, Severity, flow_rule

__all__ = [
    "FlowAnalysis",
    "run_analysis",
    "reaching_definitions",
    "assigned_names",
    "ParamEffects",
    "FunctionSummary",
    "summarize_function",
    "module_summaries",
]


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """``self.backend.close`` -> ``"self.backend.close"`` (or ``""``)."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return ""
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _call_tail(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _calls_in(stmt: ast.stmt) -> list[ast.Call]:
    return [n for n in stmt_atoms(stmt) if isinstance(n, ast.Call)]


def _load_names_in(expr: ast.AST) -> set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def assigned_names(stmt: ast.stmt) -> set[str]:
    """Plain variable names this statement atom (re)binds."""
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names |= {
                    elt.id for elt in target.elts if isinstance(elt, ast.Name)
                }
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        if isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt.target, (ast.Tuple, ast.List)):
            names |= {
                elt.id for elt in stmt.target.elts if isinstance(elt, ast.Name)
            }
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
    for atom in stmt_atoms(stmt):
        if isinstance(atom, ast.NamedExpr) and isinstance(atom.target, ast.Name):
            names.add(atom.target.id)
    return names


# ---------------------------------------------------------------------------
# the dataflow engine
# ---------------------------------------------------------------------------
class FlowAnalysis:
    """A forward dataflow problem: override the four hooks below.

    States must be immutable values with structural equality (tuples,
    frozensets, dicts of frozensets compared by ``==``) — the engine
    re-runs ``transfer`` freely, so it must be pure.
    """

    def initial(self, cfg: CFG) -> Any:
        return {}

    def join(self, a: Any, b: Any) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def transfer(self, stmt: ast.stmt, state: Any) -> Any:  # pragma: no cover
        raise NotImplementedError

    def exc_state(self, stmt: ast.stmt, pre: Any, post: Any) -> Any:
        """State flowing along the exception edge (default: pre-state,
        i.e. the statement may raise before any of its effects land)."""
        return pre


def run_analysis(cfg: CFG, analysis: FlowAnalysis) -> dict[Block, Any]:
    """Worklist fixpoint; returns the *in*-state of every reached block."""
    in_states: dict[Block, Any] = {cfg.entry: analysis.initial(cfg)}
    worklist: deque[Block] = deque([cfg.entry])
    queued = {cfg.entry}
    while worklist:
        block = worklist.popleft()
        queued.discard(block)
        pre = in_states[block]
        stmt = block.stmt
        if stmt is None:
            post = exc = pre
        else:
            post = analysis.transfer(stmt, pre)
            exc = analysis.exc_state(stmt, pre, post)
        for succ, kind in block.succs:
            out = exc if kind == EDGE_EXC else post
            old = in_states.get(succ)
            new = out if old is None else analysis.join(old, out)
            if old is None or new != old:
                in_states[succ] = new
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)
    return in_states


class _ReachingDefs(FlowAnalysis):
    """var -> frozenset of line numbers whose definitions may reach here."""

    def join(self, a, b):
        merged = dict(a)
        for var, lines in b.items():
            merged[var] = merged.get(var, frozenset()) | lines
        return merged

    def transfer(self, stmt, state):
        names = assigned_names(stmt)
        if not names:
            return state
        new = dict(state)
        for name in names:
            new[name] = frozenset({stmt.lineno})
        return new


def reaching_definitions(
    func: ast.FunctionDef | ast.AsyncFunctionDef | CFG,
) -> dict[Block, dict[str, frozenset[int]]]:
    """Reaching definitions for one function (or a prebuilt CFG)."""
    cfg = func if isinstance(func, CFG) else build_cfg(func)
    return run_analysis(cfg, _ReachingDefs())


# ---------------------------------------------------------------------------
# function summaries
# ---------------------------------------------------------------------------
_RELEASE_TAILS = frozenset({"close", "unlink", "shutdown", "terminate", "release"})
_SINK_TAILS = frozenset(
    {"append", "add", "register", "callback", "push", "enter_context", "setdefault"}
)


@dataclass(frozen=True)
class ParamEffects:
    """What a function does with one of its parameters."""

    closes: bool = False
    stores: bool = False
    returns: bool = False


@dataclass(frozen=True)
class FunctionSummary:
    """Flow-relevant facts about one function, by cheap syntactic scan."""

    name: str
    params: tuple[str, ...] = ()
    effects: Mapping[str, ParamEffects] = field(default_factory=dict)
    returns_float64: bool = False

    def effect_for_arg(self, index: int, keyword: str | None = None) -> ParamEffects:
        name = keyword if keyword is not None else (
            self.params[index] if index < len(self.params) else None
        )
        if name is None or name not in self.effects:
            # unknown parameter (e.g. *args): assume ownership transfer
            return ParamEffects(stores=True)
        return self.effects[name]


def summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> FunctionSummary:
    """Summarise parameter lifecycle effects and float64-returning-ness."""
    params = tuple(
        a.arg
        for a in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs)
    )
    closes: set[str] = set()
    stores: set[str] = set()
    returns: set[str] = set()
    returns_f64 = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _RELEASE_TAILS
                and func.value.id in params
            ):
                closes.add(func.value.id)
            if isinstance(func, ast.Attribute) and func.attr in _SINK_TAILS:
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in params:
                        stores.add(arg.id)
        elif isinstance(node, ast.Assign):
            stored_to = any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            )
            if stored_to:
                stores |= _load_names_in(node.value) & set(params)
        elif isinstance(node, ast.Return) and node.value is not None:
            returns |= _load_names_in(node.value) & set(params)
            if _expr_is_float64(node.value, {}, None):
                returns_f64 = True
    effects = {
        p: ParamEffects(closes=p in closes, stores=p in stores, returns=p in returns)
        for p in params
    }
    return FunctionSummary(
        name=fn.name, params=params, effects=effects, returns_float64=returns_f64
    )


def module_summaries(tree: ast.Module) -> dict[str, FunctionSummary]:
    """Summaries for every top-level function in a module."""
    return {
        node.name: summarize_function(node)
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


# ---------------------------------------------------------------------------
# shared per-file caches + rule base
# ---------------------------------------------------------------------------
def _cfg_for(ctx: FileContext, fn: ast.AST) -> CFG:
    cache = ctx.__dict__.setdefault("_flow_cfg_cache", {})
    key = id(fn)
    if key not in cache:
        cache[key] = build_cfg(fn)
    return cache[key]


def _summaries_for(ctx: FileContext) -> dict[str, FunctionSummary]:
    cache = ctx.__dict__.get("_flow_summaries")
    if cache is None:
        cache = module_summaries(ctx.tree)
        ctx.__dict__["_flow_summaries"] = cache
    return cache


class _FlowRule(Rule):
    """Base: run a per-function CFG analysis, yield its findings."""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[LintIssue]:
        if not self.applies(ctx):
            return
        for fn in ctx.iter_functions():
            yield from self.check_function(ctx, fn, _cfg_for(ctx, fn))

    def check_function(
        self, ctx: FileContext, fn: ast.AST, cfg: CFG
    ) -> Iterator[LintIssue]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class _Loc:
    """A bare source location usable as the ``node`` of an issue."""

    lineno: int
    col_offset: int = 0


# ---------------------------------------------------------------------------
# HCC201: resource lifecycle on every path
# ---------------------------------------------------------------------------
_SHM_ROOTS = frozenset({"SharedArray", "SpanRing"})
_PATH_MOVE_FUNCS = frozenset({"os.replace", "os.rename", "shutil.move"})


def _classify_acquisition(value: ast.expr) -> str | None:
    """Is this expression a tracked resource acquisition? Returns a kind."""
    if not isinstance(value, ast.Call):
        return None
    tail = _call_tail(value)
    if tail == "SharedMemory":
        return "shared-memory segment"
    if tail in {"create", "attach"} and isinstance(value.func, ast.Attribute):
        parts = dotted_name(value.func).split(".")
        if _SHM_ROOTS & set(parts):
            return "shared segment"
    if isinstance(value.func, ast.Name) and value.func.id == "open":
        return "file handle"
    if tail in {"with_name", "with_suffix"}:
        for sub in ast.walk(value):
            if (
                isinstance(sub, ast.Constant)
                and isinstance(sub.value, str)
                and ".tmp" in sub.value
            ):
                return "tmp checkpoint path"
    return None


class _ResourceState:
    """Per-statement effect computation shared by transfer and reporting."""

    def __init__(self, summaries: Mapping[str, FunctionSummary]):
        self.summaries = summaries

    def effects(
        self, stmt: ast.stmt, state: Mapping[str, tuple[str, int]]
    ) -> tuple[dict[str, tuple[str, int]], set[str], list[tuple[str, tuple[str, int]]]]:
        """-> (post_state, acquired_vars, rebind_leaks)."""
        released: set[str] = set()
        escaped: set[str] = set()
        consumed_arg_nodes: set[int] = set()

        for call in _calls_in(stmt):
            func = call.func
            # v.close() / v.unlink() / ...
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _RELEASE_TAILS
                and func.value.id in state
            ):
                released.add(func.value.id)
            # os.replace(v, dst) and friends consume a tmp path
            if dotted_name(func) in _PATH_MOVE_FUNCS and call.args:
                first = call.args[0]
                if isinstance(first, ast.Name) and first.id in state:
                    released.add(first.id)
                    consumed_arg_nodes.add(id(first))
            arg_items: list[tuple[int, str | None, ast.expr]] = [
                (i, None, a) for i, a in enumerate(call.args)
            ] + [(-1, kw.arg, kw.value) for kw in call.keywords]
            for index, keyword, arg in arg_items:
                # handing off a bound release method (stack.callback(v.unlink))
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.attr in _RELEASE_TAILS
                    and arg.value.id in state
                ):
                    released.add(arg.value.id)
                if not (isinstance(arg, ast.Name) and arg.id in state):
                    continue
                consumed_arg_nodes.add(id(arg))
                kind = state[arg.id][0]
                if kind == "tmp checkpoint path" and (
                    isinstance(func, ast.Name) and func.id == "open"
                ):
                    continue  # open(tmp_path) reads the path, no ownership
                summary = (
                    self.summaries.get(func.id)
                    if isinstance(func, ast.Name)
                    else None
                )
                if summary is None:
                    escaped.add(arg.id)  # unknown callee: assume transfer
                    continue
                effect = summary.effect_for_arg(index, keyword)
                if effect.closes:
                    released.add(arg.id)
                elif effect.stores or effect.returns:
                    escaped.add(arg.id)
                # a clean helper leaves the resource open in the caller

        # returning / yielding / storing / aliasing / deleting escapes
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            escaped |= _load_names_in(stmt.value) & set(state)
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            escaped |= _load_names_in(stmt.value) & set(state)
        if isinstance(stmt, ast.Delete):
            escaped |= {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            } & set(state)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                escaped |= {
                    n.id
                    for n in ast.walk(item.context_expr)
                    if isinstance(n, ast.Name)
                    and isinstance(n.ctx, ast.Load)
                    and n.id in state
                    and id(n) not in consumed_arg_nodes
                }
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and getattr(
            stmt, "value", None
        ) is not None:
            direct_uses = {
                n.id
                for n in ast.walk(stmt.value)
                if isinstance(n, ast.Name)
                and isinstance(n.ctx, ast.Load)
                and n.id in state
                and id(n) not in consumed_arg_nodes
            }
            escaped |= direct_uses

        post = {
            v: info
            for v, info in state.items()
            if v not in released and v not in escaped
        }

        # (re)bindings: acquisitions start tracking, other binds drop it
        acquired: set[str] = set()
        leaks: list[tuple[str, tuple[str, int]]] = []
        bound = assigned_names(stmt)
        acq_var: str | None = None
        acq_kind: str | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            acq_kind = _classify_acquisition(stmt.value)
            if acq_kind is not None:
                acq_var = stmt.targets[0].id
        for name in bound:
            if name in post:  # rebound while still open: the old value leaks
                leaks.append((name, post[name]))
                del post[name]
        if acq_var is not None:
            post[acq_var] = (acq_kind, stmt.lineno)
            acquired.add(acq_var)
        return post, acquired, leaks


class _ResourceAnalysis(FlowAnalysis):
    def __init__(self, helper: _ResourceState):
        self.helper = helper

    def join(self, a, b):  # may-be-open: union keeps every leaky path
        merged = dict(a)
        merged.update({v: info for v, info in b.items() if v not in merged})
        return merged

    def transfer(self, stmt, state):
        post, _, _ = self.helper.effects(stmt, state)
        return post

    def exc_state(self, stmt, pre, post):
        # if the statement itself raises, its acquisition never happened,
        # but its releases are still treated as done (cleanup carve-out)
        post2, acquired, _ = self.helper.effects(stmt, pre)
        return {v: info for v, info in post2.items() if v not in acquired}


@flow_rule
class FlowResourceLeakRule(_FlowRule):
    """HCC201: acquisitions must be released on every path.

    Path-aware upgrade of HCC101: instead of "a guarded cleanup exists
    somewhere", the CFG must show the segment closed/unlinked (or its
    tmp path replaced) on the normal exit *and* on every exception exit.
    """

    rule_id = "HCC201"
    name = "flow-resource-leak"
    severity = Severity.ERROR
    rationale = (
        "A SharedMemory segment that misses close/unlink on any path leaks "
        "kernel memory until reboot (paper 3.3's one-copy buffers are "
        "process-lifetime resources); a tmp checkpoint that misses "
        "os.replace/unlink breaks crash-atomicity."
    )

    def check_function(self, ctx, fn, cfg):
        helper = _ResourceState(_summaries_for(ctx))
        analysis = _ResourceAnalysis(helper)
        states = run_analysis(cfg, analysis)

        # leaks at exits, grouped per acquisition site
        leak_paths: dict[tuple[str, str, int], set[str]] = {}
        for exit_block, path_kind in (
            (cfg.exit, "a normal path"),
            (cfg.raise_exit, "an exception path"),
        ):
            for var, (kind, line) in states.get(exit_block, {}).items():
                leak_paths.setdefault((var, kind, line), set()).add(path_kind)
        for (var, kind, line), kinds in sorted(leak_paths.items()):
            where = (
                "normal and exception paths"
                if len(kinds) > 1
                else next(iter(kinds))
            )
            yield self.issue(
                ctx,
                _Loc(line),
                f"{kind} {var!r} acquired here may still be open on {where} "
                "out of the function — release it (close/unlink/os.replace) "
                "on every path, e.g. in a finally block",
            )

        # rebinding an open resource loses the only reference to it
        seen_rebinds: set[tuple[int, str]] = set()
        for block in cfg.blocks:
            stmt = block.stmt
            if stmt is None or block not in states:
                continue
            _, _, leaks = helper.effects(stmt, states[block])
            for var, (kind, line) in leaks:
                key = (stmt.lineno, var)
                if key in seen_rebinds:
                    continue
                seen_rebinds.add(key)
                yield self.issue(
                    ctx,
                    stmt,
                    f"{var!r} is rebound while the {kind} acquired at line "
                    f"{line} may still be open — release the old one first",
                )


# ---------------------------------------------------------------------------
# HCC202: exception safety in engine/resilience code
# ---------------------------------------------------------------------------
_PQ_ATTRS = frozenset({"P", "Q"})
_SNAPSHOT_HINTS = ("snapshot", "backup", "base", "init", "saved")


def _pq_attr(node: ast.expr) -> ast.Attribute | None:
    """The ``<...>.P`` / ``<...>.Q`` attribute inside a write target."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in _PQ_ATTRS:
        return node
    return None


def _looks_like_snapshot(expr: ast.expr) -> bool:
    names = " ".join(
        n.id if isinstance(n, ast.Name) else n.attr
        for n in ast.walk(expr)
        if isinstance(n, (ast.Name, ast.Attribute))
    ).lower()
    return any(hint in names for hint in _SNAPSHOT_HINTS)


class _ExcSafetyAnalysis(FlowAnalysis):
    """State: (pq mutations in flight, open attempts), both frozensets."""

    def initial(self, cfg):
        return (frozenset(), frozenset())

    def join(self, a, b):
        return (a[0] | b[0], a[1] | b[1])

    def transfer(self, stmt, state):
        pq, attempts = state

        # P/Q mutations and restores
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if _pq_attr(target) is not None:
                    pq = pq | {stmt.lineno}
        for call in _calls_in(stmt):
            tail = _call_tail(call)
            if tail == "copyto" and len(call.args) >= 2:
                dst, src = call.args[0], call.args[1]
                if _pq_attr(dst) is not None:
                    if _looks_like_snapshot(src):
                        pq = frozenset()  # restoring from a snapshot
                    else:
                        pq = pq | {stmt.lineno}
            if "restore" in tail or "rollback" in tail or tail == "close":
                pq = frozenset()
            # backend attempts: <recv>.open(...) must reach <recv>.close()
            if isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, (ast.Attribute, ast.Name)
            ):
                recv = dotted_name(call.func.value)
                if recv:
                    if call.func.attr == "open":
                        attempts = attempts | {(recv, stmt.lineno)}
                    elif call.func.attr == "close":
                        attempts = frozenset(
                            a for a in attempts if a[0] != recv
                        )
        return (pq, attempts)


@flow_rule
class FlowExceptionSafetyRule(_FlowRule):
    """HCC202: no raise may escape with P/Q half-mutated or an attempt open.

    Scope: ``repro/engine/`` and ``repro/resilience/``.  Explicit
    ``raise`` statements are checked against in-flight P/Q mutations;
    open attempts are additionally checked on implicit exception paths
    (the sanctioned shape is ``open()`` then ``try: ... finally:
    close()``).
    """

    rule_id = "HCC202"
    name = "flow-exception-safety"
    severity = Severity.ERROR
    rationale = (
        "The attempt/recovery loop retries after failures; a raise that "
        "escapes with P/Q half-mutated or a backend attempt still open "
        "corrupts the state the next attempt resumes from (paper 3.2's "
        "epoch protocol assumes all-or-nothing syncs)."
    )

    def applies(self, ctx):
        return is_exception_safety_module(ctx.module)

    def check_function(self, ctx, fn, cfg):
        analysis = _ExcSafetyAnalysis()
        states = run_analysis(cfg, analysis)

        seen: set[tuple[int, int]] = set()
        for block in cfg.blocks:
            stmt = block.stmt
            if not isinstance(stmt, ast.Raise) or block not in states:
                continue
            pq = states[block][0]
            for line in sorted(pq):
                key = (stmt.lineno, line)
                if key in seen:
                    continue
                seen.add(key)
                yield self.issue(
                    ctx,
                    stmt,
                    f"raises after mutating P/Q at line {line} without a "
                    "rollback/snapshot-restore on this path — the next "
                    "attempt would resume from half-mutated factors",
                )

        reported_attempts: set[tuple[str, int]] = set()
        for var_state in (states.get(cfg.raise_exit, (frozenset(), frozenset())),):
            for recv, line in sorted(var_state[1]):
                if (recv, line) in reported_attempts:
                    continue
                reported_attempts.add((recv, line))
                yield self.issue(
                    ctx,
                    _Loc(line),
                    f"attempt opened via {recv}.open() here can escape on an "
                    f"exception path without {recv}.close() — wrap the body "
                    "in try/finally",
                )


# ---------------------------------------------------------------------------
# HCC203: float64 taint into FP32 kernel arguments
# ---------------------------------------------------------------------------
_KERNEL_SINKS = frozenset({"sgd_batch_update", "sgd_epoch", "sgd_step"})
_SHAPE_PRESERVING = frozenset(
    {
        "copy",
        "reshape",
        "ravel",
        "flatten",
        "transpose",
        "ascontiguousarray",
        "asfortranarray",
        "clip",
    }
)


def _dtype_expr_is(expr: ast.expr, target: str) -> bool:
    """Does a ``dtype=...`` expression denote the given float width?"""
    if isinstance(expr, ast.Attribute):
        return expr.attr == target
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value == target
    if isinstance(expr, ast.Name):
        if target == "float64":
            return expr.id in {"float", "float64"}
        return expr.id == target
    if isinstance(expr, ast.Call) and _call_tail(expr) == "dtype" and expr.args:
        return _dtype_expr_is(expr.args[0], target)
    return False


def _expr_is_float64(
    expr: ast.expr,
    state: Mapping[str, bool],
    summaries: Mapping[str, FunctionSummary] | None,
) -> bool:
    """Conservative float64-taint evaluation of one expression."""
    if isinstance(expr, ast.Name):
        return bool(state.get(expr.id))
    if isinstance(expr, ast.BinOp):
        # NumPy promotion: one float64 operand taints the result
        return _expr_is_float64(expr.left, state, summaries) or _expr_is_float64(
            expr.right, state, summaries
        )
    if isinstance(expr, ast.UnaryOp):
        return _expr_is_float64(expr.operand, state, summaries)
    if isinstance(expr, (ast.IfExp,)):
        return _expr_is_float64(expr.body, state, summaries) or _expr_is_float64(
            expr.orelse, state, summaries
        )
    if isinstance(expr, ast.Call):
        tail = _call_tail(expr)
        # explicit casts decide on their own
        if tail == "astype" and expr.args:
            if _dtype_expr_is(expr.args[0], "float64"):
                return True
            if _dtype_expr_is(expr.args[0], "float32"):
                return False
        if tail == "float64":
            return True
        for kw in expr.keywords:
            if kw.arg == "dtype":
                if _dtype_expr_is(kw.value, "float64"):
                    return True
                if _dtype_expr_is(kw.value, "float32"):
                    return False
        if tail in _SHAPE_PRESERVING:
            if isinstance(expr.func, ast.Attribute) and _expr_is_float64(
                expr.func.value, state, summaries
            ):
                return True
            if expr.args and _expr_is_float64(expr.args[0], state, summaries):
                return True
            return False
        if (
            summaries is not None
            and isinstance(expr.func, ast.Name)
            and expr.func.id in summaries
        ):
            return summaries[expr.func.id].returns_float64
        return False
    return False


class _DtypeTaintAnalysis(FlowAnalysis):
    """State: set of float64-tainted local variable names (as a dict)."""

    def __init__(self, summaries: Mapping[str, FunctionSummary]):
        self.summaries = summaries

    def join(self, a, b):
        merged = dict(a)
        merged.update(b)
        return merged

    def transfer(self, stmt, state):
        new = None

        def taint(name: str, value: bool) -> None:
            nonlocal new
            if new is None:
                new = dict(state)
            if value:
                new[name] = True
            else:
                new.pop(name, None)

        if isinstance(stmt, ast.Assign) and stmt.value is not None:
            tainted = _expr_is_float64(stmt.value, state, self.summaries)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    taint(target.id, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                taint(
                    stmt.target.id,
                    _expr_is_float64(stmt.value, state, self.summaries),
                )
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and _expr_is_float64(
                stmt.value, state, self.summaries
            ):
                taint(stmt.target.id, True)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt.target, ast.Name) and isinstance(
                stmt.iter, ast.Name
            ):
                taint(stmt.target.id, bool(state.get(stmt.iter.id)))
        return state if new is None else new


@flow_rule
class FlowDtypeTaintRule(_FlowRule):
    """HCC203: float64 taint must not reach FP32 kernel arguments.

    Flow-sensitive upgrade of HCC103: instead of flagging literal
    ``dtype=float64`` in kernel modules, taint is propagated through
    assignments, arithmetic and helper calls, and only flagged where it
    actually reaches an SGD kernel / model-constructor argument.
    """

    rule_id = "HCC203"
    name = "flow-dtype-taint"
    severity = Severity.WARNING
    rationale = (
        "Kernels are FP32-only (paper 3.4: FP32 compute, FP16 wire); a "
        "float64 array reaching them silently doubles bandwidth and "
        "memory and masks precision assumptions."
    )

    def _is_sink(self, call: ast.Call) -> str | None:
        tail = _call_tail(call)
        if tail in _KERNEL_SINKS:
            return tail
        if isinstance(call.func, ast.Name) and call.func.id == "MFModel":
            return "MFModel"
        dotted = dotted_name(call.func)
        if "kernels." in dotted:
            return tail or dotted
        return None

    def check_function(self, ctx, fn, cfg):
        analysis = _DtypeTaintAnalysis(_summaries_for(ctx))
        states = run_analysis(cfg, analysis)
        seen: set[tuple[int, int]] = set()
        for block in cfg.blocks:
            stmt = block.stmt
            if stmt is None or block not in states:
                continue
            state = states[block]
            for call in _calls_in(stmt):
                sink = self._is_sink(call)
                if sink is None:
                    continue
                args = [(f"argument {i + 1}", a) for i, a in enumerate(call.args)]
                args += [(f"argument {kw.arg!r}", kw.value) for kw in call.keywords]
                for label, arg in args:
                    if not _expr_is_float64(arg, state, analysis.summaries):
                        continue
                    key = (call.lineno, call.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.issue(
                        ctx,
                        call,
                        f"float64-tainted value flows into {sink}() {label} — "
                        "kernels are FP32-only; cast with "
                        ".astype(np.float32) before the call",
                    )
                    break


# ---------------------------------------------------------------------------
# HCC204: backend stage-protocol conformance
# ---------------------------------------------------------------------------
_PROTOCOL_STATES = frozenset(
    {"idle", "ready", "pulled", "computed", "pushed", "final"}
)
#: stage -> (states it is legal from, state it lands in)
_PROTOCOL = {
    "open": (frozenset({"idle"}), "ready"),
    "pull": (frozenset({"ready"}), "pulled"),
    "compute": (frozenset({"pulled"}), "computed"),
    "push": (frozenset({"computed"}), "pushed"),
    "sync": (frozenset({"pushed"}), "ready"),
    "evaluate": (frozenset({"ready"}), "ready"),
    "finalize": (frozenset({"ready"}), "final"),
    "close": (_PROTOCOL_STATES, "idle"),
}


def _is_backend_ctor(value: ast.expr) -> bool:
    return isinstance(value, ast.Call) and _call_tail(value).endswith("Backend")


def _backend_receiver(node: ast.expr) -> str | None:
    """Dotted receiver string if this looks like a ComputeBackend."""
    recv = dotted_name(node)
    if recv and "backend" in recv.lower():
        return recv
    return None


class _StageProtocolAnalysis(FlowAnalysis):
    """State: receiver -> frozenset of possible protocol states."""

    def join(self, a, b):
        merged = dict(a)
        for recv, states in b.items():
            merged[recv] = merged.get(recv, _PROTOCOL_STATES) | states
        for recv in set(a) - set(b):
            merged[recv] = merged[recv] | _PROTOCOL_STATES
        return merged

    def transfer(self, stmt, state):
        new = dict(state)
        # constructing a backend pins it to idle; rebinding otherwise forgets
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name = stmt.targets[0].id
            if _is_backend_ctor(stmt.value):
                new[name] = frozenset({"idle"})
            elif name in new:
                del new[name]
        for call in _calls_in(stmt):
            # passing a tracked backend away loses track of its state
            for arg in (*call.args, *[kw.value for kw in call.keywords]):
                recv = dotted_name(arg) if isinstance(arg, (ast.Name, ast.Attribute)) else ""
                if recv in new:
                    new[recv] = _PROTOCOL_STATES
            if not isinstance(call.func, ast.Attribute):
                continue
            stage = call.func.attr
            if stage not in _PROTOCOL:
                continue
            recv = self._tracked_receiver(call.func.value, new)
            if recv is None:
                continue
            _, target = _PROTOCOL[stage]
            new[recv] = frozenset({target})
        return new

    def _tracked_receiver(self, node: ast.expr, state) -> str | None:
        recv = _backend_receiver(node)
        if recv is not None:
            return recv
        dotted = dotted_name(node)
        return dotted if dotted in state else None


@flow_rule
class FlowStageProtocolRule(_FlowRule):
    """HCC204: backend calls must follow the declared stage machine.

    open → (pull → compute → push → sync)* with evaluate allowed between
    epochs, then finalize and close; close is legal from any state.  A
    violation is reported only when the call is illegal from *every*
    state the receiver may be in (definite protocol break, no
    path-insensitive false alarms).
    """

    rule_id = "HCC204"
    name = "flow-stage-protocol"
    severity = Severity.WARNING
    rationale = (
        "The epoch protocol (paper 3.2) is pull→compute→push→sync; a "
        "backend driven out of order trains on stale factors or merges "
        "unpushed updates, which no unit test of a single stage catches."
    )

    def check_function(self, ctx, fn, cfg):
        analysis = _StageProtocolAnalysis()
        states = run_analysis(cfg, analysis)
        seen: set[tuple[int, int]] = set()
        for block in cfg.blocks:
            stmt = block.stmt
            if stmt is None or block not in states:
                continue
            state = dict(states[block])
            for call in _calls_in(stmt):
                # apply protocol effects left-to-right within the statement
                if not isinstance(call.func, ast.Attribute):
                    continue
                stage = call.func.attr
                if stage not in _PROTOCOL:
                    continue
                recv = analysis._tracked_receiver(call.func.value, state)
                if recv is None:
                    continue
                allowed, target = _PROTOCOL[stage]
                current = state.get(recv, _PROTOCOL_STATES)
                if not (current & allowed):
                    key = (call.lineno, call.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield self.issue(
                            ctx,
                            call,
                            f"{recv}.{stage}() breaks the "
                            "pull→compute→push→sync protocol: the backend "
                            f"can only be {_fmt_states(current)} here, but "
                            f"{stage}() requires {_fmt_states(allowed)}",
                        )
                state[recv] = frozenset({target})


def _fmt_states(states: frozenset[str]) -> str:
    return "/".join(sorted(states))
