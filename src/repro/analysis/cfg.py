"""Control-flow graphs over Python function ASTs.

The flow-sensitive HCC2xx checkers (:mod:`repro.analysis.flow`) need to
reason about *paths* — "is this shared segment closed on the exception
path too?" — which per-node AST pattern rules cannot see.  This module
builds a small, deliberately simple CFG for one function at a time:

* one statement "atom" per basic block (plus empty junction blocks), so
  transfer functions stay trivial;
* four edge kinds — ``normal``, ``true``/``false`` branch edges, and
  ``exc`` edges from any statement that may raise to the innermost
  handler (or the synthetic ``raise_exit`` block when the exception
  escapes the function);
* ``finally`` bodies are instantiated once per *continuation* (fall
  through, exception propagation, ``return``, ``break``, ``continue``),
  mirroring how CPython threads control through them, so a dataflow
  analysis sees cleanup run on every kind of exit;
* three synthetic blocks: ``entry``, ``exit`` (normal return / fall off
  the end) and ``raise_exit`` (an exception escaping the function).

Compound statements contribute their *header* as the atom (an ``If``
block holds the whole ``ast.If`` node but only evaluates its test; the
bodies live in successor blocks).  Nested function/class definitions
are opaque atoms — callers analyse them separately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "EDGE_NORMAL",
    "EDGE_TRUE",
    "EDGE_FALSE",
    "EDGE_EXC",
    "Block",
    "CFG",
    "build_cfg",
    "may_raise",
    "stmt_atoms",
]

EDGE_NORMAL = "normal"
EDGE_TRUE = "true"
EDGE_FALSE = "false"
EDGE_EXC = "exc"

#: method tails treated as non-raising cleanup: flagging "close() itself
#: might raise inside finally" would make every correct teardown a
#: false positive, so the CFG assumes cleanup calls complete.
_CLEANUP_TAILS = frozenset(
    {"close", "unlink", "shutdown", "terminate", "release", "join"}
)


@dataclass
class Block:
    """One basic block: at most one statement atom plus typed out-edges."""

    idx: int
    label: str = ""
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[tuple["Block", str]] = field(default_factory=list)
    preds: list[tuple["Block", str]] = field(default_factory=list)

    @property
    def stmt(self) -> ast.stmt | None:
        return self.stmts[0] if self.stmts else None

    def __hash__(self) -> int:  # identity semantics; dataclass adds __eq__ otherwise
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.stmt).__name__ if self.stmt is not None else "-"
        return f"<Block {self.idx} {self.label or kind}>"


@dataclass
class CFG:
    """A function's control-flow graph."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    blocks: list[Block]
    entry: Block
    exit: Block
    raise_exit: Block

    def rpo(self) -> list[Block]:
        """Blocks in reverse post-order from ``entry`` (forward analyses)."""
        seen: set[int] = set()
        order: list[Block] = []

        def visit(block: Block) -> None:
            # iterative DFS; deep CFGs would blow the recursion limit
            stack: list[tuple[Block, int]] = [(block, 0)]
            seen.add(id(block))
            while stack:
                node, i = stack[-1]
                if i < len(node.succs):
                    stack[-1] = (node, i + 1)
                    succ = node.succs[i][0]
                    if id(succ) not in seen:
                        seen.add(id(succ))
                        stack.append((succ, 0))
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order


def _call_tail(call: ast.Call) -> str:
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _is_simple_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Constant, ast.Name)):
        return True
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_is_simple_value(elt) for elt in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _is_simple_value(node.operand)
    return False


def may_raise(stmt: ast.stmt) -> bool:
    """Can executing this atom raise? Conservative, with a few carve-outs.

    Anything involving a call, attribute access, subscript, or arithmetic
    may raise.  The carve-outs keep the graphs (and downstream checkers)
    sane: ``pass``/``break``/``continue``, constant-to-name assignments,
    and bare cleanup calls (``x.close()`` and friends) are treated as
    non-raising — the latter so a ``finally`` that only closes resources
    does not itself spawn a "leaked on exception" path.
    """
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if isinstance(stmt, ast.Assign):
        if all(isinstance(t, ast.Name) for t in stmt.targets) and _is_simple_value(
            stmt.value
        ):
            return False
        return True
    if isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and (
            stmt.value is None or _is_simple_value(stmt.value)
        ):
            return False
        return True
    if isinstance(stmt, ast.Expr):
        value = stmt.value
        if _is_simple_value(value):
            return False
        if (
            isinstance(value, ast.Call)
            and _call_tail(value) in _CLEANUP_TAILS
            and not value.args
            and not value.keywords
        ):
            return False
        return True
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and not _is_simple_value(stmt.value)
    return True


def stmt_atoms(node: ast.stmt):
    """Yield sub-expressions of a statement atom, skipping nested scopes.

    Like :func:`ast.walk` over the statement but without descending into
    nested function/class definitions (their bodies get their own CFGs)
    or into the *bodies* of compound statements (those live in successor
    blocks) — only the header expressions of the atom itself are walked.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    headers: list[ast.AST]
    if isinstance(node, ast.If) or isinstance(node, ast.While):
        headers = [node.test]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        headers = [node.target, node.iter]
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        headers = list(node.items)
    elif isinstance(node, (ast.Try, ast.Match)):
        headers = []
        if isinstance(node, ast.Match):
            headers = [node.subject]
    else:
        headers = [node]
    stack: list[ast.AST] = list(headers)
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield current
        if current is node and isinstance(current, ast.stmt):
            # plain statement: walk its child expressions
            stack.extend(ast.iter_child_nodes(current))
        elif not isinstance(current, ast.stmt):
            stack.extend(ast.iter_child_nodes(current))


_CATCH_ALL_NAMES = {"BaseException", "Exception"}


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """True when *handler* catches every exception (``except:`` or
    ``except BaseException``/``Exception``, possibly inside a tuple)."""
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        if isinstance(t, ast.Name) and t.id in _CATCH_ALL_NAMES:
            return True
    return False


class _Ctx:
    """Where abrupt exits go from the current nesting level.

    ``try/finally`` frames wrap each target with a lazily-instantiated
    copy of the ``finally`` body (memoised per continuation), so a
    ``return`` three levels deep threads through every pending cleanup.
    """

    __slots__ = ("exc", "ret", "brk", "cont")

    def __init__(self, exc, ret, brk=None, cont=None):
        self.exc = exc  # () -> Block
        self.ret = ret
        self.brk = brk  # None outside loops
        self.cont = cont

    def with_loop(self, brk, cont) -> "_Ctx":
        return _Ctx(self.exc, self.ret, brk, cont)


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.raise_exit = self.new_block("raise-exit")

    # ------------------------------------------------------------------
    def new_block(self, label: str = "") -> Block:
        block = Block(idx=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def edge(self, src: Block, dst: Block, kind: str = EDGE_NORMAL) -> None:
        src.succs.append((dst, kind))
        dst.preds.append((src, kind))

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        ctx = _Ctx(exc=lambda: self.raise_exit, ret=lambda: self.exit)
        end = self.emit_body(self.func.body, self.entry, ctx)
        if end is not None:
            self.edge(end, self.exit)
        return CFG(
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    def emit_body(self, body: list[ast.stmt], cur: Block | None, ctx: _Ctx):
        """Emit statements sequentially; returns the fall-through block or None."""
        for stmt in body:
            if cur is None:  # unreachable code after return/raise/break
                break
            cur = self.emit_stmt(stmt, cur, ctx)
        return cur

    # ------------------------------------------------------------------
    def emit_stmt(self, stmt: ast.stmt, cur: Block, ctx: _Ctx):
        handler = getattr(self, f"emit_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, cur, ctx)
        return self.emit_atom(stmt, cur, ctx)

    def emit_atom(self, stmt: ast.stmt, cur: Block, ctx: _Ctx) -> Block:
        block = self.new_block()
        block.stmts.append(stmt)
        self.edge(cur, block)
        if may_raise(stmt):
            self.edge(block, ctx.exc(), EDGE_EXC)
        after = self.new_block()
        self.edge(block, after)
        return after

    # -- straight-line control ----------------------------------------
    def emit_Return(self, stmt: ast.Return, cur: Block, ctx: _Ctx):
        block = self.new_block("return")
        block.stmts.append(stmt)
        self.edge(cur, block)
        if may_raise(stmt):
            self.edge(block, ctx.exc(), EDGE_EXC)
        self.edge(block, ctx.ret())
        return None

    def emit_Raise(self, stmt: ast.Raise, cur: Block, ctx: _Ctx):
        block = self.new_block("raise")
        block.stmts.append(stmt)
        self.edge(cur, block)
        self.edge(block, ctx.exc(), EDGE_EXC)
        return None

    def emit_Break(self, stmt: ast.Break, cur: Block, ctx: _Ctx):
        block = self.new_block("break")
        block.stmts.append(stmt)
        self.edge(cur, block)
        if ctx.brk is not None:
            self.edge(block, ctx.brk())
        return None

    def emit_Continue(self, stmt: ast.Continue, cur: Block, ctx: _Ctx):
        block = self.new_block("continue")
        block.stmts.append(stmt)
        self.edge(cur, block)
        if ctx.cont is not None:
            self.edge(block, ctx.cont())
        return None

    # -- branches ------------------------------------------------------
    def emit_If(self, stmt: ast.If, cur: Block, ctx: _Ctx):
        test = self.new_block("if")
        test.stmts.append(stmt)
        self.edge(cur, test)
        self.edge(test, ctx.exc(), EDGE_EXC)  # test expression may raise
        after = self.new_block()

        then_entry = self.new_block()
        self.edge(test, then_entry, EDGE_TRUE)
        then_end = self.emit_body(stmt.body, then_entry, ctx)
        if then_end is not None:
            self.edge(then_end, after)

        else_entry = self.new_block()
        self.edge(test, else_entry, EDGE_FALSE)
        else_end = self.emit_body(stmt.orelse, else_entry, ctx)
        if else_end is not None:
            self.edge(else_end, after)

        if not after.preds:
            return None
        return after

    def emit_While(self, stmt: ast.While, cur: Block, ctx: _Ctx):
        head = self.new_block("while")
        head.stmts.append(stmt)
        self.edge(cur, head)
        self.edge(head, ctx.exc(), EDGE_EXC)
        after = self.new_block()

        body_entry = self.new_block()
        self.edge(head, body_entry, EDGE_TRUE)
        loop_ctx = ctx.with_loop(brk=lambda: after, cont=lambda: head)
        body_end = self.emit_body(stmt.body, body_entry, loop_ctx)
        if body_end is not None:
            self.edge(body_end, head)

        exit_entry = self.new_block()
        self.edge(head, exit_entry, EDGE_FALSE)
        else_end = self.emit_body(stmt.orelse, exit_entry, ctx)
        if else_end is not None:
            self.edge(else_end, after)

        if not after.preds:
            return None
        return after

    def emit_For(self, stmt: ast.For, cur: Block, ctx: _Ctx):
        head = self.new_block("for")
        head.stmts.append(stmt)
        self.edge(cur, head)
        self.edge(head, ctx.exc(), EDGE_EXC)  # iterator setup/next may raise
        after = self.new_block()

        body_entry = self.new_block()
        self.edge(head, body_entry, EDGE_TRUE)
        loop_ctx = ctx.with_loop(brk=lambda: after, cont=lambda: head)
        body_end = self.emit_body(stmt.body, body_entry, loop_ctx)
        if body_end is not None:
            self.edge(body_end, head)

        exit_entry = self.new_block()
        self.edge(head, exit_entry, EDGE_FALSE)
        else_end = self.emit_body(stmt.orelse, exit_entry, ctx)
        if else_end is not None:
            self.edge(else_end, after)

        if not after.preds:
            return None
        return after

    emit_AsyncFor = emit_For

    def emit_With(self, stmt: ast.With, cur: Block, ctx: _Ctx):
        head = self.new_block("with")
        head.stmts.append(stmt)
        self.edge(cur, head)
        self.edge(head, ctx.exc(), EDGE_EXC)  # __enter__ may raise
        body_entry = self.new_block()
        self.edge(head, body_entry)
        # Approximation: __exit__ runs but we do not model suppression,
        # so body exceptions propagate to the enclosing handler as usual.
        end = self.emit_body(stmt.body, body_entry, ctx)
        if end is None:
            return None
        after = self.new_block()
        self.edge(end, after)
        return after

    emit_AsyncWith = emit_With

    def emit_Match(self, stmt: ast.Match, cur: Block, ctx: _Ctx):
        head = self.new_block("match")
        head.stmts.append(stmt)
        self.edge(cur, head)
        self.edge(head, ctx.exc(), EDGE_EXC)
        after = self.new_block()
        for case in stmt.cases:
            case_entry = self.new_block()
            self.edge(head, case_entry, EDGE_TRUE)
            end = self.emit_body(case.body, case_entry, ctx)
            if end is not None:
                self.edge(end, after)
        self.edge(head, after, EDGE_FALSE)  # no case matched
        return after

    # -- try/except/else/finally ---------------------------------------
    def emit_Try(self, stmt: ast.Try, cur: Block, ctx: _Ctx):
        after = self.new_block("after-try")

        if stmt.finalbody:
            # one finally instance per continuation, memoised so diamond
            # control flow does not duplicate cleanup blocks
            instances: dict[int, Block] = {}

            def fin_to(target_thunk):
                def thunk() -> Block:
                    target = target_thunk()
                    if id(target) not in instances:
                        fin_entry = self.new_block("finally")
                        instances[id(target)] = fin_entry
                        fin_end = self.emit_body(stmt.finalbody, fin_entry, ctx)
                        if fin_end is not None:
                            self.edge(fin_end, target)
                    return instances[id(target)]

                return thunk

            outer_ctx = _Ctx(
                exc=fin_to(ctx.exc),
                ret=fin_to(ctx.ret),
                brk=fin_to(ctx.brk) if ctx.brk is not None else None,
                cont=fin_to(ctx.cont) if ctx.cont is not None else None,
            )
            normal_exit = fin_to(lambda: after)
        else:
            outer_ctx = ctx
            normal_exit = lambda: after  # noqa: E731 - tiny local thunk

        if stmt.handlers:
            dispatch = self.new_block("except-dispatch")
            if not any(_is_catch_all(h) for h in stmt.handlers):
                # uncaught exceptions propagate (through finally) to the
                # caller; a bare/BaseException handler closes that path
                self.edge(dispatch, outer_ctx.exc(), EDGE_EXC)
            body_ctx = _Ctx(
                exc=lambda: dispatch,
                ret=outer_ctx.ret,
                brk=outer_ctx.brk,
                cont=outer_ctx.cont,
            )
        else:
            dispatch = None
            body_ctx = outer_ctx

        body_entry = self.new_block("try")
        self.edge(cur, body_entry)
        body_end = self.emit_body(stmt.body, body_entry, body_ctx)
        # the else clause is NOT protected by this try's handlers
        else_end = (
            self.emit_body(stmt.orelse, body_end, outer_ctx)
            if body_end is not None
            else None
        )
        if else_end is not None:
            self.edge(else_end, normal_exit())

        if dispatch is not None:
            for handler in stmt.handlers:
                h_entry = self.new_block("except")
                self.edge(dispatch, h_entry, EDGE_EXC)
                h_end = self.emit_body(handler.body, h_entry, outer_ctx)
                if h_end is not None:
                    self.edge(h_end, normal_exit())

        if not after.preds:
            return None
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph for one function definition."""
    return _Builder(func).build()
