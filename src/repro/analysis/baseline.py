"""Baseline files: land new lint rules without silencing the gate.

A baseline records *known, justified* findings so that ``repro lint``
can fail only on regressions.  Matching is deliberately line-number
agnostic — an entry is ``(path, rule_id, message)`` plus an allowed
count — so unrelated edits that shift code do not invalidate the
baseline, while a *new* finding of the same shape in the same file
still fails once the recorded count is exceeded.

The repo checks in ``.hcclint-baseline.json`` at the root; it ships
empty because ``src/`` is clean under every rule, and exists so the
first justified exception has somewhere auditable to live (each entry
carries a ``justification`` string).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.lint import LintIssue

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be used (bad JSON, wrong version)."""


@dataclass(frozen=True)
class Baseline:
    """Allowed finding counts keyed by (path, rule_id, message)."""

    entries: dict[tuple[str, str, str], int]
    justifications: dict[tuple[str, str, str], str]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={}, justifications={})

    # -- (de)serialisation --------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline must be an object with version={BASELINE_VERSION}"
            )
        entries: dict[tuple[str, str, str], int] = {}
        justifications: dict[tuple[str, str, str], str] = {}
        for item in payload.get("entries", []):
            try:
                key = (item["path"], item["rule_id"], item["message"])
                count = int(item.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"malformed baseline entry: {item!r}") from exc
            entries[key] = entries.get(key, 0) + count
            if item.get("justification"):
                justifications[key] = str(item["justification"])
        return cls(entries=entries, justifications=justifications)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_json(self) -> str:
        items = [
            {
                "path": path,
                "rule_id": rule_id,
                "message": message,
                "count": count,
                "justification": self.justifications.get(
                    (path, rule_id, message),
                    "recorded pre-existing finding; justify or fix",
                ),
            }
            for (path, rule_id, message), count in sorted(self.entries.items())
        ]
        return json.dumps({"version": BASELINE_VERSION, "entries": items}, indent=2)

    # -- building / applying ------------------------------------------
    @classmethod
    def from_issues(cls, issues: Sequence[LintIssue]) -> "Baseline":
        counts = Counter((i.path, i.rule_id, i.message) for i in issues)
        return cls(entries=dict(counts), justifications={})

    def apply(
        self, issues: Sequence[LintIssue]
    ) -> tuple[list[LintIssue], list[LintIssue]]:
        """Split issues into (new, baselined).

        Findings are consumed against the recorded counts in input
        order; once a key's budget is spent, further findings of that
        shape are *new* and should fail the gate.
        """
        budget = Counter()
        for key, count in self.entries.items():
            budget[key] = count
        new: list[LintIssue] = []
        baselined: list[LintIssue] = []
        for issue in issues:
            key = (issue.path, issue.rule_id, issue.message)
            if budget[key] > 0:
                budget[key] -= 1
                baselined.append(issue)
            else:
                new.append(issue)
        return new, baselined
