"""Static analysis and dynamic race detection for HCC-MF invariants.

Two halves, both guarding properties the paper only *assumes*:

* :mod:`repro.analysis.lint` — **hcclint**, an AST-based lint framework
  with domain rules for the concurrency and cost-model invariants
  (shared-memory lifecycle, hot-path allocation, FP32 kernel hygiene,
  P/Q ownership, worker-loop blocking, bytes-vs-seconds unit mixing).
* :mod:`repro.analysis.race` — a dynamic race / ownership detector that
  replays the pull/train/push/sync epoch structure against a
  vector-clock access log and flags cross-worker P-row overlap or
  violations of the one-copy buffer discipline (paper section 3.4/3.5).

Entry points: ``repro lint`` and ``repro race-check`` on the CLI, or
:func:`lint_paths` / :func:`race_check` from Python.
"""

from repro.analysis.lint import (
    FileContext,
    LintIssue,
    Rule,
    Severity,
    all_rules,
    lint_paths,
    lint_source,
    max_severity,
)
from repro.analysis.race import (
    Access,
    RaceLog,
    RaceReport,
    RaceViolation,
    attach_to_server,
    check_row_ownership,
    race_check,
    tracked_train,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Access",
    "FileContext",
    "LintIssue",
    "RaceLog",
    "RaceReport",
    "RaceViolation",
    "Rule",
    "Severity",
    "all_rules",
    "attach_to_server",
    "check_row_ownership",
    "lint_paths",
    "lint_source",
    "max_severity",
    "race_check",
    "render_json",
    "render_text",
    "tracked_train",
]
