"""Static analysis and dynamic race detection for HCC-MF invariants.

Three layers, all guarding properties the paper only *assumes*:

* :mod:`repro.analysis.lint` — **hcclint**, an AST-based lint framework
  with domain rules for the concurrency and cost-model invariants
  (shared-memory lifecycle, hot-path allocation, FP32 kernel hygiene,
  P/Q ownership, worker-loop blocking, bytes-vs-seconds unit mixing).
* :mod:`repro.analysis.flow` — flow-sensitive HCC2xx rules over a
  CFG/dataflow framework (:mod:`repro.analysis.cfg`): path-aware
  resource lifecycle, exception safety in the engine/resilience layer,
  float64 taint into kernels, and backend stage-protocol conformance.
  Opt-in via ``repro lint --flow`` (or ``--select HCC2``).
* :mod:`repro.analysis.race` — a dynamic race / ownership detector that
  replays the pull/train/push/sync epoch structure against a
  vector-clock access log and flags cross-worker P-row overlap or
  violations of the one-copy buffer discipline (paper section 3.4/3.5).

Findings emit through :mod:`repro.analysis.reporters` (text, JSON,
SARIF 2.1.0) and can be tracked in a repo baseline file
(:mod:`repro.analysis.baseline`).

Entry points: ``repro lint`` and ``repro race-check`` on the CLI, or
:func:`lint_paths` / :func:`race_check` from Python.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cfg import CFG, Block, build_cfg
from repro.analysis.flow import (
    FlowAnalysis,
    FunctionSummary,
    module_summaries,
    reaching_definitions,
    run_analysis,
    summarize_function,
)
from repro.analysis.lint import (
    FileContext,
    LintIssue,
    Rule,
    Severity,
    all_rules,
    filter_rules,
    flow_rules,
    lint_paths,
    lint_source,
    max_severity,
)
from repro.analysis.race import (
    Access,
    RaceLog,
    RaceReport,
    RaceViolation,
    attach_to_server,
    check_row_ownership,
    race_check,
    tracked_train,
)
from repro.analysis.reporters import (
    render_json,
    render_race_sarif,
    render_sarif,
    render_text,
)

__all__ = [
    "Access",
    "Baseline",
    "Block",
    "CFG",
    "FileContext",
    "FlowAnalysis",
    "FunctionSummary",
    "LintIssue",
    "RaceLog",
    "RaceReport",
    "RaceViolation",
    "Rule",
    "Severity",
    "all_rules",
    "attach_to_server",
    "build_cfg",
    "check_row_ownership",
    "filter_rules",
    "flow_rules",
    "lint_paths",
    "lint_source",
    "max_severity",
    "module_summaries",
    "race_check",
    "reaching_definitions",
    "render_json",
    "render_race_sarif",
    "render_sarif",
    "render_text",
    "run_analysis",
    "summarize_function",
    "tracked_train",
]
