"""Output formats for analysis findings.

Text for humans, JSON for scripting, and SARIF 2.1.0 for code-scanning
UIs (GitHub code scanning, VS Code SARIF viewers).  Both ``repro lint``
and ``repro race-check`` emit through this layer, so every checker in
:mod:`repro.analysis` shares one wire format per consumer.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from repro.analysis.lint import LintIssue, Rule, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SEVERITY_TAG = {
    Severity.INFO: "info",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render_text(issues: Sequence[LintIssue]) -> str:
    """``path:line:col: severity RULEID (slug): message`` lines + summary."""
    lines = [
        f"{i.path}:{i.line}:{i.col}: {_SEVERITY_TAG[i.severity]} "
        f"{i.rule_id} ({i.rule}): {i.message}"
        for i in issues
    ]
    lines.append(summary_line(issues))
    return "\n".join(lines)


def summary_line(issues: Iterable[LintIssue]) -> str:
    counts = Counter(i.severity for i in issues)
    total = sum(counts.values())
    if total == 0:
        return "hcclint: clean (0 issues)"
    parts = [
        f"{counts[sev]} {_SEVERITY_TAG[sev]}{'s' if counts[sev] != 1 else ''}"
        for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        if counts[sev]
    ]
    return f"hcclint: {total} issue{'s' if total != 1 else ''} ({', '.join(parts)})"


def render_json(issues: Sequence[LintIssue]) -> str:
    counts = Counter(i.severity for i in issues)
    payload = {
        "issues": [
            {
                "rule": i.rule,
                "rule_id": i.rule_id,
                "severity": _SEVERITY_TAG[i.severity],
                "path": i.path,
                "line": i.line,
                "col": i.col,
                "message": i.message,
            }
            for i in issues
        ],
        "summary": {
            "total": len(issues),
            "errors": counts[Severity.ERROR],
            "warnings": counts[Severity.WARNING],
            "infos": counts[Severity.INFO],
        },
    }
    return json.dumps(payload, indent=2)


_SARIF_LEVEL = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def sarif_log(runs: Sequence[dict]) -> dict:
    """The SARIF 2.1.0 top-level envelope."""
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": list(runs)}


def _sarif_driver(name: str, rules: Sequence[dict]) -> dict:
    return {
        "tool": {
            "driver": {
                "name": name,
                "informationUri": "https://github.com/hcc-mf/repro",
                "rules": list(rules),
            }
        }
    }


def sarif_for_issues(
    issues: Sequence[LintIssue], rules: Sequence[Rule] | None = None
) -> dict:
    """One SARIF run for a set of lint issues."""
    known = {r.rule_id: r for r in (rules or [])}
    used_ids = sorted({i.rule_id for i in issues} | set(known))
    rule_objs = []
    index_of: dict[str, int] = {}
    for idx, rule_id in enumerate(used_ids):
        index_of[rule_id] = idx
        rule = known.get(rule_id)
        obj: dict = {"id": rule_id}
        if rule is not None:
            obj["name"] = rule.name
            obj["shortDescription"] = {"text": rule.name}
            if rule.rationale:
                obj["fullDescription"] = {"text": rule.rationale}
            obj["defaultConfiguration"] = {
                "level": _SARIF_LEVEL[Severity(rule.severity)]
            }
        rule_objs.append(obj)
    results = [
        {
            "ruleId": i.rule_id,
            "ruleIndex": index_of[i.rule_id],
            "level": _SARIF_LEVEL[i.severity],
            "message": {"text": i.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": i.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(i.line, 1),
                            "startColumn": i.col + 1,
                        },
                    }
                }
            ],
        }
        for i in issues
    ]
    run = _sarif_driver("hcclint", rule_objs)
    run["results"] = results
    run["columnKind"] = "utf16CodeUnits"
    return run


def render_sarif(
    issues: Sequence[LintIssue], rules: Sequence[Rule] | None = None
) -> str:
    """SARIF 2.1.0 document for ``repro lint --format sarif``."""
    return json.dumps(sarif_log([sarif_for_issues(issues, rules)]), indent=2)


def sarif_for_race(result) -> dict:
    """One SARIF run for a :class:`~repro.analysis.race.RaceCheckResult`.

    Race findings are dynamic (event-trace) facts without a source
    location, so results carry only rule ids and messages; the per-label
    report context is folded into the message text.
    """
    rule_ids: list[str] = []
    results = []

    def add(rule_id: str, message: str) -> None:
        if rule_id not in rule_ids:
            rule_ids.append(rule_id)
        results.append(
            {
                "ruleId": rule_id,
                "ruleIndex": rule_ids.index(rule_id),
                "level": "error",
                "message": {"text": message},
            }
        )

    for report in result.reports:
        for violation in report.violations:
            add(
                f"race/{violation.kind}",
                f"[{report.label}] {violation.message}",
            )
    for label, violations in sorted(result.static_violations.items()):
        for violation in violations:
            add(f"race/{violation.kind}", f"[static:{label}] {violation.message}")
    run = _sarif_driver(
        "repro-race-check", [{"id": rule_id} for rule_id in sorted(rule_ids)]
    )
    # rebuild indices against the sorted rule array
    order = {rule_id: i for i, rule_id in enumerate(sorted(rule_ids))}
    for res in results:
        res["ruleIndex"] = order[res["ruleId"]]
    run["results"] = results
    return run


def render_race_sarif(result) -> str:
    """SARIF 2.1.0 document for ``repro race-check --format sarif``."""
    return json.dumps(sarif_log([sarif_for_race(result)]), indent=2)


def render_rules(rules: Sequence[Rule]) -> str:
    """Rule catalogue for ``repro lint --rules``."""
    blocks = []
    for r in rules:
        blocks.append(
            f"{r.rule_id} {r.name} [{_SEVERITY_TAG[Severity(r.severity)]}]\n"
            f"    {r.rationale}"
        )
    return "\n".join(blocks)
