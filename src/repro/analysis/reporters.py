"""Output formats for hcclint findings (text for humans, JSON for CI)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from repro.analysis.lint import LintIssue, Rule, Severity

_SEVERITY_TAG = {
    Severity.INFO: "info",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render_text(issues: Sequence[LintIssue]) -> str:
    """``path:line:col: severity RULEID (slug): message`` lines + summary."""
    lines = [
        f"{i.path}:{i.line}:{i.col}: {_SEVERITY_TAG[i.severity]} "
        f"{i.rule_id} ({i.rule}): {i.message}"
        for i in issues
    ]
    lines.append(summary_line(issues))
    return "\n".join(lines)


def summary_line(issues: Iterable[LintIssue]) -> str:
    counts = Counter(i.severity for i in issues)
    total = sum(counts.values())
    if total == 0:
        return "hcclint: clean (0 issues)"
    parts = [
        f"{counts[sev]} {_SEVERITY_TAG[sev]}{'s' if counts[sev] != 1 else ''}"
        for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        if counts[sev]
    ]
    return f"hcclint: {total} issue{'s' if total != 1 else ''} ({', '.join(parts)})"


def render_json(issues: Sequence[LintIssue]) -> str:
    counts = Counter(i.severity for i in issues)
    payload = {
        "issues": [
            {
                "rule": i.rule,
                "rule_id": i.rule_id,
                "severity": _SEVERITY_TAG[i.severity],
                "path": i.path,
                "line": i.line,
                "col": i.col,
                "message": i.message,
            }
            for i in issues
        ],
        "summary": {
            "total": len(issues),
            "errors": counts[Severity.ERROR],
            "warnings": counts[Severity.WARNING],
            "infos": counts[Severity.INFO],
        },
    }
    return json.dumps(payload, indent=2)


def render_rules(rules: Sequence[Rule]) -> str:
    """Rule catalogue for ``repro lint --rules``."""
    blocks = []
    for r in rules:
        blocks.append(
            f"{r.rule_id} {r.name} [{_SEVERITY_TAG[Severity(r.severity)]}]\n"
            f"    {r.rationale}"
        )
    return "\n".join(blocks)
