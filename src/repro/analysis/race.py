"""Dynamic race / ownership detector for the HCC-MF epoch structure.

The paper's concurrency argument (3.4 Strategy 1 + 3.5) rests on two
runtime properties:

* **Disjoint P-row ownership** — the row grid gives every worker an
  exclusive set of user rows, so in-place P updates need no merging and
  "transmit Q only" is collision-free;
* **One-copy buffer discipline** — per epoch, the server deposits the
  pull buffer exactly once and each worker deposits its own push buffer
  exactly once ("data copy usually happens only once in one epoch").

This module *records* what actually happens and checks both.  Accesses
go into a :class:`RaceLog` whose entries carry vector-clock snapshots:
worker events within an epoch have no happens-before edges between
workers (they model the asynchronous training phase), while the
server's end-of-epoch barrier merges all clocks.  Two P-range writes
from different workers are therefore flagged only when they are
*concurrent* — same-epoch overlap is a race, cross-epoch overlap after
a barrier (e.g. a repartition between epochs) is legal.

:func:`tracked_train` replays a real numeric training (ParameterServer
+ SGD kernels) with instrumented buffers, so the §3.4/§3.5 guarantees
are proven against actual execution, not a hand-written model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.partition import PartitionPlan, dp0, dp1, dp2
from repro.core.server import ParameterServer
from repro.data.grid import GridAssignment
from repro.data.ratings import RatingMatrix
from repro.data.synthetic import SyntheticConfig, generate_low_rank
from repro.mf.kernels import sgd_epoch
from repro.mf.model import MFModel

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One recorded access: who touched what, when, with which clock."""

    actor: int            # worker index, or RaceLog.server_actor
    epoch: int
    op: str               # READ or WRITE
    target: str           # "P", "pull", "push:<i>", ...
    lo: int = 0
    hi: int = 0           # row range [lo, hi) for ranged targets
    clock: tuple[int, ...] = ()

    def overlaps(self, other: "Access") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def happens_before(self, other: "Access") -> bool:
        if len(self.clock) != len(other.clock):
            raise ValueError("clock arity mismatch")
        return self.clock != other.clock and all(
            a <= b for a, b in zip(self.clock, other.clock)
        )

    def concurrent_with(self, other: "Access") -> bool:
        return not self.happens_before(other) and not other.happens_before(self)


@dataclass(frozen=True)
class RaceViolation:
    """One detected invariant violation."""

    kind: str             # "p-row-overlap" | "double-copy" | "foreign-write"
                          # | "range-overlap" | "duplicate-entries" | "row-overlap"
    message: str
    first: Access | None = None
    second: Access | None = None


class RaceLog:
    """Vector-clock access log for one training run.

    Actors ``0..n_workers-1`` are workers; :attr:`server_actor` is the
    server.  :meth:`advance_epoch` is the end-of-epoch barrier: it
    merges every actor's clock, ordering everything before it against
    everything after.
    """

    def __init__(self, n_workers: int):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.server_actor = n_workers
        self._n_actors = n_workers + 1
        self._clocks = [[0] * self._n_actors for _ in range(self._n_actors)]
        self.events: list[Access] = []
        self.epoch = 0

    # -- recording -----------------------------------------------------
    def record(
        self, actor: int, op: str, target: str, lo: int = 0, hi: int = 0
    ) -> Access:
        if not (0 <= actor < self._n_actors):
            raise ValueError(f"unknown actor {actor}")
        if op not in (READ, WRITE):
            raise ValueError(f"op must be {READ!r} or {WRITE!r}")
        clock = self._clocks[actor]
        clock[actor] += 1
        event = Access(actor, self.epoch, op, target, int(lo), int(hi), tuple(clock))
        self.events.append(event)
        return event

    def advance_epoch(self) -> None:
        """Barrier: merge all clocks, then start the next epoch."""
        merged = [max(c[i] for c in self._clocks) for i in range(self._n_actors)]
        for actor in range(self._n_actors):
            self._clocks[actor] = list(merged)
        self.epoch += 1

    # -- analysis ------------------------------------------------------
    def p_row_conflicts(self) -> list[RaceViolation]:
        """Concurrent overlapping P-range accesses from different workers."""
        out: list[RaceViolation] = []
        p_events = [e for e in self.events if e.target == "P"]
        for i, a in enumerate(p_events):
            for b in p_events[i + 1:]:
                if a.actor == b.actor:
                    continue
                if WRITE not in (a.op, b.op):
                    continue
                if not a.overlaps(b):
                    continue
                if a.concurrent_with(b):
                    out.append(
                        RaceViolation(
                            kind="p-row-overlap",
                            message=(
                                f"workers {a.actor} and {b.actor} concurrently "
                                f"{a.op}/{b.op} overlapping P rows "
                                f"[{max(a.lo, b.lo)}, {min(a.hi, b.hi)}) in "
                                f"epoch {a.epoch} — row-grid ownership broken "
                                "(paper 3.4 Strategy 1)"
                            ),
                            first=a,
                            second=b,
                        )
                    )
        return out

    def copy_discipline_violations(self) -> list[RaceViolation]:
        """One pull deposit per epoch; one push deposit per worker per epoch."""
        out: list[RaceViolation] = []
        writes: dict[tuple[int, str], list[Access]] = {}
        for e in self.events:
            if e.op is not WRITE and e.op != WRITE:
                continue
            if e.target == "pull" or e.target.startswith("push:"):
                writes.setdefault((e.epoch, e.target), []).append(e)
        for (epoch, target), events in sorted(writes.items()):
            if len(events) > 1:
                out.append(
                    RaceViolation(
                        kind="double-copy",
                        message=(
                            f"{target} buffer deposited {len(events)} times in "
                            f"epoch {epoch}; the one-copy discipline (paper "
                            "3.5) allows exactly one"
                        ),
                        first=events[0],
                        second=events[1],
                    )
                )
            for e in events:
                owner = (
                    self.server_actor
                    if target == "pull"
                    else int(target.split(":", 1)[1])
                )
                if e.actor != owner:
                    out.append(
                        RaceViolation(
                            kind="foreign-write",
                            message=(
                                f"actor {e.actor} wrote {target} in epoch "
                                f"{epoch}, but that buffer belongs to actor "
                                f"{owner}"
                            ),
                            first=e,
                        )
                    )
        return out

    def violations(self) -> list[RaceViolation]:
        return self.p_row_conflicts() + self.copy_discipline_violations()


# ---------------------------------------------------------------------------
# static ownership check on a materialized partition
# ---------------------------------------------------------------------------
def check_row_ownership(
    assignments: Sequence[GridAssignment],
    ratings: RatingMatrix | None = None,
) -> list[RaceViolation]:
    """Prove a row-grid plan's P ownership is disjoint (or say why not).

    Checks claimed ranges, entry-index sets and (when ``ratings`` is
    given) the actual row occupancy of every worker's shard.  Only
    meaningful for row/column-grid plans; entry-level partitions share
    rows by design.
    """
    out: list[RaceViolation] = []
    for i, a in enumerate(assignments):
        for b in assignments[i + 1:]:
            if a.span > 0 and b.span > 0 and a.lo < b.hi and b.lo < a.hi:
                out.append(
                    RaceViolation(
                        kind="range-overlap",
                        message=(
                            f"workers {a.worker} and {b.worker} both claim "
                            f"{a.kind.value} range "
                            f"[{max(a.lo, b.lo)}, {min(a.hi, b.hi)})"
                        ),
                    )
                )
            shared = np.intersect1d(a.entries, b.entries)
            if shared.size:
                out.append(
                    RaceViolation(
                        kind="duplicate-entries",
                        message=(
                            f"workers {a.worker} and {b.worker} share "
                            f"{shared.size} training entries; every rating "
                            "must be trained by exactly one worker"
                        ),
                    )
                )
            if ratings is not None and a.nnz and b.nnz:
                rows_a = np.unique(ratings.rows[a.entries])
                rows_b = np.unique(ratings.rows[b.entries])
                common = np.intersect1d(rows_a, rows_b)
                if common.size:
                    out.append(
                        RaceViolation(
                            kind="row-overlap",
                            message=(
                                f"workers {a.worker} and {b.worker} both hold "
                                f"entries for {common.size} P rows (e.g. row "
                                f"{int(common[0])}); in-place P updates would "
                                "race"
                            ),
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# buffer instrumentation
# ---------------------------------------------------------------------------
def attach_to_server(server: ParameterServer, log: RaceLog) -> None:
    """Wire a server's pull/push buffers into the race log.

    Uses the observer hooks on :class:`~repro.core.comm.PullBuffer` /
    :class:`~repro.core.comm.PushBuffer`; afterwards every deposit,
    read and consume lands in the log with the right actor attribution.
    """
    if server.n_workers != log.n_workers:
        raise ValueError("server/log worker count mismatch")

    def on_pull(op: str, worker: int | None) -> None:
        if op == "deposit":
            log.record(log.server_actor, WRITE, "pull")
        elif op == "read":
            actor = log.server_actor if worker is None else worker
            log.record(actor, READ, "pull")

    server.pull_buffer.observer = on_pull
    for i, buf in enumerate(server.push_buffers):
        def on_push(op: str, worker: int | None, _i: int = i) -> None:
            if op == "deposit":
                actor = _i if worker is None else worker
                log.record(actor, WRITE, f"push:{_i}")
            elif op == "consume":
                log.record(log.server_actor, READ, f"push:{_i}")

        buf.observer = on_push


# ---------------------------------------------------------------------------
# instrumented training replay
# ---------------------------------------------------------------------------
@dataclass
class RaceReport:
    """Outcome of a tracked run: what happened and what it violated."""

    label: str
    n_workers: int
    epochs: int
    violations: list[RaceViolation]
    n_events: int
    rmse_history: list[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (
            f"[{self.label}] {self.n_workers} workers x {self.epochs} epochs, "
            f"{self.n_events} recorded accesses: "
        )
        if self.ok:
            return head + "OK (disjoint P ownership, one-copy discipline held)"
        lines = [head + f"{len(self.violations)} violation(s)"]
        lines += [f"  - [{v.kind}] {v.message}" for v in self.violations]
        return "\n".join(lines)


def tracked_train(
    ratings: RatingMatrix,
    assignments: Sequence[GridAssignment],
    k: int = 8,
    epochs: int = 2,
    lr: float = 0.01,
    reg: float = 0.02,
    seed: int = 0,
    label: str = "tracked",
    log: RaceLog | None = None,
) -> RaceReport:
    """Run a real in-process training with instrumented buffers.

    Replays the epoch structure of the executor — pull, asynchronous
    per-worker SGD on the shared P, push, server merge, barrier — and
    records every buffer access plus each worker's actual P-row write
    span (taken from its shard, so an overlapping assignment *is* an
    overlapping write).
    """
    n = len(assignments)
    if log is None:
        log = RaceLog(n)
    model = MFModel.init_for(ratings, k, seed=seed)
    server = ParameterServer(model, n)
    attach_to_server(server, log)
    shards = [a.extract(ratings).sort_by_row() for a in assignments]
    rngs = [np.random.default_rng(seed + 101 * (a.worker + 1)) for a in assignments]

    history: list[float] = []
    for _ in range(epochs):
        server.begin_epoch()
        for a, shard, rng in zip(assignments, shards, rngs):
            q_local = server.pull(worker=a.worker)
            # wraps the shared P without copying: in-place row updates,
            # exactly the executor's semantics
            wmodel = MFModel(model.P, q_local)
            if shard.nnz:
                log.record(
                    a.worker,
                    WRITE,
                    "P",
                    int(shard.rows.min()),
                    int(shard.rows.max()) + 1,
                )
                sgd_epoch(wmodel, shard, lr, reg, rng=rng)
            server.push_and_sync(a.worker, wmodel.Q, 1.0)
        log.advance_epoch()
        history.append(model.rmse(ratings))

    return RaceReport(
        label=label,
        n_workers=n,
        epochs=epochs,
        violations=log.violations(),
        n_events=len(log.events),
        rmse_history=history,
    )


# ---------------------------------------------------------------------------
# end-to-end check (CLI + test entry point)
# ---------------------------------------------------------------------------
def inject_overlap(
    assignments: Sequence[GridAssignment],
) -> list[GridAssignment]:
    """Corrupt a plan: worker 1 additionally claims worker 0's shard.

    Produces exactly the overlapping-ownership bug class the detector
    exists for (two workers writing the same P rows in one epoch).
    """
    if len(assignments) < 2:
        raise ValueError("need at least two workers to overlap")
    a0, a1 = assignments[0], assignments[1]
    corrupted = GridAssignment(
        worker=a1.worker,
        kind=a1.kind,
        lo=min(a0.lo, a1.lo),
        hi=max(a0.hi, a1.hi),
        entries=np.concatenate([a0.entries, a1.entries]),
    )
    return [assignments[0], corrupted, *assignments[2:]]


def _demo_plans(n_workers: int) -> dict[str, PartitionPlan]:
    """DP0/DP1/DP2 plans over a synthetic heterogeneous platform.

    Worker 0 plays the GPU (fastest independent time); DP1 compensates a
    modeled CPU-side interference penalty; DP2 staggers by a sync time.
    """
    rates = [1.0 + 1.5 * i for i in range(n_workers)]
    is_gpu = [i == 0 for i in range(n_workers)]

    def measure(x: Sequence[float]) -> list[float]:
        # co-running interference: CPU-class workers run 25% slow (the
        # runtime effect DP1's compensation loop exists to absorb)
        return [
            r * xi * (1.0 if gpu else 1.25)
            for r, xi, gpu in zip(rates, x, is_gpu)
        ]

    plans = {"dp0": dp0(rates)}
    if n_workers > 1:
        plans["dp1"] = dp1(plans["dp0"], measure, is_gpu)
        plans["dp2"] = dp2(plans["dp1"], sync_time=0.02 * min(rates))
    return plans


@dataclass
class RaceCheckResult:
    """Everything ``repro race-check`` produced."""

    reports: list[RaceReport]
    static_violations: dict[str, list[RaceViolation]]
    injected_report: RaceReport | None = None

    @property
    def injected_detected(self) -> bool:
        return self.injected_report is not None and not self.injected_report.ok

    @property
    def ok(self) -> bool:
        clean = all(r.ok for r in self.reports) and not any(
            self.static_violations.values()
        )
        if self.injected_report is not None:
            # the corrupted run must be *caught* for the check to pass
            clean = clean and self.injected_detected
        return clean

    def render(self) -> str:
        lines = []
        for label, violations in self.static_violations.items():
            if violations:
                lines.append(f"[{label}] static ownership check: "
                             f"{len(violations)} violation(s)")
                lines += [f"  - [{v.kind}] {v.message}" for v in violations]
            else:
                lines.append(f"[{label}] static ownership check: OK")
        lines += [r.render() for r in self.reports]
        if self.injected_report is not None:
            lines.append(self.injected_report.render())
            lines.append(
                "injected overlap detected: "
                + ("yes (detector works)" if self.injected_detected
                   else "NO — detector miss")
            )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"race-check: {verdict}")
        return "\n".join(lines)


def race_check(
    n_workers: int = 3,
    nnz: int = 2000,
    epochs: int = 2,
    seed: int = 0,
    with_injected_overlap: bool = False,
) -> RaceCheckResult:
    """Prove P-row ownership + one-copy discipline for DP0/DP1/DP2 plans.

    With ``with_injected_overlap`` the DP0 plan is additionally run with
    a deliberately corrupted assignment, demonstrating that the detector
    catches the collision (that run is *expected* to report violations
    and does not affect :attr:`RaceCheckResult.ok`).
    """
    config = SyntheticConfig(
        m=40 * n_workers, n=20 * n_workers, nnz=nnz, rating_step=0.5
    )
    ratings = generate_low_rank(config, seed=seed).shuffle(seed)
    reports: list[RaceReport] = []
    static: dict[str, list[RaceViolation]] = {}
    for label, plan in _demo_plans(n_workers).items():
        assignments = plan.materialize(ratings)
        static[label] = check_row_ownership(assignments, ratings)
        reports.append(
            tracked_train(
                ratings, assignments, epochs=epochs, seed=seed, label=label
            )
        )
    result = RaceCheckResult(reports=reports, static_violations=static)
    if with_injected_overlap and n_workers >= 2:
        corrupted = inject_overlap(_demo_plans(n_workers)["dp0"].materialize(ratings))
        result.injected_report = tracked_train(
            ratings, corrupted, epochs=1, seed=seed, label="dp0+injected-overlap"
        )
    return result
