"""Module classification for the hcclint domain rules.

Rules apply to different slices of the codebase: the per-sample SGD hot
paths, the FP32 kernel code, the worker/server loop modules, the
cost-model formula modules, and the set of modules allowed to mutate
the P/Q feature matrices directly.  Membership is keyed on the
repo-relative module path (``repro/mf/kernels.py``), so the linter
classifies files the same way regardless of the working directory.

Functions outside these modules can opt into the hot-path rules with a
``# hcclint: hot-path`` comment on (or directly above) their ``def``
line.
"""

from __future__ import annotations

import re

#: Per-sample / per-batch SGD code: allocation there multiplies by nnz.
HOT_PATH_MODULES = frozenset(
    {
        "repro/core/worker.py",
        "repro/engine/backends.py",
        "repro/mf/kernels.py",
        "repro/parallel/executor.py",
    }
)

#: FP32 training kernels (paper 3.4: FP32 compute, FP16 wire): silent
#: float64 promotion doubles bandwidth and hides precision assumptions.
KERNEL_MODULES = frozenset(
    {
        "repro/mf/kernels.py",
        "repro/mf/model.py",
        "repro/core/compression.py",
    }
)

#: Worker/server loop bodies: a blocking call here stalls an epoch.
WORKER_LOOP_MODULES = frozenset(
    {
        "repro/core/worker.py",
        "repro/core/server.py",
        "repro/engine/backends.py",
        "repro/parallel/executor.py",
    }
)

#: Eq. 1-7 formula code, where bytes and seconds must never be added.
COST_MODEL_MODULES = frozenset(
    {
        "repro/core/comm.py",
        "repro/core/cost_model.py",
        "repro/hardware/specs.py",
    }
)

#: Modules allowed to write P/Q directly: the SGD kernels and trainers
#: (``repro/mf/``) plus the server/framework/executor sync paths.
PQ_OWNER_PREFIXES = ("repro/mf/",)
PQ_OWNER_MODULES = frozenset(
    {
        "repro/core/server.py",
        "repro/core/framework.py",
        "repro/core/checkpoint.py",
        "repro/engine/backends.py",
        "repro/parallel/executor.py",
    }
)

#: Timing / telemetry code, where wall-clock (``time.time``) timestamps
#: are wrong: they jump under NTP slew, so spans can end before they
#: start and cross-process timelines misalign.  ``time.perf_counter``
#: is the system-wide monotonic base every span and probe must share.
# the serving plane measures request latency, so it shares the base
TIMING_MODULE_PREFIXES = ("repro/obs/", "repro/serving/")
TIMING_MODULES = frozenset(
    {
        "repro/hardware/profiler.py",
        "repro/engine/backends.py",
        "repro/parallel/executor.py",
        "repro/core/server.py",
        "repro/core/worker.py",
        # the perf-trajectory plane measures everything it reports; the
        # prefix above already covers these, but they are named here so
        # moving them out of repro/obs/ cannot silently drop the rule
        "repro/obs/bench.py",
        "repro/obs/profile.py",
    }
)

#: Modules allowed to contain epoch-loop orchestration (HCC111): the
#: engine layer owns the pull/compute/push/sync sequence; the legacy
#: plane modules may keep only delegating facades and the rotation loop.
EPOCH_LOOP_MODULE_PREFIXES = ("repro/engine/",)
EPOCH_LOOP_GUARDED_MODULES = frozenset(
    {
        "repro/core/framework.py",
        "repro/core/server.py",
        "repro/core/worker.py",
        "repro/parallel/executor.py",
        "repro/parallel/tuning.py",
    }
)

#: Exception-safety scope (HCC202): the engine's attempt loop and the
#: resilience layer are the only places that mutate P/Q or open backend
#: attempts under recovery pressure, so a raise that escapes them with
#: state half-mutated corrupts the next attempt instead of failing it.
EXCEPTION_SAFETY_PREFIXES = ("repro/engine/", "repro/resilience/")

#: Multi-process coordination code (HCC112): an unbounded ``.wait()`` /
#: ``.join()`` / ``.get()`` here deadlocks forever when a peer process
#: dies instead of surfacing a detectable failure — every blocking
#: rendezvous must carry a timeout so the failure detector gets a turn.
BOUNDED_WAIT_PREFIXES = ("repro/parallel/", "repro/engine/")

HOT_MARKER_RE = re.compile(r"#\s*hcclint:\s*hot-path\b")


def module_key(path: str) -> str:
    """Repo-relative module key: the path from the ``repro/`` package root.

    Falls back to the bare filename for paths outside the package (test
    fixtures, scratch files), which keeps every scoped rule inert there
    unless the file opts in via marker comments.
    """
    posix = path.replace("\\", "/")
    marker = "/repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        return "repro/" + posix[idx + len(marker):]
    if posix.startswith("repro/"):
        return posix
    return posix.rsplit("/", 1)[-1]


def is_hot_module(key: str) -> bool:
    return key in HOT_PATH_MODULES


def is_kernel_module(key: str) -> bool:
    return key in KERNEL_MODULES


def is_worker_loop_module(key: str) -> bool:
    return key in WORKER_LOOP_MODULES


def is_cost_model_module(key: str) -> bool:
    return key in COST_MODEL_MODULES


def is_pq_owner_module(key: str) -> bool:
    return key in PQ_OWNER_MODULES or key.startswith(PQ_OWNER_PREFIXES)


def is_timing_module(key: str) -> bool:
    return key in TIMING_MODULES or key.startswith(TIMING_MODULE_PREFIXES)


def is_epoch_loop_guarded_module(key: str) -> bool:
    return key in EPOCH_LOOP_GUARDED_MODULES and not key.startswith(
        EPOCH_LOOP_MODULE_PREFIXES
    )


def is_bounded_wait_module(key: str) -> bool:
    return key.startswith(BOUNDED_WAIT_PREFIXES)


def is_exception_safety_module(key: str) -> bool:
    return key.startswith(EXCEPTION_SAFETY_PREFIXES)
