"""Registry of the paper's evaluation datasets (Table 3).

Each :class:`DatasetSpec` records the *full-scale* shape statistics and
training hyper-parameters from Table 3 of the paper.  The analytical
time-cost model always runs at full scale (it only needs m, n, nnz);
numeric SGD training uses :meth:`DatasetSpec.scaled` instances that
preserve density and rating scale at laptop-size nnz.

Table 3 of the paper:

====================  ========  ========  ===========  ==========
Data set              m         n         nnz          lambda1,2
====================  ========  ========  ===========  ==========
Netflix               480190    17771     99072112     0.01
Yahoo! Music R1       1948883   1101750   115579437    1
R1*                   1948883   1101750   199999997    1
Yahoo! Music R2       1000000   136736    383838609    0.01
Movielens-20m         138494    131263    20000260     0.01
====================  ========  ========  ===========  ==========

learning rate gamma = 0.005 throughout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.data.ratings import RatingMatrix
from repro.data.synthetic import SyntheticConfig, generate_low_rank


@dataclass(frozen=True)
class DatasetSpec:
    """Shape statistics and MF hyper-parameters for one dataset."""

    name: str
    m: int
    n: int
    nnz: int
    reg: float = 0.01          # lambda1 = lambda2 in the paper's loss
    learning_rate: float = 0.005
    rating_min: float = 1.0
    rating_max: float = 5.0
    rating_step: float = 1.0

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.nnz) <= 0:
            raise ValueError("m, n, nnz must be positive")
        if self.nnz > self.m * self.n:
            raise ValueError("nnz exceeds matrix capacity")

    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        """m + n, the communication-cost driver."""
        return self.m + self.n

    @property
    def density(self) -> float:
        return self.nnz / float(self.m * self.n)

    @property
    def reuse_ratio(self) -> float:
        """nnz/(m+n); below ~1e3 communication rivals computation (3.4)."""
        return self.nnz / float(self.dims)

    @property
    def q_only_reuse(self) -> float:
        """nnz/min(m,n): the comm/compute driver *after* Strategy 1.

        "Transmit Q only" shrinks the recurring traffic to the smaller
        dimension, so this is the ratio that decides whether a dataset
        stays communication-bound once optimized (Netflix ~5.6e3 and R2
        ~2.8e3 escape; R1 ~105 and MovieLens ~152 do not — exactly the
        paper's Table 4 utilization split).
        """
        return self.nnz / float(min(self.m, self.n))

    @property
    def rows_dominate(self) -> bool:
        """True when m > n, i.e. row grid + "transmit Q only" apply."""
        return self.m > self.n

    # ------------------------------------------------------------------
    def scaled(self, max_nnz: int) -> "DatasetSpec":
        """Shrink to at most ``max_nnz`` entries, preserving density.

        m and n shrink by sqrt(f) so that nnz/(m*n) is invariant; the
        rating scale and hyper-parameters are kept.  Used for numeric
        (convergence) experiments — the analytic timing model keeps the
        full-scale spec.
        """
        if max_nnz <= 0:
            raise ValueError("max_nnz must be positive")
        if max_nnz >= self.nnz:
            return self
        f = max_nnz / self.nnz
        s = math.sqrt(f)
        m = max(4, int(round(self.m * s)))
        n = max(4, int(round(self.n * s)))
        nnz = min(max_nnz, m * n)
        return replace(self, name=f"{self.name}@{max_nnz}", m=m, n=n, nnz=nnz)

    def synthetic_config(self, rank: int = 8, noise: float = 0.08) -> SyntheticConfig:
        return SyntheticConfig(
            m=self.m,
            n=self.n,
            nnz=self.nnz,
            rank=rank,
            rating_min=self.rating_min,
            rating_max=self.rating_max,
            rating_step=self.rating_step,
            noise=noise,
        )

    def generate(self, seed: int = 0, rank: int = 8, noise: float = 0.08) -> RatingMatrix:
        """Materialize a synthetic rating matrix with this spec's shape."""
        return generate_low_rank(self.synthetic_config(rank=rank, noise=noise), seed=seed)


NETFLIX = DatasetSpec(
    name="Netflix", m=480_190, n=17_771, nnz=99_072_112,
    reg=0.01, rating_min=1.0, rating_max=5.0, rating_step=1.0,
)

YAHOO_R1 = DatasetSpec(
    name="R1", m=1_948_883, n=1_101_750, nnz=115_579_437,
    reg=1.0, rating_min=0.0, rating_max=100.0, rating_step=1.0,
)

R1_STAR = DatasetSpec(
    name="R1*", m=1_948_883, n=1_101_750, nnz=199_999_997,
    reg=1.0, rating_min=0.0, rating_max=100.0, rating_step=1.0,
)

YAHOO_R2 = DatasetSpec(
    name="R2", m=1_000_000, n=136_736, nnz=383_838_609,
    reg=0.01, rating_min=1.0, rating_max=5.0, rating_step=1.0,
)

MOVIELENS_20M = DatasetSpec(
    name="MovieLens-20m", m=138_494, n=131_263, nnz=20_000_260,
    reg=0.01, rating_min=0.5, rating_max=5.0, rating_step=0.5,
)

DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in (NETFLIX, YAHOO_R1, R1_STAR, YAHOO_R2, MOVIELENS_20M)
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by its Table 3 name (case-insensitive)."""
    for key, spec in DATASETS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
