"""Sparse rating-matrix container used throughout HCC-MF.

The rating matrix ``R`` (paper Figure 1) is stored in coordinate (COO)
form: three parallel arrays of row indices, column indices, and rating
values.  COO is the natural layout for SGD-based MF because one training
sample *is* one coordinate triple; the per-epoch shuffle (preprocessing
step 1 in Figure 4) is a permutation of the triple arrays, and a row-grid
partition (step 2) is a slice of them.

The container is deliberately immutable-by-convention: all transforms
(``shuffle``, ``sort_by_row``, ``select_rows`` ...) return new
``RatingMatrix`` instances sharing no index state with the original, so
workers can never alias each other's training order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np
from scipy import sparse as sp


def _as_index_array(a) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"index array must be 1-D, got shape {arr.shape}")
    return arr


def _as_value_array(a) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=np.float32)
    if arr.ndim != 1:
        raise ValueError(f"value array must be 1-D, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class RatingMatrix:
    """A sparse rating matrix in COO form.

    Parameters
    ----------
    m, n:
        Number of rows (users) and columns (items).
    rows, cols:
        Per-entry row / column indices, ``int64``, length ``nnz``.
    vals:
        Per-entry rating values, ``float32``, length ``nnz``.
    """

    m: int
    n: int
    rows: np.ndarray = field(repr=False)
    cols: np.ndarray = field(repr=False)
    vals: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", _as_index_array(self.rows))
        object.__setattr__(self, "cols", _as_index_array(self.cols))
        object.__setattr__(self, "vals", _as_value_array(self.vals))
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError(
                "rows, cols, vals must have equal length, got "
                f"{len(self.rows)}, {len(self.cols)}, {len(self.vals)}"
            )
        if self.m <= 0 or self.n <= 0:
            raise ValueError(f"matrix dimensions must be positive, got {self.m}x{self.n}")
        if len(self.rows) and (self.rows.min() < 0 or self.rows.max() >= self.m):
            raise ValueError("row index out of bounds")
        if len(self.cols) and (self.cols.min() < 0 or self.cols.max() >= self.n):
            raise ValueError("column index out of bounds")
        if len(self.vals) and not np.all(np.isfinite(self.vals)):
            raise ValueError("rating values must be finite")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of observed ratings."""
        return int(len(self.vals))

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    @property
    def density(self) -> float:
        """Fraction of the m*n cells that are observed."""
        return self.nnz / float(self.m * self.n)

    @property
    def dims(self) -> int:
        """``m + n`` — the quantity that drives communication cost (Eq. 2)."""
        return self.m + self.n

    @property
    def reuse_ratio(self) -> float:
        """``nnz / (m + n)``: average reuse of a feature row per epoch.

        The paper (section 3.4) shows that when this ratio drops below
        ~1e3, communication and computation costs are of the same order.
        """
        return self.nnz / float(self.dims)

    def row_counts(self) -> np.ndarray:
        """Number of observed ratings per row (user activity)."""
        return np.bincount(self.rows, minlength=self.m)

    def col_counts(self) -> np.ndarray:
        """Number of observed ratings per column (item popularity)."""
        return np.bincount(self.cols, minlength=self.n)

    def mean_rating(self) -> float:
        return float(self.vals.mean()) if self.nnz else 0.0

    # ------------------------------------------------------------------
    # constructors / converters
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense, missing=0.0) -> "RatingMatrix":
        """Build from a dense array; cells equal to *missing* are absent."""
        dense = np.asarray(dense, dtype=np.float32)
        if dense.ndim != 2:
            raise ValueError("dense rating matrix must be 2-D")
        rows, cols = np.nonzero(dense != missing)
        return cls(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])

    @classmethod
    def from_scipy(cls, mat) -> "RatingMatrix":
        coo = sp.coo_matrix(mat)
        return cls(coo.shape[0], coo.shape[1], coo.row, coo.col, coo.data)

    def to_scipy_coo(self) -> sp.coo_matrix:
        return sp.coo_matrix((self.vals, (self.rows, self.cols)), shape=self.shape)

    def to_scipy_csr(self) -> sp.csr_matrix:
        return self.to_scipy_coo().tocsr()

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float32)
        out[self.rows, self.cols] = self.vals
        return out

    def transpose(self) -> "RatingMatrix":
        """Swap users and items (used to switch row grid <-> column grid)."""
        return RatingMatrix(self.n, self.m, self.cols.copy(), self.rows.copy(), self.vals.copy())

    # ------------------------------------------------------------------
    # transforms (all return new instances)
    # ------------------------------------------------------------------
    def shuffle(self, seed: int | np.random.Generator = 0) -> "RatingMatrix":
        """Random permutation of the entries (preprocessing step 1)."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.nnz)
        return self.take(perm)

    def sort_by_row(self) -> "RatingMatrix":
        """Stable sort by (row, col).

        This is the "block sorting by row" cache optimization the paper's
        authors retro-fitted onto CuMF_SGD (footnote 1, item iii).
        """
        order = np.lexsort((self.cols, self.rows))
        return self.take(order)

    def sort_by_col(self) -> "RatingMatrix":
        order = np.lexsort((self.rows, self.cols))
        return self.take(order)

    def take(self, idx: np.ndarray) -> "RatingMatrix":
        """Entry subset / reorder by index array (keeps m, n)."""
        idx = np.asarray(idx)
        return RatingMatrix(self.m, self.n, self.rows[idx], self.cols[idx], self.vals[idx])

    def select_rows(self, row_lo: int, row_hi: int) -> "RatingMatrix":
        """Entries whose row index lies in ``[row_lo, row_hi)``.

        Row indices are preserved (not re-based) so workers can address
        the global feature matrix P directly.
        """
        if not (0 <= row_lo <= row_hi <= self.m):
            raise ValueError(f"invalid row range [{row_lo}, {row_hi}) for m={self.m}")
        mask = (self.rows >= row_lo) & (self.rows < row_hi)
        return self.take(np.nonzero(mask)[0])

    def split(self, test_fraction: float = 0.1, seed: int = 0) -> Tuple["RatingMatrix", "RatingMatrix"]:
        """Random train/test split of the observed entries."""
        if not (0.0 <= test_fraction < 1.0):
            raise ValueError("test_fraction must be in [0, 1)")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.nnz)
        n_test = int(round(self.nnz * test_fraction))
        return self.take(perm[n_test:]), self.take(perm[:n_test])

    def batches(self, batch_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(rows, cols, vals)`` mini-batch views in storage order."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for start in range(0, self.nnz, batch_size):
            stop = min(start + batch_size, self.nnz)
            yield self.rows[start:stop], self.cols[start:stop], self.vals[start:stop]

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Storage footprint of the COO arrays in bytes."""
        return self.rows.nbytes + self.cols.nbytes + self.vals.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatingMatrix(m={self.m}, n={self.n}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )
