"""Out-of-core rating-file processing.

Full-scale datasets (R2's 384M ratings are ~9 GB as text) do not fit
comfortably in memory on a workstation, so the preprocessing pipeline
needs streaming equivalents of the in-memory operations:

* :func:`stream_text_batches` — iterate a LIBMF-style triple file in
  bounded-memory chunks;
* :func:`external_shuffle` — the paper's preprocessing step 1 at scale:
  a two-pass disk shuffle (scatter to random buckets, permute each
  bucket in memory) whose peak memory is one bucket;
* :func:`count_statistics` — single-pass shape/marginal statistics for
  a file too big to load (feeds the DataManager's grid decisions).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.data.ratings import RatingMatrix


def _parse_line(line: str, path, lineno: int) -> tuple[int, int, float] | None:
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    if len(parts) != 3:
        raise ValueError(f"{path}:{lineno}: expected 'row col value', got {line!r}")
    return int(parts[0]), int(parts[1]), float(parts[2])


def stream_text_batches(
    path: str | os.PathLike,
    batch_size: int = 65_536,
    m: int | None = None,
    n: int | None = None,
) -> Iterator[RatingMatrix]:
    """Yield bounded-size RatingMatrix chunks from a triple file.

    When ``m``/``n`` are omitted they are taken from the file's ``# m n``
    header; a file with neither raises (chunk shapes must be consistent).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if stripped.startswith("#") and m is None:
                parts = stripped[1:].split()
                if len(parts) == 2:
                    m, n = int(parts[0]), int(parts[1])
                continue
            parsed = _parse_line(line, path, lineno)
            if parsed is None:
                continue
            r, c, v = parsed
            rows.append(r)
            cols.append(c)
            vals.append(v)
            if len(rows) >= batch_size:
                if m is None:
                    raise ValueError(
                        f"{path}: no '# m n' header and no explicit shape"
                    )
                yield RatingMatrix(m, n, rows, cols, vals)
                rows, cols, vals = [], [], []
    if rows:
        if m is None:
            raise ValueError(f"{path}: no '# m n' header and no explicit shape")
        yield RatingMatrix(m, n, rows, cols, vals)


@dataclass(frozen=True)
class StreamStats:
    """Single-pass statistics of a rating file."""

    m: int
    n: int
    nnz: int
    value_min: float
    value_max: float
    value_sum: float

    @property
    def mean(self) -> float:
        return self.value_sum / self.nnz if self.nnz else 0.0

    @property
    def reuse_ratio(self) -> float:
        return self.nnz / float(self.m + self.n) if (self.m + self.n) else 0.0


def count_statistics(path: str | os.PathLike) -> StreamStats:
    """Shape and value statistics without materializing the file."""
    m = n = nnz = 0
    vmin, vmax, vsum = float("inf"), float("-inf"), 0.0
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            parsed = _parse_line(line, path, lineno)
            if parsed is None:
                continue
            r, c, v = parsed
            m = max(m, r + 1)
            n = max(n, c + 1)
            nnz += 1
            vmin = min(vmin, v)
            vmax = max(vmax, v)
            vsum += v
    if nnz == 0:
        raise ValueError(f"{path}: no rating triples found")
    return StreamStats(m=m, n=n, nnz=nnz, value_min=vmin, value_max=vmax, value_sum=vsum)


def external_shuffle(
    src: str | os.PathLike,
    dst: str | os.PathLike,
    buckets: int = 16,
    seed: int = 0,
    tmp_dir: str | os.PathLike | None = None,
) -> int:
    """Disk-based shuffle of a triple file (preprocessing step 1 at scale).

    Pass 1 scatters lines to ``buckets`` temporary files by a random
    draw; pass 2 loads one bucket at a time, permutes it in memory, and
    appends to ``dst``.  Peak memory is one bucket (~nnz/buckets lines).
    This is the standard external shuffle: any fixed pair of lines is
    equally likely in either order, which is all SGD's iid-sampling
    argument needs.  Returns the line count moved.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    src, dst = Path(src), Path(dst)
    base = Path(tmp_dir) if tmp_dir is not None else dst.parent
    rng = np.random.default_rng(seed)
    bucket_paths = [base / f".shuffle-{dst.name}-{i}.tmp" for i in range(buckets)]

    header: str | None = None
    total = 0
    handles = [open(p, "w") for p in bucket_paths]
    try:
        with open(src) as fh:
            for line in fh:
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith("#"):
                    header = stripped
                    continue
                handles[int(rng.integers(0, buckets))].write(stripped + "\n")
                total += 1
    finally:
        for h in handles:
            h.close()

    try:
        with open(dst, "w") as out:
            if header is not None:
                out.write(header + "\n")
            for p in bucket_paths:
                lines = p.read_text().splitlines()
                for idx in rng.permutation(len(lines)):
                    out.write(lines[idx] + "\n")
    finally:
        for p in bucket_paths:
            p.unlink(missing_ok=True)
    return total
