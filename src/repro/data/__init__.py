"""Dataset substrate for HCC-MF.

This subpackage provides the rating-matrix data structures, synthetic
dataset generators that mirror the shape statistics of the paper's
evaluation datasets (Table 3), and the row/column grid partitioning
machinery used by the server's ``DataManager`` (paper section 3.3).
"""

from repro.data.ratings import RatingMatrix
from repro.data.synthetic import (
    SyntheticConfig,
    generate_low_rank,
    sample_sparsity_pattern,
)
from repro.data.datasets import (
    DatasetSpec,
    NETFLIX,
    YAHOO_R1,
    R1_STAR,
    YAHOO_R2,
    MOVIELENS_20M,
    DATASETS,
    get_dataset,
)
from repro.data.io import (
    load_text,
    save_text,
    load_movielens_csv,
    load_npz,
    save_npz,
)
from repro.data.analysis import (
    DatasetProfile,
    profile,
    profile_spec,
    render_profile,
    gini,
    conflict_probability,
)
from repro.data.streaming import (
    stream_text_batches,
    count_statistics,
    external_shuffle,
    StreamStats,
)
from repro.data.grid import (
    GridKind,
    GridAssignment,
    choose_grid,
    partition_rows,
    partition_entries,
    block_sort,
)

__all__ = [
    "RatingMatrix",
    "SyntheticConfig",
    "generate_low_rank",
    "sample_sparsity_pattern",
    "DatasetSpec",
    "NETFLIX",
    "YAHOO_R1",
    "R1_STAR",
    "YAHOO_R2",
    "MOVIELENS_20M",
    "DATASETS",
    "get_dataset",
    "load_text",
    "save_text",
    "load_movielens_csv",
    "load_npz",
    "save_npz",
    "DatasetProfile",
    "profile",
    "profile_spec",
    "render_profile",
    "gini",
    "conflict_probability",
    "stream_text_batches",
    "count_statistics",
    "external_shuffle",
    "StreamStats",
    "GridKind",
    "GridAssignment",
    "choose_grid",
    "partition_rows",
    "partition_entries",
    "block_sort",
]
