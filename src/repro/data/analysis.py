"""Dataset structure analysis: the numbers behind section 3.4's decisions.

Given a rating matrix (or a full-scale :class:`DatasetSpec`), these
helpers compute the statistics HCC-MF's strategy choices depend on —
reuse ratio, marginal skew, Hogwild conflict probability — and a
one-call :func:`profile` that renders them with the recommended
strategy stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import DatasetSpec
from repro.data.ratings import RatingMatrix


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a count vector (0 = uniform, -> 1 = skewed)."""
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    if len(counts) == 0:
        raise ValueError("empty counts")
    total = counts.sum()
    if total <= 0:
        return 0.0
    n = len(counts)
    cum = np.cumsum(counts)
    # standard discrete Gini over the Lorenz curve
    return float((n + 1 - 2 * np.sum(cum) / total) / n)


def conflict_probability(ratings: RatingMatrix, batch: int) -> float:
    """Probability a random update batch has a column collision.

    Hogwild's convergence argument (paper 4.2: "this influence is
    relatively small if the data are sparse and random enough") depends
    on this being small.  Approximated via the birthday bound over the
    empirical column distribution: P(collision) ~ 1 - exp(-B(B-1)/2 *
    sum p_j^2).
    """
    if batch <= 1:
        return 0.0
    counts = ratings.col_counts().astype(np.float64)
    p = counts / counts.sum()
    s = float(np.sum(p**2))
    exponent = -0.5 * batch * (batch - 1) * s
    return float(1.0 - np.exp(exponent))


@dataclass(frozen=True)
class DatasetProfile:
    """The strategy-relevant structure of a rating dataset."""

    m: int
    n: int
    nnz: int
    density: float
    reuse_ratio: float           # nnz/(m+n), section 3.4's raw driver
    q_only_reuse: float          # nnz/min(m,n): the post-Strategy-1 driver
    row_gini: float              # user-activity skew
    col_gini: float              # item-popularity skew
    mean_rating: float
    conflict_prob_4k: float      # batch-4096 column-collision probability
    comm_bound: bool             # q_only_reuse below the ~1e3 bound

    def recommended_strategies(self) -> list[str]:
        """The strategy stack section 3.4's analysis implies."""
        rec = []
        if self.m >= self.n:
            rec.append("row grid + transmit Q only (m >= n)")
        else:
            rec.append("column grid via transposition (n > m)")
        rec.append("FP16 wire (finite rating scales)")
        if self.comm_bound:
            rec.append("async streams / Q-rotate (comm ~ compute regime)")
        if self.conflict_prob_4k > 0.9:
            rec.append("reduce wave size (dense item axis: heavy conflicts)")
        return rec


def profile(ratings: RatingMatrix) -> DatasetProfile:
    """Analyze a materialized rating matrix."""
    if ratings.nnz == 0:
        raise ValueError("cannot profile an empty rating matrix")
    q_only_reuse = ratings.nnz / float(min(ratings.m, ratings.n))
    return DatasetProfile(
        m=ratings.m,
        n=ratings.n,
        nnz=ratings.nnz,
        density=ratings.density,
        reuse_ratio=ratings.reuse_ratio,
        q_only_reuse=q_only_reuse,
        row_gini=gini(ratings.row_counts()),
        col_gini=gini(ratings.col_counts()),
        mean_rating=ratings.mean_rating(),
        conflict_prob_4k=conflict_probability(ratings, 4096),
        comm_bound=q_only_reuse < 1e3,
    )


def profile_spec(spec: DatasetSpec) -> dict[str, float | bool]:
    """Shape-only analysis of a full-scale spec (no data materialized)."""
    return {
        "m": spec.m,
        "n": spec.n,
        "nnz": spec.nnz,
        "density": spec.density,
        "reuse_ratio": spec.reuse_ratio,
        "q_only_reuse": spec.q_only_reuse,
        "rows_dominate": spec.rows_dominate,
        "comm_bound": spec.q_only_reuse < 1e3,
    }


def render_profile(p: DatasetProfile) -> str:
    """Human-readable profile report."""
    lines = [
        f"shape: {p.m:,} x {p.n:,}, nnz {p.nnz:,} (density {p.density:.2e})",
        f"reuse nnz/(m+n): {p.reuse_ratio:,.1f}; after Q-only "
        f"nnz/min(m,n): {p.q_only_reuse:,.1f} "
        f"({'comm-bound' if p.comm_bound else 'compute-bound'} regime, "
        "bound ~1e3; paper 3.4)",
        f"skew (Gini): users {p.row_gini:.2f}, items {p.col_gini:.2f}",
        f"mean rating: {p.mean_rating:.2f}",
        f"batch-4096 collision probability: {p.conflict_prob_4k:.1%}",
        "recommended: " + "; ".join(p.recommended_strategies()),
    ]
    return "\n".join(lines)
