"""Row / column grid data partitioning (paper section 3.3).

The server's ``DataManager`` divides the rating matrix into groups of
whole rows (a *row grid*) or whole columns (a *column grid*), one group
per worker.  A row grid is chosen when the matrix has more rows than
columns — combined with the "transmit Q only" strategy this means local
P rows never conflict between workers.

The partition fractions ``x_i`` (how much of nnz each worker gets) come
from the DP0/DP1/DP2 strategies in :mod:`repro.core.partition`; this
module turns fractions into concrete row ranges whose *entry counts*
match the fractions as closely as whole-row boundaries allow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.ratings import RatingMatrix


class GridKind(enum.Enum):
    """Orientation of the data grid."""

    ROW = "row"
    COLUMN = "column"


def choose_grid(m: int, n: int) -> GridKind:
    """Row grid when the matrix has at least as many rows as columns."""
    return GridKind.ROW if m >= n else GridKind.COLUMN


@dataclass(frozen=True)
class GridAssignment:
    """One worker's slice of the rating matrix.

    ``lo``/``hi`` bound the assigned rows (or columns, for a column
    grid); ``entries`` indexes into the parent matrix's COO arrays.
    """

    worker: int
    kind: GridKind
    lo: int
    hi: int
    entries: np.ndarray

    @property
    def nnz(self) -> int:
        return int(len(self.entries))

    @property
    def span(self) -> int:
        return self.hi - self.lo

    def extract(self, ratings: RatingMatrix) -> RatingMatrix:
        """Materialize this assignment's entries as a RatingMatrix."""
        return ratings.take(self.entries)


def _fractions_to_boundaries(counts: np.ndarray, fractions: Sequence[float]) -> list[tuple[int, int]]:
    """Find index boundaries so cumulative counts track cumulative fractions."""
    fr = np.asarray(fractions, dtype=np.float64)
    if len(fr) == 0:
        raise ValueError("need at least one worker fraction")
    if np.any(fr < 0):
        raise ValueError("fractions must be non-negative")
    total = fr.sum()
    if total <= 0:
        raise ValueError("fractions must sum to a positive value")
    fr = fr / total

    cum_counts = np.concatenate([[0], np.cumsum(counts)])
    total_nnz = cum_counts[-1]
    targets = np.cumsum(fr)[:-1] * total_nnz
    # boundary rows where the cumulative nnz first reaches each target
    cuts = np.searchsorted(cum_counts, targets, side="left")
    cuts = np.clip(cuts, 0, len(counts))
    bounds = [0, *cuts.tolist(), len(counts)]
    # enforce monotonicity (degenerate fractions can produce equal cuts)
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return [(bounds[i], bounds[i + 1]) for i in range(len(fr))]


def partition_rows(
    ratings: RatingMatrix,
    fractions: Sequence[float],
    kind: GridKind | None = None,
) -> list[GridAssignment]:
    """Partition into per-worker whole-row (or whole-column) groups.

    Each worker ``i`` receives a contiguous range of rows whose total
    entry count approximates ``fractions[i] * nnz``.  Returns one
    :class:`GridAssignment` per worker (possibly with zero entries if a
    fraction is tiny).
    """
    if kind is None:
        kind = choose_grid(ratings.m, ratings.n)
    if kind is GridKind.ROW:
        axis_idx = ratings.rows
        axis_len = ratings.m
    else:
        axis_idx = ratings.cols
        axis_len = ratings.n

    counts = np.bincount(axis_idx, minlength=axis_len)
    ranges = _fractions_to_boundaries(counts, fractions)

    order = np.argsort(axis_idx, kind="stable")
    sorted_axis = axis_idx[order]
    assignments = []
    for worker, (lo, hi) in enumerate(ranges):
        start = np.searchsorted(sorted_axis, lo, side="left")
        stop = np.searchsorted(sorted_axis, hi, side="left")
        assignments.append(
            GridAssignment(worker=worker, kind=kind, lo=int(lo), hi=int(hi), entries=order[start:stop])
        )
    return assignments


def partition_entries(ratings: RatingMatrix, fractions: Sequence[float]) -> list[GridAssignment]:
    """Partition raw entries (ignoring row structure).

    This is the "crude and direct" partition used in the paper's
    motivation experiments (section 2.3): workers may share rows, which
    is why the server must synchronize (WAW races).  Entries are taken
    in storage order, so shuffle first for an unbiased split.
    """
    fr = np.asarray(fractions, dtype=np.float64)
    if np.any(fr < 0) or fr.sum() <= 0:
        raise ValueError("fractions must be non-negative and sum > 0")
    fr = fr / fr.sum()
    cuts = np.concatenate([[0], np.round(np.cumsum(fr) * ratings.nnz).astype(np.int64)])
    cuts[-1] = ratings.nnz
    out = []
    for worker in range(len(fr)):
        idx = np.arange(cuts[worker], cuts[worker + 1])
        out.append(
            GridAssignment(worker=worker, kind=GridKind.ROW, lo=0, hi=ratings.m, entries=idx)
        )
    return out


def block_sort(ratings: RatingMatrix, assignment: GridAssignment) -> RatingMatrix:
    """Extract an assignment's data and sort it by row for cache locality.

    Mirrors the "block sorting by row" modification the authors added to
    CuMF_SGD's ``grid_problem`` (paper footnote 1): consecutive updates
    touch nearby P rows, improving hit rate.
    """
    sub = assignment.extract(ratings)
    return sub.sort_by_row() if assignment.kind is GridKind.ROW else sub.sort_by_col()


def coverage_check(ratings: RatingMatrix, assignments: Sequence[GridAssignment]) -> bool:
    """True iff the assignments cover every entry exactly once."""
    seen = np.concatenate([a.entries for a in assignments]) if assignments else np.empty(0, dtype=np.int64)
    if len(seen) != ratings.nnz:
        return False
    return bool(np.array_equal(np.sort(seen), np.arange(ratings.nnz)))
