"""Rating-matrix file IO.

Real deployments feed HCC-MF from rating files; this module reads and
writes the three formats the MF ecosystem actually uses:

* **LIBMF/text** — one ``row col value`` triple per line (the format
  FPSGD's reference implementation consumes);
* **MovieLens CSV** — ``userId,itemId,rating[,timestamp]`` with an
  optional header, ids re-indexed densely;
* **NPZ** — NumPy's compressed binary, exact round-trip of the COO
  arrays (the fast path for checkpointing synthetic data).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.data.ratings import RatingMatrix


# ---------------------------------------------------------------------------
# LIBMF-style text triples
# ---------------------------------------------------------------------------
def save_text(ratings: RatingMatrix, path: str | os.PathLike) -> None:
    """Write ``row col value`` lines (LIBMF's training-file format)."""
    with open(path, "w") as fh:
        fh.write(f"# {ratings.m} {ratings.n}\n")
        for r, c, v in zip(ratings.rows, ratings.cols, ratings.vals):
            fh.write(f"{int(r)} {int(c)} {float(v):g}\n")


def load_text(path: str | os.PathLike) -> RatingMatrix:
    """Read ``row col value`` triples.

    An optional leading ``# m n`` comment pins the matrix shape;
    otherwise the shape is inferred as (max row + 1, max col + 1).
    """
    m = n = None
    rows, cols, vals = [], [], []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2:
                    m, n = int(parts[0]), int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"{path}:{lineno}: expected 'row col value', got {line!r}")
            rows.append(int(parts[0]))
            cols.append(int(parts[1]))
            vals.append(float(parts[2]))
    if not rows:
        raise ValueError(f"{path}: no rating triples found")
    if m is None:
        m = max(rows) + 1
        n = max(cols) + 1
    return RatingMatrix(m, n, rows, cols, vals)


# ---------------------------------------------------------------------------
# MovieLens-style CSV
# ---------------------------------------------------------------------------
def load_movielens_csv(
    path: str | os.PathLike,
    delimiter: str = ",",
) -> tuple[RatingMatrix, dict[int, int], dict[int, int]]:
    """Read ``userId,itemId,rating[,...]`` and densify the id spaces.

    Returns ``(ratings, user_id_map, item_id_map)`` where the maps take
    original ids to dense indices (MovieLens ids are sparse).
    A header line (non-numeric first field) is skipped automatically.
    """
    users_raw, items_raw, vals = [], [], []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(delimiter)
            if len(parts) < 3:
                raise ValueError(f"{path}:{lineno}: expected >= 3 fields")
            try:
                u = int(parts[0])
            except ValueError:
                if lineno == 1:
                    continue  # header
                raise
            users_raw.append(u)
            items_raw.append(int(parts[1]))
            vals.append(float(parts[2]))
    if not vals:
        raise ValueError(f"{path}: no ratings found")

    user_ids = sorted(set(users_raw))
    item_ids = sorted(set(items_raw))
    user_map = {uid: i for i, uid in enumerate(user_ids)}
    item_map = {iid: i for i, iid in enumerate(item_ids)}
    rows = [user_map[u] for u in users_raw]
    cols = [item_map[i] for i in items_raw]
    ratings = RatingMatrix(len(user_ids), len(item_ids), rows, cols, vals)
    return ratings, user_map, item_map


# ---------------------------------------------------------------------------
# NPZ binary
# ---------------------------------------------------------------------------
def save_npz(ratings: RatingMatrix, path: str | os.PathLike) -> None:
    """Exact binary checkpoint of the COO arrays."""
    np.savez_compressed(
        path,
        m=np.int64(ratings.m),
        n=np.int64(ratings.n),
        rows=ratings.rows,
        cols=ratings.cols,
        vals=ratings.vals,
    )


def load_npz(path: str | os.PathLike) -> RatingMatrix:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        return RatingMatrix(
            int(data["m"]), int(data["n"]),
            data["rows"], data["cols"], data["vals"],
        )
