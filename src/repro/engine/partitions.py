"""Partition providers: who decides the per-worker shard fractions.

The engine does not care *how* a :class:`~repro.core.partition.PartitionPlan`
was derived — evenly, from independently measured throughput (DP0),
from the runtime compensation loop (DP1), from sync staggering (DP2),
or handed in fixed.  A provider is anything with
``plan(n_workers) -> PartitionPlan``; this module supplies the adapters
both planes use:

* :class:`FixedPlanProvider` — wrap an existing plan (the sim plane's
  cost-model-derived DP0/DP1/DP2 plans, or a wall-clock-measured plan
  from :mod:`repro.parallel.tuning`);
* :class:`FractionsProvider` — raw shard fractions;
* :class:`EvenProvider` — the DSGD-style uniform baseline;
* :class:`CostModelProvider` — derive the plan from a calibrated
  :class:`~repro.core.cost_model.TimeCostModel` on demand.

:func:`as_provider` coerces the loose inputs the public trainers accept
(``None``, a fraction list, a plan, a provider) into one of the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.core.config import PartitionStrategy
from repro.core.partition import PartitionPlan, even_partition


@runtime_checkable
class PartitionProvider(Protocol):
    """Anything that can produce a partition plan for ``n_workers``."""

    def plan(self, n_workers: int) -> PartitionPlan:
        """Return the shard-fraction plan for this many workers."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class EvenProvider:
    """Uniform split — the heterogeneity-blind baseline."""

    def plan(self, n_workers: int) -> PartitionPlan:
        return even_partition(n_workers)


@dataclass(frozen=True)
class FixedPlanProvider:
    """A pre-derived plan; worker count must match at use time."""

    fixed: PartitionPlan

    def plan(self, n_workers: int) -> PartitionPlan:
        if self.fixed.n_workers != n_workers:
            raise ValueError(
                f"partition plan has {self.fixed.n_workers} fractions "
                f"but the backend runs {n_workers} workers"
            )
        return self.fixed


@dataclass(frozen=True)
class FractionsProvider:
    """Raw shard fractions (validated onto the unit simplex)."""

    fractions: tuple[float, ...]
    strategy: str = "fixed"

    def plan(self, n_workers: int) -> PartitionPlan:
        if len(self.fractions) != n_workers:
            raise ValueError(
                f"{len(self.fractions)} fractions for {n_workers} workers"
            )
        return PartitionPlan(self.strategy, tuple(float(f) for f in self.fractions))


@dataclass(frozen=True)
class CostModelProvider:
    """Derive the plan from a calibrated cost model (the sim plane's path)."""

    cost_model: object  # TimeCostModel (duck-typed to avoid a heavy import)
    strategy: PartitionStrategy = PartitionStrategy.AUTO

    def plan(self, n_workers: int) -> PartitionPlan:
        derived = self.cost_model.derive_partition(self.strategy)
        if derived.n_workers != n_workers:
            raise ValueError(
                f"cost model derived {derived.n_workers} fractions "
                f"but the backend runs {n_workers} workers"
            )
        return derived


def as_provider(partition) -> PartitionProvider:
    """Coerce the trainers' loose ``partition=`` argument to a provider.

    Accepts ``None`` (even split), a :class:`PartitionPlan`, a sequence
    of fractions, or any object already satisfying the protocol.
    """
    if partition is None:
        return EvenProvider()
    if isinstance(partition, PartitionPlan):
        return FixedPlanProvider(partition)
    if isinstance(partition, (list, tuple)):
        return FractionsProvider(tuple(float(f) for f in partition))
    if isinstance(partition, PartitionProvider):
        return partition
    raise TypeError(
        f"cannot interpret {type(partition).__name__} as a partition provider"
    )


def provider_from(partition, fractions: Sequence[float] | None = None) -> PartitionProvider:
    """Resolve the (partition, legacy fractions) pair a trainer accepts."""
    if partition is not None and fractions is not None:
        raise ValueError("pass either partition= or fractions=, not both")
    if partition is not None:
        return as_provider(partition)
    return as_provider(list(fractions) if fractions is not None else None)
