"""repro.engine: the composable epoch pipeline both planes run on.

One epoch is the same pipeline everywhere::

    PartitionProvider -> Channel.pull -> ComputeBackend -> Channel.push -> SyncPolicy

* :mod:`repro.engine.pipeline` — :class:`EpochEngine` drives the stage
  sequence and owns run-level telemetry emission;
* :mod:`repro.engine.channels` — the paper's communication strategies
  (3.4) as stackable middlewares serving both the sim byte accounting
  and the real wire buffers;
* :mod:`repro.engine.backends` — :class:`SimBackend` (in-process +
  cost-model clock) and :class:`ProcessBackend` (OS workers over shared
  memory) behind one protocol;
* :mod:`repro.engine.partitions` — providers that turn DP0/DP1/DP2
  plans, raw fractions or measurements into the engine's partition.

``HCCMF.train`` and ``SharedMemoryTrainer.train`` are thin facades over
this layer; new epoch-loop code belongs here (enforced by hcclint rule
HCC111).
"""

from repro.engine.backends import (
    DEFAULT_BARRIER_TIMEOUT_S,
    ProcessBackend,
    SimBackend,
    WirePayloadError,
    WorkerSyncError,
)
from repro.engine.channels import (
    Channel,
    DoubleBufferChannel,
    Fp16Channel,
    QOnlyChannel,
    QRotateChannel,
    WireTraffic,
    channel_for,
)
from repro.engine.partitions import (
    CostModelProvider,
    EvenProvider,
    FixedPlanProvider,
    FractionsProvider,
    PartitionProvider,
    as_provider,
    provider_from,
)
from repro.engine.pipeline import (
    RECOVERABLE_ERRORS,
    STAGES,
    AdditiveDeltaSync,
    ComputeBackend,
    EngineResult,
    EpochEngine,
    StageEvent,
    SyncPolicy,
    WeightedAverageSync,
)

__all__ = [
    "AdditiveDeltaSync",
    "Channel",
    "ComputeBackend",
    "CostModelProvider",
    "DEFAULT_BARRIER_TIMEOUT_S",
    "DoubleBufferChannel",
    "EngineResult",
    "EpochEngine",
    "EvenProvider",
    "FixedPlanProvider",
    "Fp16Channel",
    "FractionsProvider",
    "PartitionProvider",
    "ProcessBackend",
    "QOnlyChannel",
    "QRotateChannel",
    "RECOVERABLE_ERRORS",
    "STAGES",
    "SimBackend",
    "StageEvent",
    "SyncPolicy",
    "WeightedAverageSync",
    "WirePayloadError",
    "WireTraffic",
    "WorkerSyncError",
    "as_provider",
    "channel_for",
    "provider_from",
]
