"""Communication strategies as stackable channel middlewares (paper 3.4).

Each optimization from section 3.4 becomes one wrapper around a base
:class:`Channel`:

* :class:`QOnlyChannel` — Strategy 1, "transmit Q only": the recurring
  wire payload shrinks to the item matrix; P travels once, after the
  last epoch.
* :class:`Fp16Channel` — Strategy 2, FP16 wire format: payloads cross
  the wire as IEEE binary16 (via
  :func:`repro.core.compression.compress_fp16` /
  :func:`~repro.core.compression.decompress_fp16`), halving traffic.
* :class:`DoubleBufferChannel` — Strategy 3, asynchronous
  computing-transmission: the transport keeps ``depth`` buffers in
  flight so transfers overlap compute (the sim plane maps this onto the
  stream pipeline schedule; the process plane rotates pull buffers).

A channel stack serves **both planes** with the same object:

* the *sim* plane asks it for a :class:`~repro.core.comm.CommPlan`
  (:meth:`Channel.comm_plan`) and feeds that to
  :class:`~repro.core.comm.CommModel` for bytes-to-seconds accounting;
* the *real* planes use its wire codec (:meth:`Channel.encode` /
  :meth:`Channel.decode` + :attr:`Channel.wire_dtype`) over actual
  buffers — :class:`~repro.core.comm.PullBuffer` /
  :class:`~repro.core.comm.PushBuffer` in process, and
  :class:`~repro.parallel.shm.SharedArray` segments across processes.

Channels hold no run state, so one instance is safely pickled into
spawned worker processes; the single source of truth for what a
strategy does to the wire is this file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compression import compress_fp16, decompress_fp16
from repro.core.config import CommConfig, TransmitMode


@dataclass(frozen=True)
class WireTraffic:
    """Per-worker feature *values* a channel stack moves (not bytes).

    ``m``/``n`` are the as-trained orientation (HCC-MF transposes
    column-grid problems, so the recurring matrix is always the Q
    side).  Bytes follow from the stack's wire dtype.
    """

    pull_values: int          # values pulled per worker per epoch
    push_values: int          # values pushed per worker per epoch
    final_push_values: int    # once, after the last epoch (Strategy 1's P)
    sync_values: int          # values the server merges per worker sync

    def __post_init__(self) -> None:
        for field_name in ("pull_values", "push_values",
                           "final_push_values", "sync_values"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


class Channel:
    """Base transport: full-matrix FP32 every epoch (no strategy applied).

    Middlewares wrap an inner channel and override only the aspect
    their strategy changes; everything else delegates inward.
    """

    label = "full"

    def __init__(self, inner: "Channel | None" = None):
        self.inner = inner

    # -- wire format ----------------------------------------------------
    @property
    def wire_dtype(self) -> str:
        """NumPy dtype name of buffers on the wire."""
        return self.inner.wire_dtype if self.inner is not None else "float32"

    @property
    def wire_itemsize(self) -> int:
        return np.dtype(self.wire_dtype).itemsize

    @property
    def wire_is_fp16(self) -> bool:
        return self.wire_dtype == "float16"

    def encode(self, values: np.ndarray, out: np.ndarray) -> None:
        """FP32 payload -> wire buffer (the sender's single copy)."""
        if self.inner is not None:
            self.inner.encode(values, out)
        else:
            np.copyto(out, values.astype(np.float32, copy=False))

    def decode(self, wire: np.ndarray) -> np.ndarray:
        """Wire buffer -> fresh FP32 payload (the receiver's single copy)."""
        if self.inner is not None:
            return self.inner.decode(wire)
        return np.array(wire, dtype=np.float32, copy=True)

    def payload_ok(self, received: np.ndarray) -> bool:
        """Is a decoded payload structurally sane to merge?

        The server validates *every* push before merging *any* of them
        (all-or-nothing epoch sync), so one garbage payload — a torn
        write from a dying worker, an injected corruption — can never
        leave the global Q half-merged.  The base check is finiteness;
        middlewares may narrow it further.
        """
        if self.inner is not None:
            return self.inner.payload_ok(received)
        return bool(np.isfinite(received).all())

    # -- traffic accounting ---------------------------------------------
    def traffic(self, m: int, n: int, k: int) -> WireTraffic:
        """Feature values on the wire for an ``m x n`` problem at rank k."""
        if self.inner is not None:
            return self.inner.traffic(m, n, k)
        values = k * (m + n)
        return WireTraffic(values, values, 0, values)

    @property
    def transmits_p(self) -> bool:
        """Does the recurring payload include the user matrix P?"""
        return self.inner.transmits_p if self.inner is not None else True

    @property
    def depth(self) -> int:
        """Buffers kept in flight (1 = fully synchronous transport)."""
        return self.inner.depth if self.inner is not None else 1

    @property
    def streams(self) -> int:
        """Strategy-3 stream count the sim pipeline schedule should use."""
        return self.inner.streams if self.inner is not None else 1

    # -- sim-plane bridge -----------------------------------------------
    def comm_plan(self, spec, k: int):
        """This stack's per-epoch byte plan for :class:`CommModel`.

        ``spec`` is a :class:`~repro.data.datasets.DatasetSpec`; the
        grid-major orientation (big side = P rows) mirrors
        ``CommPlan.for_dataset``.
        """
        from repro.core.comm import CommPlan

        big, small = max(spec.m, spec.n), min(spec.m, spec.n)
        t = self.traffic(big, small, k)
        size = self.wire_itemsize
        return CommPlan(
            epoch_pull=t.pull_values * size,
            epoch_push=t.push_values * size,
            final_push_extra=t.final_push_values * size,
            sync_values=t.sync_values,
        )

    # -- description -----------------------------------------------------
    def describe(self) -> str:
        """Stack description, outermost first: ``fp16(q-only(full))``."""
        if self.inner is not None:
            return f"{self.label}({self.inner.describe()})"
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class QOnlyChannel(Channel):
    """Strategy 1: only the recurring (Q-side) matrix travels each epoch.

    Row-grid exclusivity keeps local P rows conflict-free, so P stays
    where it is updated and is pushed exactly once, after training.
    """

    label = "q-only"

    def __init__(self, inner: Channel | None = None):
        super().__init__(inner if inner is not None else Channel())

    def traffic(self, m: int, n: int, k: int) -> WireTraffic:
        return WireTraffic(
            pull_values=k * n,
            push_values=k * n,
            final_push_values=k * m,
            sync_values=k * n,
        )

    @property
    def transmits_p(self) -> bool:
        return False


class Fp16Channel(Channel):
    """Strategy 2: IEEE binary16 wire format (half the bytes).

    Compression happens on the sender's single copy and decompression
    on the receiver's, so the one-copy discipline is preserved; compute
    stays FP32 (the paper's "FP32 compute, FP16 wire" split).
    """

    label = "fp16"

    def __init__(self, inner: Channel | None = None):
        super().__init__(inner if inner is not None else Channel())

    @property
    def wire_dtype(self) -> str:
        return "float16"

    def encode(self, values: np.ndarray, out: np.ndarray) -> None:
        np.copyto(out, compress_fp16(values))

    def decode(self, wire: np.ndarray) -> np.ndarray:
        return decompress_fp16(wire)


class DoubleBufferChannel(Channel):
    """Strategy 3: asynchronous computing-transmission via buffering.

    ``streams`` chunks each transfer so it pipelines against compute
    (what the sim plane's stream schedule models); the transport keeps
    two buffers in flight so the producer can fill one while the
    consumer still reads the other.
    """

    label = "double-buffer"

    def __init__(self, inner: Channel | None = None, streams: int = 2):
        if streams < 2:
            raise ValueError("DoubleBufferChannel needs streams >= 2")
        super().__init__(inner if inner is not None else Channel())
        self._streams = streams

    @property
    def depth(self) -> int:
        return 2

    @property
    def streams(self) -> int:
        return self._streams


class QRotateChannel(Channel):
    """Future-work mode: ring-rotated Q ownership (sim accounting only).

    Same gross bytes as Q-only, but the transfers are peer-to-peer hops
    that overlap rotation steps and ownership removes the server merge.
    The execution engine does not drive this mode — the rotation loop
    has no pull/push/sync stages — so this channel only exists to keep
    the accounting in one place.
    """

    label = "q-rotate"

    def __init__(self, inner: Channel | None = None):
        super().__init__(inner if inner is not None else Channel())

    def traffic(self, m: int, n: int, k: int) -> WireTraffic:
        return WireTraffic(
            pull_values=k * n,
            push_values=k * n,
            final_push_values=k * (m + n),
            sync_values=0,
        )

    @property
    def transmits_p(self) -> bool:
        return False


def channel_for(comm: CommConfig, m: int, n: int) -> Channel:
    """Build the middleware stack a :class:`CommConfig` describes.

    ``m``/``n`` resolve the AUTO transmit mode exactly as the trainers
    do.  Stacking order is fixed — payload selection innermost, then
    wire format, then transport buffering — so equal configs produce
    equal stacks.
    """
    mode = comm.resolve_transmit(m, n)
    channel: Channel = Channel()
    if mode is TransmitMode.Q_ONLY:
        channel = QOnlyChannel(channel)
    elif mode is TransmitMode.Q_ROTATE:
        channel = QRotateChannel(channel)
    if comm.fp16:
        channel = Fp16Channel(channel)
    if comm.streams > 1:
        channel = DoubleBufferChannel(channel, streams=comm.streams)
    return channel
