"""Compute backends: what each pipeline stage means on a real substrate.

Two substrates implement the :class:`~repro.engine.pipeline.ComputeBackend`
protocol:

* :class:`SimBackend` — the in-process plane.  Workers are
  :class:`~repro.core.worker.WorkerRuntime` objects taking turns on the
  host; feature traffic flows through a
  :class:`~repro.core.server.ParameterServer`'s pull/push buffers; an
  optional :class:`~repro.core.cost_model.TimeCostModel` advances the
  simulated clock one epoch cost per epoch (the "cost-model advance").
* :class:`ProcessBackend` — the wall-clock plane.  The calling process
  is the server, every worker is an OS process (paper 3.5), and all
  feature traffic crosses :class:`~repro.parallel.shm.SharedArray`
  segments whose dtype is the channel stack's wire format, so Q-only
  payloads, FP16 wire and double-buffered pulls run for real.

Both backends execute the identical stage sequence under
:class:`~repro.engine.pipeline.EpochEngine`; the ``engine-parity`` CI
stage diffs their stage traces and per-worker update counts.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from contextlib import ExitStack, nullcontext
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.engine.channels import Channel
from repro.hardware.timeline import Phase, Span, Timeline
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.parallel.shm import SharedArray, SharedArraySpec
from repro.resilience.faults import CORRUPT, DELAY, DROP, KILL, Fault, FaultPlan, fault_at
from repro.resilience.health import HealthReport, classify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pipeline import SyncPolicy
    from repro.obs import Telemetry

#: Default ceiling on any cross-process rendezvous (barriers, joins);
#: overridable per run via ``HCCConfig.barrier_timeout_s``.
DEFAULT_BARRIER_TIMEOUT_S = 120.0

#: ring slots per epoch when instrumented: pull + compute + push + two
#: barrier waits, plus one spare
_SPANS_PER_EPOCH = 6

#: grace period between terminate() and the kill() escalation when
#: reaping straggler worker processes
_TERMINATE_GRACE_S = 5.0

#: extra time workers wait on barriers beyond the server's timeout —
#: the server must always be the first to detect a broken rendezvous
#: (see _worker_main)
_WORKER_PATIENCE_S = 30.0


class WorkerSyncError(RuntimeError):
    """A barrier rendezvous failed; names the ranks that never arrived."""

    def __init__(self, point: str, epoch: int, missing_ranks: tuple[int, ...],
                 timeout_s: float):
        self.point = point
        self.epoch = epoch
        self.missing_ranks = missing_ranks
        names = ", ".join(f"worker-{r}" for r in missing_ranks) or "unknown rank"
        super().__init__(
            f"a worker process failed mid-epoch: {names} did not reach the "
            f"{point} barrier of epoch {epoch} within {timeout_s:.0f}s; "
            f"shared state has been cleaned up"
        )


class WirePayloadError(RuntimeError):
    """A pushed payload failed validation; names the offending rank.

    Raised *before* any merge of the epoch: the server validates every
    worker's push first, so a garbage payload (a torn write from a
    dying worker, an injected corruption) never leaves the global Q
    half-merged.  The model still holds the last cleanly-synced epoch,
    which is what makes a retry of the epoch sound.
    """

    def __init__(self, rank: int, epoch: int):
        self.rank = rank
        self.epoch = epoch
        self.missing_ranks = (rank,)
        super().__init__(
            f"a worker process failed mid-epoch: worker-{rank} pushed a "
            f"corrupt payload (non-finite values) for epoch {epoch}; the "
            f"epoch was not merged"
        )


# ---------------------------------------------------------------------------
# sim backend (in-process numerics + cost-model clock)
# ---------------------------------------------------------------------------
class SimBackend:
    """In-process workers over buffer objects, with a simulated clock.

    ``ratings`` must already be in row-grid orientation and shuffled
    (what :meth:`repro.core.framework.HCCMF.prepare` produces); the
    backend partitions them by the engine-resolved plan.  ``cost_model``
    is optional: when given, every epoch advances :attr:`sim_seconds`
    by that plan's analytic epoch cost — priced over the *surviving*
    workers after a redistribution, which is the cost model's
    degraded-epoch path.

    ``fault_plan`` executes the same
    :class:`~repro.resilience.faults.FaultPlan` kinds the process plane
    injects, surfacing each at the exact detection point the server
    would see it: kills and over-timeout stragglers raise a
    :class:`WorkerSyncError` at the epoch's barriers, corrupt payloads
    raise :class:`WirePayloadError` before any merge, dropped payloads
    silently merge a zero delta, and benign stragglers stretch the
    simulated clock.
    """

    name = "sim"

    def __init__(
        self,
        platform,
        ratings: RatingMatrix,
        eval_data: RatingMatrix | None = None,
        k: int = 32,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
        cost_model=None,
        fault_plan: FaultPlan | None = None,
        barrier_timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if barrier_timeout_s <= 0:
            raise ValueError("barrier_timeout_s must be positive")
        self.platform = platform
        self.ratings = ratings
        self.eval_data = eval_data
        self.k = k
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.cost_model = cost_model
        #: the injected-failure script (docs/resilience.md); pruned by
        #: the engine after each recovery so faults fire at most once
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.barrier_timeout_s = float(barrier_timeout_s)
        self.n_workers = platform.n_workers
        self.model: MFModel | None = None
        self.sim_seconds = 0.0
        #: warm-start state the engine sets for checkpoint resume and
        #: recovery restarts: factors to start from, and how many global
        #: epochs already completed (replayed out of each worker's RNG
        #: stream so a resumed run continues the exact sample order)
        self.initial_model: MFModel | None = None
        self.epoch_offset = 0
        #: the platform workers still alive — pruned by
        #: :meth:`remap_fault_ranks` when a redistribution removes ranks,
        #: so degraded epochs are priced over the survivors
        self._platform_workers = list(platform.workers)
        #: per synced epoch: (global epoch, modeled cost, degraded?) —
        #: the chaos-parity harness reads degraded-epoch costs off this
        self.cost_log: list[tuple[int, float, bool]] = []
        #: simulated process exit codes for killed ranks (13 hard, 1
        #: soft), feeding classify() exactly as real exit codes would
        self._sim_exitcodes: dict[int, int] = {}
        self._attempt = -1
        self._run_timeline: Timeline | None = None
        self._run_origin: float | None = None
        self._p_snapshot: np.ndarray | None = None

    # -- lifecycle -------------------------------------------------------
    def open(self, plan, channel: Channel, sync_policy: "SyncPolicy",
             telemetry, epochs: int) -> None:
        from repro.core.server import ParameterServer
        from repro.core.worker import WorkerRuntime

        data = self.ratings
        self._eval_set = self.eval_data if self.eval_data is not None else data
        self._fractions = plan.fractions
        self._channel = channel
        self._sync_policy = sync_policy
        registry = telemetry.registry if telemetry is not None else None
        if self.initial_model is not None:
            # warm start (checkpoint resume): once-per-run private copies
            # so training never writes into the caller's checkpoint arrays
            warm = self.initial_model
            p0 = warm.P.copy()  # hcclint: disable=hot-copy
            q0 = warm.Q.copy()  # hcclint: disable=hot-copy
            self.model = MFModel(p0, q0)
        else:
            self.model = MFModel.init_for(data, self.k, seed=self.seed)
        assignments = partition_rows(data, plan.fractions, GridKind.ROW)
        self.runtimes = [
            WorkerRuntime(
                i, proc, assignment, data,
                batch_size=self.batch_size, seed=self.seed, metrics=registry,
            )
            for i, (proc, assignment) in enumerate(
                zip(self._platform_workers, assignments)
            )
        ]
        # replay already-completed epochs out of each worker's RNG
        # stream: one permutation draw per epoch (WorkerRuntime.run_epoch
        # draws exactly one), so a resumed run is bitwise-identical to
        # the straight-through run it continues
        for _ in range(self.epoch_offset):
            for rt in self.runtimes:
                rt.rng.permutation(rt.nnz)
        self.server = ParameterServer(
            self.model, self.n_workers, channel=channel, metrics=registry,
        )
        # degraded-epoch costing: after a redistribution the plan's
        # fractions cover only the surviving workers, so the epoch is
        # priced over that subset (Eq. 1-5 with renormalized x_i)
        self._epoch_sim_cost = (
            self.cost_model.epoch_cost(
                plan.fractions, workers=self._platform_workers
            ).total
            if self.cost_model is not None
            else 0.0
        )
        self._attempt += 1
        self._sim_exitcodes = {}
        self._p_snapshot = None
        if self._attempt == 0:
            self.sim_seconds = 0.0
        # wall-clock spans only when telemetry opts the run in — the
        # default path stays untimed; the timeline and its clock origin
        # persist across recovery re-opens so no attempt's spans are lost
        self._timed = telemetry is not None
        if self._timed:
            if self._run_timeline is None:
                self._run_timeline = Timeline()
                self._run_origin = time.perf_counter()
            self._timeline = self._run_timeline
            self._t_origin = self._run_origin
        else:
            self._timeline = None
            self._t_origin = 0.0
        self._q_locals: list[np.ndarray] = []
        self._q_news: list[np.ndarray] = []

    def _now(self) -> float:
        return time.perf_counter() - self._t_origin

    # -- fault injection -------------------------------------------------
    def _faults_at(self, kind: str, epoch: int) -> list[Fault]:
        """Pending faults of ``kind`` keyed to this *local* epoch.

        Fault plans speak global epochs; stale entries aimed at ranks
        outside the current (possibly degraded) plan are ignored.
        """
        g = epoch + self.epoch_offset
        return [
            f for f in self.fault_plan.faults
            if f.kind == kind and f.epoch == g and f.rank < self.n_workers
        ]

    def _inject_epoch_top(self, epoch: int) -> None:
        """Kill / start-straggler injection, at process-plane semantics.

        A killed rank never reaches the start barrier, so the failure
        surfaces exactly as the process server sees it: a start-point
        :class:`WorkerSyncError` before any compute ran, with the dead
        ranks' exit codes (13 hard, 1 soft) recorded for the health
        plane to classify.  A delay past the barrier timeout is a fatal
        straggler (no exit code: the rank is alive, just late); a
        shorter delay stretches the simulated clock by the longest
        stall, since real stragglers hold the rendezvous in parallel.
        """
        kills = self._faults_at(KILL, epoch)
        if kills:
            for f in kills:
                self._sim_exitcodes[f.rank] = 13 if f.hard else 1
            ranks = tuple(sorted({f.rank for f in kills}))
            raise WorkerSyncError("start", epoch, ranks, self.barrier_timeout_s)
        delays = [f for f in self._faults_at(DELAY, epoch) if f.point == "start"]
        late = tuple(sorted(
            {f.rank for f in delays if f.seconds > self.barrier_timeout_s}
        ))
        if late:
            raise WorkerSyncError("start", epoch, late, self.barrier_timeout_s)
        if delays:
            self.sim_seconds += max(f.seconds for f in delays)

    def _restore_p(self) -> None:
        """Roll P back to its pre-epoch state on a failed epoch.

        The process plane only copies P out of shared memory after all
        payloads validate, so a failed epoch's P updates are discarded
        there; the sim trains P in place and must undo the same way.
        """
        if self._p_snapshot is not None:
            np.copyto(self.model.P, self._p_snapshot)
            self._p_snapshot = None

    # -- stages ----------------------------------------------------------
    def pull(self, epoch: int) -> Mapping:
        if self.fault_plan:
            self._inject_epoch_top(epoch)
        self.server.begin_epoch()
        self._q_locals = []
        for rt in self.runtimes:
            if self._timed:
                t0 = self._now()
            q_local = self.server.pull(worker=rt.worker_id)
            if self._timed:
                self._timeline.add(
                    f"worker-{rt.worker_id}", Phase.PULL, t0, self._now(),
                    epoch + self.epoch_offset, self._attempt,
                )
            self._q_locals.append(q_local)
        nbytes = self.server.pull_buffer.nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def compute(self, epoch: int) -> Mapping:
        if self.fault_plan:
            fails_after_compute = self._faults_at(CORRUPT, epoch) or any(
                f.point == "end" and f.seconds > self.barrier_timeout_s
                for f in self._faults_at(DELAY, epoch)
            )
            if fails_after_compute:
                self._p_snapshot = self.model.P.copy()  # hcclint: disable=hot-copy
        self._q_news = []
        for rt, q_local in zip(self.runtimes, self._q_locals):
            if self._timed:
                t0 = self._now()
            q_new, _ = rt.run_epoch(self.model.P, q_local, self.lr, self.reg)
            if self._timed:
                self._timeline.add(
                    f"worker-{rt.worker_id}", Phase.COMPUTE, t0, self._now(),
                    epoch + self.epoch_offset, self._attempt,
                )
            self._q_news.append(q_new)
        return {"updates": tuple(rt.nnz for rt in self.runtimes)}

    def push(self, epoch: int) -> Mapping:
        drop_ranks = {f.rank for f in self._faults_at(DROP, epoch)}
        for rt, q_new in zip(self.runtimes, self._q_news):
            if self._timed:
                t0 = self._now()
            if rt.worker_id in drop_ranks:
                # dropped payload: the wire carries the epoch base, so
                # the server merges an exactly-zero delta.  run_epoch
                # trained q_new *in place*, so pushing it would not be
                # a drop — the base must come back from the server.
                self.server.push(rt.worker_id, self.server.q_base)
            else:
                self.server.push(rt.worker_id, q_new)
            if self._timed:
                self._timeline.add(
                    f"worker-{rt.worker_id}", Phase.PUSH, t0, self._now(),
                    epoch + self.epoch_offset, self._attempt,
                )
        end_delays = [
            f for f in self._faults_at(DELAY, epoch) if f.point == "end"
        ]
        late = tuple(sorted(
            {f.rank for f in end_delays if f.seconds > self.barrier_timeout_s}
        ))
        if late:
            self._restore_p()
            raise WorkerSyncError("end", epoch, late, self.barrier_timeout_s)
        if end_delays:
            self.sim_seconds += max(f.seconds for f in end_delays)
        nbytes = self.server.push_buffers[0].nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def sync(self, epoch: int) -> Mapping:
        corrupt = self._faults_at(CORRUPT, epoch)
        if corrupt:
            # validation precedes any merge (the epoch is all-or-nothing
            # on the process plane), so the model rolls back whole
            self._restore_p()
            raise WirePayloadError(min(f.rank for f in corrupt), epoch)
        for i, rt in enumerate(self.runtimes):
            weight = self._sync_policy.weight(i, self._fractions)
            if self._timed:
                t0 = self._now()
            self.server.sync(rt.worker_id, weight)
            if self._timed:
                self._timeline.add(
                    "server", Phase.SYNC, t0, self._now(),
                    epoch + self.epoch_offset, self._attempt,
                )
        self.sim_seconds += self._epoch_sim_cost
        self.cost_log.append((
            epoch + self.epoch_offset,
            self._epoch_sim_cost,
            len(self._platform_workers) < self.platform.n_workers,
        ))
        return {"merges": self.n_workers,
                "merged_values": int(self.model.Q.size) * self.n_workers}

    def evaluate(self, epoch: int) -> float:
        if self._timed:
            t0 = self._now()
        rmse = self.model.rmse(self._eval_set)
        if self._timed:
            self._timeline.add(
                "server", Phase.EVAL, t0, self._now(),
                epoch + self.epoch_offset, self._attempt,
            )
        return rmse

    # -- resilience ------------------------------------------------------
    def health_report(self, err: Exception | None = None) -> HealthReport:
        """Classify the sim workers exactly as the process plane would.

        The same :func:`~repro.resilience.health.classify` call, fed
        simulated exit codes instead of reaped process ones: a killed
        rank carries 13 (hard) or 1 (soft), a straggler carries none —
        so both planes hand :func:`~repro.resilience.policy.decide`
        identical evidence.
        """
        missing = tuple(getattr(err, "missing_ranks", ()) or ())
        exitcodes = [self._sim_exitcodes.get(r) for r in range(self.n_workers)]
        return classify(
            self.n_workers, missing, exitcodes, cause=str(err) if err else ""
        )

    def drop_faults_through(self, epoch: int) -> None:
        """Retire injected faults at or before ``epoch`` (already fired)."""
        self.fault_plan = self.fault_plan.without_epochs_through(epoch)

    def remap_fault_ranks(self, dead_ranks) -> None:
        """Follow a redistribution: prune the dead, renumber the faults.

        The engine calls this with the *old* rank numbering, before it
        shrinks ``n_workers`` to the survivor count; subsequent opens
        build runtimes — and price epochs — over the survivors only.
        """
        dead = set(dead_ranks)
        self._platform_workers = [
            w for r, w in enumerate(self._platform_workers) if r not in dead
        ]
        self.fault_plan = self.fault_plan.remap_ranks(dead, self.n_workers)

    def finalize(self, telemetry) -> None:
        if telemetry is not None and self._timeline is not None:
            telemetry.timeline = self._timeline

    def close(self) -> None:
        self._q_locals = []
        self._q_news = []


# ---------------------------------------------------------------------------
# process backend (OS workers over shared memory)
# ---------------------------------------------------------------------------
def _train_shard(
    model: MFModel,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    rng: np.random.Generator,
    batch_size: int,
    lr: float,
    reg: float,
) -> None:
    """One epoch of batched SGD over this worker's shard."""
    n = len(vals)
    order = rng.permutation(n)
    for lo in range(0, n, batch_size):
        sel = order[lo : lo + batch_size]
        sgd_batch_update(
            model, rows[sel], cols[sel], vals[sel], lr, reg,
            policy=ConflictPolicy.ATOMIC,
        )


def _pre_epoch_faults(
    faults: tuple[Fault, ...], global_epoch: int, worker_id: int, start_barrier
) -> None:
    """Worker-side kill / start-delay injection at the top of an epoch.

    Neither kill flavor touches the barrier: a real crashed process
    cannot abort a rendezvous, so peers find out the honest way — the
    server's barrier wait times out and the health plane reads the
    stamps and exit codes.
    """
    kill = fault_at(faults, KILL, global_epoch)
    if kill is not None:
        if kill.hard:
            # SIGKILL-like: no interpreter teardown at all
            os._exit(13)
        raise RuntimeError(f"injected failure in worker {worker_id}")
    _maybe_delay(faults, global_epoch, "start")


def _maybe_delay(faults: tuple[Fault, ...], global_epoch: int, point: str) -> None:
    delay = fault_at(faults, DELAY, global_epoch)
    if delay is not None and delay.point == point:
        # an injected straggler, by definition  # hcclint: disable=blocking-call
        time.sleep(delay.seconds)


def _encode_push(
    channel: Channel,
    q_trained: np.ndarray,
    pull_buf: SharedArray,
    push_buf: SharedArray,
    faults: tuple[Fault, ...],
    global_epoch: int,
) -> None:
    """The worker's single push encode, with drop/corrupt injection."""
    if fault_at(faults, DROP, global_epoch) is not None:
        # dropped payload: the wire still carries the epoch base (the
        # pull buffer's exact bits), so the server merges a zero delta
        np.copyto(push_buf.array, pull_buf.array)
    else:
        channel.encode(q_trained, push_buf.array)
    if fault_at(faults, CORRUPT, global_epoch) is not None:
        push_buf.array[...] = np.nan


def _null_stage(name: str):
    """Disabled-profiling stand-in for WorkerStageProfiles.stage."""
    return nullcontext()


def _worker_main(
    worker_id: int,
    p_spec: SharedArraySpec,
    pull_specs: tuple[SharedArraySpec, ...],
    push_spec: SharedArraySpec,
    progress_spec: SharedArraySpec,
    channel: Channel,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    epochs: int,
    lr: float,
    reg: float,
    batch_size: int,
    seed: int,
    start_barrier,
    end_barrier,
    barrier_timeout_s: float,
    span_spec=None,
    epoch_offset: int = 0,
    faults: tuple[Fault, ...] = (),
    profile_dir: "str | None" = None,
) -> None:
    """Worker process body: epochs of pull -> train -> push.

    The channel stack travels into the process by pickling (channels are
    stateless) and owns the wire codec: ``decode`` is the worker's
    single per-epoch copy out of the shared pull buffer, ``encode`` its
    single copy into the push buffer.  ``pull_specs`` carries
    ``channel.depth`` rotating buffers (Strategy 3).  Before each
    barrier the worker stamps ``progress[worker_id]`` so the server can
    name missing ranks on a broken rendezvous.  ``span_spec`` switches
    on the instrumented variant.

    ``epoch_offset`` is how many *global* epochs already completed
    before this spawn (checkpoint resume, recovery restart): stamps and
    barriers count local epochs, while the RNG stream discards the
    completed epochs' permutation draws and fault injection
    (``faults``, this rank's slice of a
    :class:`~repro.resilience.faults.FaultPlan`) keys on global epochs.
    ``profile_dir`` switches on per-stage cProfile accumulation; the
    worker dumps one ``.pstats`` file per stage there before exiting.
    """
    rng = np.random.default_rng(seed + 1000 * (worker_id + 1))
    # replay: one permutation draw per completed epoch (mirrors
    # _train_shard) so a warm-started run continues the exact sample
    # order of the straight-through run
    for _ in range(epoch_offset):
        rng.permutation(len(vals))
    # workers outwait the server on every rendezvous: the server is the
    # sole failure detector, and at its timeout the survivors must still
    # be alive (blocked here) for the health plane to tell a dead rank
    # from collateral damage; teardown reaps them right after
    barrier_timeout_s = barrier_timeout_s + _WORKER_PATIENCE_S
    # ExitStack closes every attached segment even if a later attach
    # fails partway through (a bare attach-then-try would leak the
    # earlier mappings on that path)
    with ExitStack() as stack:
        p_shared = stack.enter_context(SharedArray.attach(p_spec))
        pull_bufs = [
            stack.enter_context(SharedArray.attach(spec)) for spec in pull_specs
        ]
        push_buf = stack.enter_context(SharedArray.attach(push_spec))
        progress = stack.enter_context(SharedArray.attach(progress_spec))
        rec = None
        if span_spec is not None:
            # imported here so the uninstrumented path never touches
            # repro.obs (and to avoid an import cycle via repro.parallel)
            from repro.obs.spans import SpanRecorder, SpanRing

            rec = SpanRecorder(stack.enter_context(SpanRing.attach(span_spec)))
        prof = None
        if profile_dir is not None:
            from repro.obs.profile import WorkerStageProfiles

            prof = WorkerStageProfiles()
        stage_cm = prof.stage if prof is not None else _null_stage
        for epoch in range(epochs):
            global_epoch = epoch_offset + epoch
            if faults:
                _pre_epoch_faults(faults, global_epoch, worker_id, start_barrier)
            pull_buf = pull_bufs[epoch % len(pull_bufs)]
            progress.array[worker_id] = 2 * epoch + 1
            if rec is None:
                start_barrier.wait(timeout=barrier_timeout_s)
                # pull: the worker's single per-epoch copy out of the
                # shared pull buffer, decoded off the wire (paper 3.5)
                with stage_cm("pull"):
                    q_local = channel.decode(pull_buf.array)
                model = MFModel(p_shared.array, q_local)
                with stage_cm("compute"):
                    _train_shard(model, rows, cols, vals, rng, batch_size, lr, reg)
                # push: one encode into this worker's shared push buffer
                with stage_cm("push"):
                    _encode_push(
                        channel, model.Q, pull_buf, push_buf, faults, global_epoch
                    )
                if faults:
                    _maybe_delay(faults, global_epoch, "end")
                progress.array[worker_id] = 2 * epoch + 2
                end_barrier.wait(timeout=barrier_timeout_s)
            else:
                t0 = time.perf_counter()
                start_barrier.wait(timeout=barrier_timeout_s)
                rec.record(Phase.BARRIER, epoch, t0, time.perf_counter())
                with rec.span(Phase.PULL, epoch), stage_cm("pull"):
                    # the same single per-epoch pull decode, timed
                    q_local = channel.decode(pull_buf.array)
                model = MFModel(p_shared.array, q_local)
                with rec.span(Phase.COMPUTE, epoch), stage_cm("compute"):
                    _train_shard(model, rows, cols, vals, rng, batch_size, lr, reg)
                with rec.span(Phase.PUSH, epoch), stage_cm("push"):
                    _encode_push(
                        channel, model.Q, pull_buf, push_buf, faults, global_epoch
                    )
                if faults:
                    _maybe_delay(faults, global_epoch, "end")
                t1 = time.perf_counter()
                progress.array[worker_id] = 2 * epoch + 2
                end_barrier.wait(timeout=barrier_timeout_s)
                rec.record(Phase.BARRIER, epoch, t1, time.perf_counter())
        if prof is not None:
            prof.dump(profile_dir, worker_id)


class ProcessBackend:
    """OS worker processes over shared memory (wall-clock plane).

    The calling process acts as the server: per epoch it encodes Q onto
    the wire (pull stage), releases the start barrier, awaits the end
    barrier (push stage), and applies the sync policy's delta merge
    against the wire-accurate epoch base — the exact matrix workers
    decoded, so FP16 pull quantization cancels out of the deltas.
    """

    name = "process"

    def __init__(
        self,
        ratings: RatingMatrix,
        k: int = 32,
        n_workers: int = 2,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
        barrier_timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S,
        fail_worker_at: tuple[int, int] | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        if barrier_timeout_s <= 0:
            raise ValueError("barrier_timeout_s must be positive")
        if fail_worker_at is not None and fault_plan is not None:
            raise ValueError("pass either fail_worker_at= or fault_plan=, not both")
        self.ratings = ratings
        self.k = k
        self.n_workers = n_workers
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.barrier_timeout_s = float(barrier_timeout_s)
        #: legacy fault-injection hook: (worker_id, epoch) that crashes;
        #: normalized into the FaultPlan below
        self.fail_worker_at = fail_worker_at
        if fault_plan is None and fail_worker_at is not None:
            fault_plan = FaultPlan().kill(fail_worker_at[0], fail_worker_at[1])
        #: the injected-failure script (docs/resilience.md); pruned by
        #: the engine after each recovery so faults fire at most once
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.model: MFModel | None = None
        self.data: RatingMatrix | None = None
        self._stack: ExitStack | None = None
        #: warm-start state the engine sets for checkpoint resume and
        #: recovery restarts (see EpochEngine)
        self.initial_model: MFModel | None = None
        self.epoch_offset = 0
        #: worker-profile drop directory the engine sets when profiling
        #: (EpochEngine(profile=...)); one attempt-N subdir per open
        self.profile_dir: str | None = None
        self._procs: list = []
        self._rings: list = []
        self._attempt = -1
        #: one clock origin for the whole run, fixed at the first open,
        #: so spans preserved across recovery attempts share a time base
        self._run_origin: float | None = None
        #: spans rescued from earlier attempts' rings before their
        #: shared segments unlink (the rings die with each close)
        self._kept_spans: list[Span] = []
        self._kept_dropped = 0
        self._finalized = False

    @staticmethod
    def _terminate_stragglers(procs: list, grace_s: float = _TERMINATE_GRACE_S) -> None:
        """Reap every still-live worker, escalating terminate -> kill.

        A worker ignoring (or masking) SIGTERM must never leave a
        zombie child holding shared-memory mappings, so after a join
        grace period the survivors get SIGKILL, which cannot be caught.
        """
        live = [proc for proc in procs if proc.is_alive()]
        for proc in live:
            proc.terminate()
        deadline = time.perf_counter() + grace_s
        for proc in live:
            proc.join(timeout=max(0.0, deadline - time.perf_counter()))
        for proc in live:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=grace_s)

    # -- lifecycle -------------------------------------------------------
    def open(self, plan, channel: Channel, sync_policy: "SyncPolicy",
             telemetry, epochs: int) -> None:
        if channel.transmits_p:
            raise ValueError(
                "the process plane is Strategy-1 by construction (P lives in "
                "shared memory and is updated in place); use a Q-only channel "
                f"stack, not {channel.describe()!r}"
            )
        traffic = channel.traffic(2, 1, 1)
        if traffic.sync_values == 0:
            raise ValueError(
                "q-rotate channels have no pull/push/sync stages; the "
                "rotation loop runs only on the sim plane"
            )
        data = self.ratings.shuffle(self.seed)
        assignments = partition_rows(data, plan.fractions, GridKind.ROW)
        init = (
            self.initial_model
            if self.initial_model is not None
            else MFModel.init_for(data, self.k, seed=self.seed)
        )
        ctx = mp.get_context("spawn")

        self.data = data
        self._channel = channel
        self._sync_policy = sync_policy
        self._fractions = plan.fractions
        self._telemetry = telemetry
        self._registry = telemetry.registry if telemetry is not None else None
        self._start_barrier = ctx.Barrier(self.n_workers + 1)
        self._end_barrier = ctx.Barrier(self.n_workers + 1)
        # once-per-run server-side snapshot  # hcclint: disable=hot-copy
        self.model = MFModel(init.P.copy(), init.Q.copy())
        self._q_base: np.ndarray | None = None
        self._epochs = epochs
        self._procs: list = []
        self._rings: list = []
        self._shard_nnz: list[int] = []
        self._server_spans: list[tuple[Phase, int, float, float]] = []
        self._attempt += 1
        if self._run_origin is None:
            self._run_origin = time.perf_counter()
        attempt_profile_dir = None
        if self.profile_dir is not None:
            # one subdir per engine attempt so recovered runs keep every
            # attempt's worker dumps (mirrors the attempt-tagged rings)
            attempt_profile_dir = os.path.join(
                self.profile_dir, f"attempt-{self._attempt}"
            )
            os.makedirs(attempt_profile_dir, exist_ok=True)

        # register each segment's unlink the moment it exists: if a later
        # create (or anything else) raises, the earlier segments are
        # still destroyed instead of leaking until reboot
        self._stack = ExitStack()
        try:
            wire = channel.wire_dtype
            self._p_shared = SharedArray.create(init.P.shape, "float32")
            self._stack.callback(self._p_shared.unlink)
            self._pull_bufs = []
            for _ in range(max(1, channel.depth)):
                buf = SharedArray.create(init.Q.shape, wire)
                self._stack.callback(buf.unlink)
                self._pull_bufs.append(buf)
            self._push_bufs = []
            for _ in range(self.n_workers):
                buf = SharedArray.create(init.Q.shape, wire)
                self._stack.callback(buf.unlink)
                self._push_bufs.append(buf)
            # per-rank barrier progress stamps, read only to diagnose a
            # broken rendezvous (no synchronization on the happy path)
            self._progress = SharedArray.create((self.n_workers,), "int64")
            self._stack.callback(self._progress.unlink)
            if telemetry is not None:
                from repro.obs.spans import SpanRing

                for wid in range(self.n_workers):
                    ring = SpanRing.create(
                        capacity=epochs * _SPANS_PER_EPOCH,
                        worker=f"worker-{wid}",
                        attempt=self._attempt,
                    )
                    self._stack.callback(ring.unlink)
                    self._rings.append(ring)
            np.copyto(self._p_shared.array, init.P)
            # LIFO: registered last so stragglers die before any unlink
            self._stack.callback(self._terminate_stragglers, self._procs)

            for wid, a in enumerate(assignments):
                shard = a.extract(data).sort_by_row()
                self._shard_nnz.append(shard.nnz)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        wid,
                        self._p_shared.spec,
                        tuple(buf.spec for buf in self._pull_bufs),
                        self._push_bufs[wid].spec,
                        self._progress.spec,
                        channel,
                        shard.rows,
                        shard.cols,
                        shard.vals,
                        epochs,
                        self.lr,
                        self.reg,
                        self.batch_size,
                        self.seed,
                        self._start_barrier,
                        self._end_barrier,
                        self.barrier_timeout_s,
                        self._rings[wid].spec if telemetry is not None else None,
                        self.epoch_offset,
                        self.fault_plan.for_rank(wid),
                        attempt_profile_dir,
                    ),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self._stack.close()
            self._stack = None
            raise

    def _await(self, barrier, point: str, epoch: int) -> None:
        """Rendezvous with every worker, detecting failures server-side.

        The server must never time out *inside* the barrier: a timed-out
        ``Barrier.wait`` breaks the barrier, which instantly kills every
        blocked survivor with ``BrokenBarrierError`` — destroying the
        exact evidence (who is still alive and waiting) the health plane
        needs.  So the server first watches the progress stamps and
        process states from outside, and only enters the barrier once
        every rank has stamped this rendezvous; workers wait with a
        longer timeout (``_WORKER_PATIENCE_S``), so at detection time
        the survivors are still blocked, classifiable, and are then
        reaped by ``close()``.
        """
        expected = 2 * epoch + (1 if point == "start" else 2)
        stamps = self._progress.array
        deadline = time.perf_counter() + self.barrier_timeout_s

        def _missing() -> tuple[int, ...]:
            # a killed worker may have stamped *before* dying, so a rank
            # also counts as missing when its process already exited
            # abnormally — progress stamps alone would misname it
            return tuple(
                rank
                for rank in range(self.n_workers)
                if stamps[rank] < expected
                or self._procs[rank].exitcode not in (None, 0)
            )

        while True:
            missing = _missing()
            if not missing:
                break
            # a rank whose process already exited can never arrive, so a
            # dead worker is detected as soon as its exit code lands
            # (milliseconds) — the full timeout only applies to
            # stragglers, which might still make it
            dead = any(
                self._procs[rank].exitcode not in (None, 0)
                for rank in missing
            )
            if dead or time.perf_counter() >= deadline:
                raise WorkerSyncError(
                    point, epoch, missing, self.barrier_timeout_s
                )
            # liveness poll, not a lock wait: bounded by the deadline
            time.sleep(0.002)  # hcclint: disable=blocking-call
        try:
            barrier.wait(timeout=self.barrier_timeout_s)
        except threading.BrokenBarrierError as exc:
            raise WorkerSyncError(
                point, epoch, _missing(), self.barrier_timeout_s
            ) from exc

    # -- stages ----------------------------------------------------------
    def pull(self, epoch: int) -> Mapping:
        buf = self._pull_bufs[epoch % len(self._pull_bufs)]
        self._channel.encode(self.model.Q, buf.array)
        # the merge base is the exact matrix workers decode off the wire,
        # so pull-side quantization error cancels out of the deltas
        self._q_base = self._channel.decode(buf.array)
        self._await(self._start_barrier, "start", epoch)
        nbytes = buf.array.nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def compute(self, epoch: int) -> Mapping:
        # the SGD itself runs in the worker processes between the two
        # barriers; the server-side stage records the shard workloads
        return {"updates": tuple(self._shard_nnz)}

    def push(self, epoch: int) -> Mapping:
        self._await(self._end_barrier, "end", epoch)
        nbytes = self._push_bufs[0].array.nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def sync(self, epoch: int) -> Mapping:
        timed = self._telemetry is not None
        if timed:
            m0 = time.perf_counter()
        # validate every push *before* merging any of them: the epoch's
        # sync is all-or-nothing, so a garbage payload (torn write from
        # a dying worker, injected corruption) leaves the model at the
        # last cleanly-synced epoch — the state a retry restarts from
        decoded: list[np.ndarray] = []
        for wid, buf in enumerate(self._push_bufs):
            wire = buf.array
            received = (
                wire if wire.dtype == np.float32 else self._channel.decode(wire)
            )
            if not self._channel.payload_ok(received):
                raise WirePayloadError(wid, epoch)
            decoded.append(received)
        np.copyto(self.model.P, self._p_shared.array)
        q_base = self._q_base
        for wid, received in enumerate(decoded):
            weight = self._sync_policy.weight(wid, self._fractions)
            # additive delta merge: workers trained on disjoint row-grid
            # shards, so their Q deltas are distinct SGD steps and all
            # of them apply
            if weight == 1.0:
                self.model.Q += received - q_base
            else:
                self.model.Q += np.float32(weight) * (received - q_base)
        if timed:
            m1 = time.perf_counter()
            self._server_spans.append((Phase.SYNC, epoch, m0, m1))
            self._registry.histogram(
                "merge_seconds", "server delta-merge time per epoch"
            ).observe(m1 - m0)
        return {"merges": self.n_workers,
                "merged_values": int(self.model.Q.size) * self.n_workers}

    def evaluate(self, epoch: int) -> float:
        timed = self._telemetry is not None
        if timed:
            e0 = time.perf_counter()
        rmse = self.model.rmse(self.data)
        if timed:
            self._server_spans.append((Phase.EVAL, epoch, e0, time.perf_counter()))
        return rmse

    # -- resilience ------------------------------------------------------
    def health_report(self, err: Exception | None = None) -> HealthReport:
        """Classify every worker at failure time (the health plane).

        Must run *before* :meth:`close` — teardown terminates the
        stragglers this report is meant to distinguish from the dead.
        Fuses the barrier progress evidence carried by ``err``
        (``missing_ranks``) with each process's live/exit state.

        A worker that crashed *moments* before the report would still
        show ``exitcode is None`` (the OS has not reaped it yet), so
        each missing rank gets a short grace join for its exit code to
        settle; a genuine straggler survives the grace and stays
        classified as straggling.
        """
        missing = tuple(getattr(err, "missing_ranks", ()) or ())
        deadline = time.perf_counter() + 1.0
        for rank in missing:
            if rank < len(self._procs) and self._procs[rank].exitcode is None:
                grace = max(0.0, deadline - time.perf_counter())
                self._procs[rank].join(timeout=grace)
        exitcodes = [proc.exitcode for proc in self._procs]
        return classify(
            self.n_workers, missing, exitcodes, cause=str(err) if err else ""
        )

    def drop_faults_through(self, epoch: int) -> None:
        """Retire injected faults at or before ``epoch`` (already fired).

        The engine calls this before a recovery restart so the fault
        that broke the epoch does not fire again on the re-run.
        """
        self.fault_plan = self.fault_plan.without_epochs_through(epoch)

    def remap_fault_ranks(self, dead_ranks) -> None:
        """Renumber pending faults after a redistribution compacts ranks.

        Called by the engine with the *old* numbering, before it
        shrinks ``n_workers``, so a fault aimed at a surviving worker
        follows that worker to its new rank instead of landing on
        whichever rank inherited the number.
        """
        self.fault_plan = self.fault_plan.remap_ranks(
            set(dead_ranks), self.n_workers
        )

    # -- teardown --------------------------------------------------------
    def finalize(self, telemetry) -> None:
        for proc in self._procs:
            proc.join(timeout=self.barrier_timeout_s)
        if telemetry is not None:
            self._finalize_telemetry(telemetry)

    def close(self) -> None:
        if self._stack is not None:
            # failure path (finalize never ran): the attempt's spans
            # would die with the rings' unlink, so reap the stragglers
            # (ordering their last ring writes before our reads) and
            # rescue the records first
            if self._rings and not self._finalized:
                self._terminate_stragglers(self._procs)
                spans, dropped = self._drain_attempt_spans()
                self._kept_spans.extend(spans)
                self._kept_dropped += dropped
                self._server_spans = []
            self._stack.close()
            self._stack = None

    def _drain_attempt_spans(self) -> tuple[list[Span], int]:
        """This attempt's ring + server spans on the *run's* axes.

        Ring records carry attempt-local epochs and absolute clock
        times; the run's Timeline speaks global epochs and run-origin
        time, so spans from different attempts interleave correctly.
        """
        origin = self._run_origin or 0.0
        spans: list[Span] = []
        dropped = 0
        for ring in self._rings:
            for rec in ring.drain():
                spans.append(Span(
                    ring.worker, rec.phase, rec.start - origin,
                    rec.end - origin, rec.epoch + self.epoch_offset,
                    rec.attempt,
                ))
            dropped += ring.dropped
        for phase, ep, s0, s1 in self._server_spans:
            spans.append(Span(
                "server", phase, s0 - origin, s1 - origin,
                ep + self.epoch_offset, self._attempt,
            ))
        return spans, dropped

    def _finalize_telemetry(self, telemetry: "Telemetry") -> None:
        """Drain the span rings into the run's Timeline and registry.

        Runs after the workers joined and *before* the rings unlink
        (close()'s ExitStack teardown), so every record is final and
        readable.  Spans rescued from earlier recovery attempts are
        stitched in ahead of the final attempt's.
        """
        from repro.obs.drift import HostRunInfo

        spans, dropped = self._drain_attempt_spans()
        timeline = Timeline()
        timeline.extend(self._kept_spans)
        timeline.extend(spans)
        dropped += self._kept_dropped
        self._finalized = True
        registry = telemetry.registry
        # wire-accurate per-epoch bytes: the actual shared-segment sizes,
        # so FP16 stacks report half the FP32 traffic
        pull_bytes = self._pull_bufs[0].array.nbytes
        push_bytes = self._push_bufs[0].array.nbytes
        epochs = self._epochs
        updates = registry.counter("updates_total", "SGD updates applied")
        pulled = registry.counter("bytes_pulled_total", "bytes pulled per worker")
        pushed = registry.counter("bytes_pushed_total", "bytes pushed per worker")
        barrier = registry.histogram(
            "barrier_wait_seconds", "time workers spent waiting at barriers"
        )
        rate = registry.gauge("updates_per_second", "achieved per-worker rate")
        for wid, ring in enumerate(self._rings):
            worker = ring.worker
            updates.inc(self._shard_nnz[wid] * epochs, worker=worker)
            pulled.inc(pull_bytes * epochs, worker=worker)
            pushed.inc(push_bytes * epochs, worker=worker)
            compute_s = timeline.phase_total(Phase.COMPUTE, worker)
            if compute_s > 0:
                rate.set(self._shard_nnz[wid] * epochs / compute_s, worker=worker)
        for span in timeline.spans:
            if span.phase is Phase.BARRIER:
                barrier.observe(span.duration, worker=span.worker)
        telemetry.attach_run(
            timeline,
            dropped,
            HostRunInfo(
                worker_names=tuple(r.worker for r in self._rings),
                shard_nnz=tuple(self._shard_nnz),
                k=self.k,
                m=self.data.m,
                n=self.data.n,
                epochs=epochs,
            ),
            ratings=self.data,
        )
