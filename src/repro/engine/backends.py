"""Compute backends: what each pipeline stage means on a real substrate.

Two substrates implement the :class:`~repro.engine.pipeline.ComputeBackend`
protocol:

* :class:`SimBackend` — the in-process plane.  Workers are
  :class:`~repro.core.worker.WorkerRuntime` objects taking turns on the
  host; feature traffic flows through a
  :class:`~repro.core.server.ParameterServer`'s pull/push buffers; an
  optional :class:`~repro.core.cost_model.TimeCostModel` advances the
  simulated clock one epoch cost per epoch (the "cost-model advance").
* :class:`ProcessBackend` — the wall-clock plane.  The calling process
  is the server, every worker is an OS process (paper 3.5), and all
  feature traffic crosses :class:`~repro.parallel.shm.SharedArray`
  segments whose dtype is the channel stack's wire format, so Q-only
  payloads, FP16 wire and double-buffered pulls run for real.

Both backends execute the identical stage sequence under
:class:`~repro.engine.pipeline.EpochEngine`; the ``engine-parity`` CI
stage diffs their stage traces and per-worker update counts.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from contextlib import ExitStack
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.engine.channels import Channel
from repro.hardware.timeline import Phase, Timeline
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.parallel.shm import SharedArray, SharedArraySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.pipeline import SyncPolicy
    from repro.obs import Telemetry

#: Default ceiling on any cross-process rendezvous (barriers, joins);
#: overridable per run via ``HCCConfig.barrier_timeout_s``.
DEFAULT_BARRIER_TIMEOUT_S = 120.0

#: ring slots per epoch when instrumented: pull + compute + push + two
#: barrier waits, plus one spare
_SPANS_PER_EPOCH = 6


class WorkerSyncError(RuntimeError):
    """A barrier rendezvous failed; names the ranks that never arrived."""

    def __init__(self, point: str, epoch: int, missing_ranks: tuple[int, ...],
                 timeout_s: float):
        self.point = point
        self.epoch = epoch
        self.missing_ranks = missing_ranks
        names = ", ".join(f"worker-{r}" for r in missing_ranks) or "unknown rank"
        super().__init__(
            f"a worker process failed mid-epoch: {names} did not reach the "
            f"{point} barrier of epoch {epoch} within {timeout_s:.0f}s; "
            f"shared state has been cleaned up"
        )


# ---------------------------------------------------------------------------
# sim backend (in-process numerics + cost-model clock)
# ---------------------------------------------------------------------------
class SimBackend:
    """In-process workers over buffer objects, with a simulated clock.

    ``ratings`` must already be in row-grid orientation and shuffled
    (what :meth:`repro.core.framework.HCCMF.prepare` produces); the
    backend partitions them by the engine-resolved plan.  ``cost_model``
    is optional: when given, every epoch advances :attr:`sim_seconds`
    by that plan's analytic epoch cost.
    """

    name = "sim"

    def __init__(
        self,
        platform,
        ratings: RatingMatrix,
        eval_data: RatingMatrix | None = None,
        k: int = 32,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
        cost_model=None,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        self.platform = platform
        self.ratings = ratings
        self.eval_data = eval_data
        self.k = k
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.cost_model = cost_model
        self.n_workers = platform.n_workers
        self.model: MFModel | None = None
        self.sim_seconds = 0.0

    # -- lifecycle -------------------------------------------------------
    def open(self, plan, channel: Channel, sync_policy: "SyncPolicy",
             telemetry, epochs: int) -> None:
        from repro.core.server import ParameterServer
        from repro.core.worker import WorkerRuntime

        data = self.ratings
        self._eval_set = self.eval_data if self.eval_data is not None else data
        self._fractions = plan.fractions
        self._channel = channel
        self._sync_policy = sync_policy
        registry = telemetry.registry if telemetry is not None else None
        self.model = MFModel.init_for(data, self.k, seed=self.seed)
        assignments = partition_rows(data, plan.fractions, GridKind.ROW)
        self.runtimes = [
            WorkerRuntime(
                i, proc, assignment, data,
                batch_size=self.batch_size, seed=self.seed, metrics=registry,
            )
            for i, (proc, assignment) in enumerate(
                zip(self.platform.workers, assignments)
            )
        ]
        self.server = ParameterServer(
            self.model, self.n_workers, channel=channel, metrics=registry,
        )
        self._epoch_sim_cost = (
            self.cost_model.epoch_cost(plan.fractions).total
            if self.cost_model is not None
            else 0.0
        )
        self.sim_seconds = 0.0
        # wall-clock spans only when telemetry opts the run in — the
        # default path stays untimed
        self._timed = telemetry is not None
        self._timeline = Timeline() if self._timed else None
        self._t_origin = time.perf_counter() if self._timed else 0.0
        self._q_locals: list[np.ndarray] = []
        self._q_news: list[np.ndarray] = []

    def _now(self) -> float:
        return time.perf_counter() - self._t_origin

    # -- stages ----------------------------------------------------------
    def pull(self, epoch: int) -> Mapping:
        self.server.begin_epoch()
        self._q_locals = []
        for rt in self.runtimes:
            if self._timed:
                t0 = self._now()
            q_local = self.server.pull(worker=rt.worker_id)
            if self._timed:
                self._timeline.add(
                    f"worker-{rt.worker_id}", Phase.PULL, t0, self._now(), epoch
                )
            self._q_locals.append(q_local)
        nbytes = self.server.pull_buffer.nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def compute(self, epoch: int) -> Mapping:
        self._q_news = []
        for rt, q_local in zip(self.runtimes, self._q_locals):
            if self._timed:
                t0 = self._now()
            q_new, _ = rt.run_epoch(self.model.P, q_local, self.lr, self.reg)
            if self._timed:
                self._timeline.add(
                    f"worker-{rt.worker_id}", Phase.COMPUTE, t0, self._now(), epoch
                )
            self._q_news.append(q_new)
        return {"updates": tuple(rt.nnz for rt in self.runtimes)}

    def push(self, epoch: int) -> Mapping:
        for rt, q_new in zip(self.runtimes, self._q_news):
            if self._timed:
                t0 = self._now()
            self.server.push(rt.worker_id, q_new)
            if self._timed:
                self._timeline.add(
                    f"worker-{rt.worker_id}", Phase.PUSH, t0, self._now(), epoch
                )
        nbytes = self.server.push_buffers[0].nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def sync(self, epoch: int) -> Mapping:
        for i, rt in enumerate(self.runtimes):
            weight = self._sync_policy.weight(i, self._fractions)
            if self._timed:
                t0 = self._now()
            self.server.sync(rt.worker_id, weight)
            if self._timed:
                self._timeline.add("server", Phase.SYNC, t0, self._now(), epoch)
        self.sim_seconds += self._epoch_sim_cost
        return {"merges": self.n_workers,
                "merged_values": int(self.model.Q.size) * self.n_workers}

    def evaluate(self, epoch: int) -> float:
        if self._timed:
            t0 = self._now()
        rmse = self.model.rmse(self._eval_set)
        if self._timed:
            self._timeline.add("server", Phase.EVAL, t0, self._now(), epoch)
        return rmse

    def finalize(self, telemetry) -> None:
        if telemetry is not None and self._timeline is not None:
            telemetry.timeline = self._timeline

    def close(self) -> None:
        self._q_locals = []
        self._q_news = []


# ---------------------------------------------------------------------------
# process backend (OS workers over shared memory)
# ---------------------------------------------------------------------------
def _train_shard(
    model: MFModel,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    rng: np.random.Generator,
    batch_size: int,
    lr: float,
    reg: float,
) -> None:
    """One epoch of batched SGD over this worker's shard."""
    n = len(vals)
    order = rng.permutation(n)
    for lo in range(0, n, batch_size):
        sel = order[lo : lo + batch_size]
        sgd_batch_update(
            model, rows[sel], cols[sel], vals[sel], lr, reg,
            policy=ConflictPolicy.ATOMIC,
        )


def _worker_main(
    worker_id: int,
    p_spec: SharedArraySpec,
    pull_specs: tuple[SharedArraySpec, ...],
    push_spec: SharedArraySpec,
    progress_spec: SharedArraySpec,
    channel: Channel,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    epochs: int,
    lr: float,
    reg: float,
    batch_size: int,
    seed: int,
    start_barrier,
    end_barrier,
    barrier_timeout_s: float,
    span_spec=None,
    fail_at_epoch: int = -1,
) -> None:
    """Worker process body: epochs of pull -> train -> push.

    The channel stack travels into the process by pickling (channels are
    stateless) and owns the wire codec: ``decode`` is the worker's
    single per-epoch copy out of the shared pull buffer, ``encode`` its
    single copy into the push buffer.  ``pull_specs`` carries
    ``channel.depth`` rotating buffers (Strategy 3).  Before each
    barrier the worker stamps ``progress[worker_id]`` so the server can
    name missing ranks on a broken rendezvous.  ``span_spec`` switches
    on the instrumented variant; ``fail_at_epoch`` is a fault-injection
    hook for tests.
    """
    rng = np.random.default_rng(seed + 1000 * (worker_id + 1))
    # ExitStack closes every attached segment even if a later attach
    # fails partway through (a bare attach-then-try would leak the
    # earlier mappings on that path)
    with ExitStack() as stack:
        p_shared = stack.enter_context(SharedArray.attach(p_spec))
        pull_bufs = [
            stack.enter_context(SharedArray.attach(spec)) for spec in pull_specs
        ]
        push_buf = stack.enter_context(SharedArray.attach(push_spec))
        progress = stack.enter_context(SharedArray.attach(progress_spec))
        rec = None
        if span_spec is not None:
            # imported here so the uninstrumented path never touches
            # repro.obs (and to avoid an import cycle via repro.parallel)
            from repro.obs.spans import SpanRecorder, SpanRing

            rec = SpanRecorder(stack.enter_context(SpanRing.attach(span_spec)))
        for epoch in range(epochs):
            if epoch == fail_at_epoch:
                start_barrier.abort()
                raise RuntimeError(f"injected failure in worker {worker_id}")
            pull_buf = pull_bufs[epoch % len(pull_bufs)]
            progress.array[worker_id] = 2 * epoch + 1
            if rec is None:
                start_barrier.wait(timeout=barrier_timeout_s)
                # pull: the worker's single per-epoch copy out of the
                # shared pull buffer, decoded off the wire (paper 3.5)
                q_local = channel.decode(pull_buf.array)
                model = MFModel(p_shared.array, q_local)
                _train_shard(model, rows, cols, vals, rng, batch_size, lr, reg)
                # push: one encode into this worker's shared push buffer
                channel.encode(model.Q, push_buf.array)
                progress.array[worker_id] = 2 * epoch + 2
                end_barrier.wait(timeout=barrier_timeout_s)
            else:
                t0 = time.perf_counter()
                start_barrier.wait(timeout=barrier_timeout_s)
                rec.record(Phase.BARRIER, epoch, t0, time.perf_counter())
                with rec.span(Phase.PULL, epoch):
                    # the same single per-epoch pull decode, timed
                    q_local = channel.decode(pull_buf.array)
                model = MFModel(p_shared.array, q_local)
                with rec.span(Phase.COMPUTE, epoch):
                    _train_shard(model, rows, cols, vals, rng, batch_size, lr, reg)
                with rec.span(Phase.PUSH, epoch):
                    channel.encode(model.Q, push_buf.array)
                t1 = time.perf_counter()
                progress.array[worker_id] = 2 * epoch + 2
                end_barrier.wait(timeout=barrier_timeout_s)
                rec.record(Phase.BARRIER, epoch, t1, time.perf_counter())


class ProcessBackend:
    """OS worker processes over shared memory (wall-clock plane).

    The calling process acts as the server: per epoch it encodes Q onto
    the wire (pull stage), releases the start barrier, awaits the end
    barrier (push stage), and applies the sync policy's delta merge
    against the wire-accurate epoch base — the exact matrix workers
    decoded, so FP16 pull quantization cancels out of the deltas.
    """

    name = "process"

    def __init__(
        self,
        ratings: RatingMatrix,
        k: int = 32,
        n_workers: int = 2,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
        barrier_timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S,
        fail_worker_at: tuple[int, int] | None = None,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        if barrier_timeout_s <= 0:
            raise ValueError("barrier_timeout_s must be positive")
        self.ratings = ratings
        self.k = k
        self.n_workers = n_workers
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.barrier_timeout_s = float(barrier_timeout_s)
        #: fault-injection hook for tests: (worker_id, epoch) that crashes
        self.fail_worker_at = fail_worker_at
        self.model: MFModel | None = None
        self.data: RatingMatrix | None = None
        self._stack: ExitStack | None = None

    @staticmethod
    def _terminate_stragglers(procs: list) -> None:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()

    # -- lifecycle -------------------------------------------------------
    def open(self, plan, channel: Channel, sync_policy: "SyncPolicy",
             telemetry, epochs: int) -> None:
        if channel.transmits_p:
            raise ValueError(
                "the process plane is Strategy-1 by construction (P lives in "
                "shared memory and is updated in place); use a Q-only channel "
                f"stack, not {channel.describe()!r}"
            )
        traffic = channel.traffic(2, 1, 1)
        if traffic.sync_values == 0:
            raise ValueError(
                "q-rotate channels have no pull/push/sync stages; the "
                "rotation loop runs only on the sim plane"
            )
        data = self.ratings.shuffle(self.seed)
        assignments = partition_rows(data, plan.fractions, GridKind.ROW)
        init = MFModel.init_for(data, self.k, seed=self.seed)
        ctx = mp.get_context("spawn")

        self.data = data
        self._channel = channel
        self._sync_policy = sync_policy
        self._fractions = plan.fractions
        self._telemetry = telemetry
        self._registry = telemetry.registry if telemetry is not None else None
        self._start_barrier = ctx.Barrier(self.n_workers + 1)
        self._end_barrier = ctx.Barrier(self.n_workers + 1)
        # once-per-run server-side snapshot  # hcclint: disable=hot-copy
        self.model = MFModel(init.P.copy(), init.Q.copy())
        self._q_base: np.ndarray | None = None
        self._epochs = epochs
        self._procs: list = []
        self._rings: list = []
        self._shard_nnz: list[int] = []
        self._server_spans: list[tuple[Phase, int, float, float]] = []
        self._t_origin = time.perf_counter()

        # register each segment's unlink the moment it exists: if a later
        # create (or anything else) raises, the earlier segments are
        # still destroyed instead of leaking until reboot
        self._stack = ExitStack()
        try:
            wire = channel.wire_dtype
            self._p_shared = SharedArray.create(init.P.shape, "float32")
            self._stack.callback(self._p_shared.unlink)
            self._pull_bufs = []
            for _ in range(max(1, channel.depth)):
                buf = SharedArray.create(init.Q.shape, wire)
                self._stack.callback(buf.unlink)
                self._pull_bufs.append(buf)
            self._push_bufs = []
            for _ in range(self.n_workers):
                buf = SharedArray.create(init.Q.shape, wire)
                self._stack.callback(buf.unlink)
                self._push_bufs.append(buf)
            # per-rank barrier progress stamps, read only to diagnose a
            # broken rendezvous (no synchronization on the happy path)
            self._progress = SharedArray.create((self.n_workers,), "int64")
            self._stack.callback(self._progress.unlink)
            if telemetry is not None:
                from repro.obs.spans import SpanRing

                for wid in range(self.n_workers):
                    ring = SpanRing.create(
                        capacity=epochs * _SPANS_PER_EPOCH, worker=f"worker-{wid}"
                    )
                    self._stack.callback(ring.unlink)
                    self._rings.append(ring)
            np.copyto(self._p_shared.array, init.P)
            # LIFO: registered last so stragglers die before any unlink
            self._stack.callback(self._terminate_stragglers, self._procs)

            for wid, a in enumerate(assignments):
                shard = a.extract(data).sort_by_row()
                self._shard_nnz.append(shard.nnz)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        wid,
                        self._p_shared.spec,
                        tuple(buf.spec for buf in self._pull_bufs),
                        self._push_bufs[wid].spec,
                        self._progress.spec,
                        channel,
                        shard.rows,
                        shard.cols,
                        shard.vals,
                        epochs,
                        self.lr,
                        self.reg,
                        self.batch_size,
                        self.seed,
                        self._start_barrier,
                        self._end_barrier,
                        self.barrier_timeout_s,
                        self._rings[wid].spec if telemetry is not None else None,
                        self.fail_worker_at[1]
                        if self.fail_worker_at is not None
                        and self.fail_worker_at[0] == wid
                        else -1,
                    ),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self._stack.close()
            self._stack = None
            raise

    def _await(self, barrier, point: str, epoch: int) -> None:
        try:
            barrier.wait(timeout=self.barrier_timeout_s)
        except threading.BrokenBarrierError as exc:
            expected = 2 * epoch + (1 if point == "start" else 2)
            stamps = self._progress.array
            missing = tuple(
                rank for rank in range(self.n_workers) if stamps[rank] < expected
            )
            raise WorkerSyncError(
                point, epoch, missing, self.barrier_timeout_s
            ) from exc

    # -- stages ----------------------------------------------------------
    def pull(self, epoch: int) -> Mapping:
        buf = self._pull_bufs[epoch % len(self._pull_bufs)]
        self._channel.encode(self.model.Q, buf.array)
        # the merge base is the exact matrix workers decode off the wire,
        # so pull-side quantization error cancels out of the deltas
        self._q_base = self._channel.decode(buf.array)
        self._await(self._start_barrier, "start", epoch)
        nbytes = buf.array.nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def compute(self, epoch: int) -> Mapping:
        # the SGD itself runs in the worker processes between the two
        # barriers; the server-side stage records the shard workloads
        return {"updates": tuple(self._shard_nnz)}

    def push(self, epoch: int) -> Mapping:
        self._await(self._end_barrier, "end", epoch)
        nbytes = self._push_bufs[0].array.nbytes
        return {"wire_bytes": nbytes * self.n_workers, "per_worker_bytes": nbytes}

    def sync(self, epoch: int) -> Mapping:
        timed = self._telemetry is not None
        if timed:
            m0 = time.perf_counter()
        np.copyto(self.model.P, self._p_shared.array)
        q_base = self._q_base
        for wid, buf in enumerate(self._push_bufs):
            wire = buf.array
            received = (
                wire if wire.dtype == np.float32 else self._channel.decode(wire)
            )
            weight = self._sync_policy.weight(wid, self._fractions)
            # additive delta merge: workers trained on disjoint row-grid
            # shards, so their Q deltas are distinct SGD steps and all
            # of them apply
            if weight == 1.0:
                self.model.Q += received - q_base
            else:
                self.model.Q += np.float32(weight) * (received - q_base)
        if timed:
            m1 = time.perf_counter()
            self._server_spans.append((Phase.SYNC, epoch, m0, m1))
            self._registry.histogram(
                "merge_seconds", "server delta-merge time per epoch"
            ).observe(m1 - m0)
        return {"merges": self.n_workers,
                "merged_values": int(self.model.Q.size) * self.n_workers}

    def evaluate(self, epoch: int) -> float:
        timed = self._telemetry is not None
        if timed:
            e0 = time.perf_counter()
        rmse = self.model.rmse(self.data)
        if timed:
            self._server_spans.append((Phase.EVAL, epoch, e0, time.perf_counter()))
        return rmse

    # -- teardown --------------------------------------------------------
    def finalize(self, telemetry) -> None:
        for proc in self._procs:
            proc.join(timeout=self.barrier_timeout_s)
        if telemetry is not None:
            self._finalize_telemetry(telemetry)

    def close(self) -> None:
        if self._stack is not None:
            self._stack.close()
            self._stack = None

    def _finalize_telemetry(self, telemetry: "Telemetry") -> None:
        """Drain the span rings into the run's Timeline and registry.

        Runs after the workers joined and *before* the rings unlink
        (close()'s ExitStack teardown), so every record is final and
        readable.
        """
        from repro.obs.drift import HostRunInfo
        from repro.obs.spans import assemble_timeline

        timeline, dropped = assemble_timeline(
            self._rings, self._server_spans, origin=self._t_origin
        )
        registry = telemetry.registry
        # wire-accurate per-epoch bytes: the actual shared-segment sizes,
        # so FP16 stacks report half the FP32 traffic
        pull_bytes = self._pull_bufs[0].array.nbytes
        push_bytes = self._push_bufs[0].array.nbytes
        epochs = self._epochs
        updates = registry.counter("updates_total", "SGD updates applied")
        pulled = registry.counter("bytes_pulled_total", "bytes pulled per worker")
        pushed = registry.counter("bytes_pushed_total", "bytes pushed per worker")
        barrier = registry.histogram(
            "barrier_wait_seconds", "time workers spent waiting at barriers"
        )
        rate = registry.gauge("updates_per_second", "achieved per-worker rate")
        for wid, ring in enumerate(self._rings):
            worker = ring.worker
            updates.inc(self._shard_nnz[wid] * epochs, worker=worker)
            pulled.inc(pull_bytes * epochs, worker=worker)
            pushed.inc(push_bytes * epochs, worker=worker)
            compute_s = timeline.phase_total(Phase.COMPUTE, worker)
            if compute_s > 0:
                rate.set(self._shard_nnz[wid] * epochs / compute_s, worker=worker)
        for span in timeline.spans:
            if span.phase is Phase.BARRIER:
                barrier.observe(span.duration, worker=span.worker)
        telemetry.attach_run(
            timeline,
            dropped,
            HostRunInfo(
                worker_names=tuple(r.worker for r in self._rings),
                shard_nnz=tuple(self._shard_nnz),
                k=self.k,
                m=self.data.m,
                n=self.data.n,
                epochs=epochs,
            ),
            ratings=self.data,
        )
