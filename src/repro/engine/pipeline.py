"""The epoch engine: one composable training loop for every plane.

The paper's training step (Figure 4, steps 4-7) is the same pipeline no
matter which substrate executes it::

    PartitionProvider -> Channel.pull -> ComputeBackend -> Channel.push -> SyncPolicy

:class:`EpochEngine` drives that stage sequence.  Everything
substrate-specific lives behind the :class:`ComputeBackend` protocol
(:mod:`repro.engine.backends`): the sim plane advances the calibrated
cost model and runs the in-process numeric kernels; the process plane
coordinates real worker processes over shared memory.  Everything
strategy-specific lives in the channel stack
(:mod:`repro.engine.channels`) and the partition provider
(:mod:`repro.engine.partitions`), so a strategy knob is turned in
exactly one place and both planes feel it.

The engine is also the single emission point for run-level telemetry:
per-epoch RMSE gauges and events, and the stage trace — an auditable
``(epoch, stage, detail)`` record that the parity gate diffs across
backends to prove the planes execute the same sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.core.partition import PartitionPlan
from repro.engine.channels import Channel
from repro.engine.partitions import PartitionProvider, as_provider

#: The fixed per-epoch stage sequence (paper Figure 4 steps 4-7).
STAGES = ("pull", "compute", "push", "sync")


# ---------------------------------------------------------------------------
# sync policies (how worker results merge into the global model)
# ---------------------------------------------------------------------------
class SyncPolicy:
    """Weighting of the server's delta merge ``Q += w * (Q_i - Q_base)``."""

    name = "additive-delta"

    def weight(self, worker_id: int, fractions: Sequence[float]) -> float:
        """Merge weight for one worker's push."""
        return 1.0


class AdditiveDeltaSync(SyncPolicy):
    """HCC-MF's default: ``w_i = 1``.

    Row-grid workers train on disjoint samples, so their deltas are
    distinct SGD steps that all apply; averaging would under-apply the
    epoch's updates (see :mod:`repro.core.server`).
    """


class WeightedAverageSync(SyncPolicy):
    """``w_i = x_i``: for entry-level partitions whose shards overlap."""

    name = "weighted-average"

    def weight(self, worker_id: int, fractions: Sequence[float]) -> float:
        return float(fractions[worker_id])


# ---------------------------------------------------------------------------
# backend protocol
# ---------------------------------------------------------------------------
@runtime_checkable
class ComputeBackend(Protocol):
    """One epoch substrate: what each pipeline stage means for real.

    ``open`` receives the resolved plan, channel stack, sync policy,
    telemetry and epoch count before the first epoch (process backends
    need the count up front to size span rings and spawn workers); the
    four stage methods run once
    per epoch in :data:`STAGES` order and return an accounting detail
    mapping; ``evaluate`` closes the epoch (RMSE, or ``None`` on pure
    timing runs); ``finalize`` attaches span artifacts to telemetry on
    success; ``close`` releases resources unconditionally.
    """

    name: str
    n_workers: int

    def open(self, plan: PartitionPlan, channel: Channel,
             sync_policy: SyncPolicy, telemetry, epochs: int) -> None: ...
    def pull(self, epoch: int) -> Mapping: ...
    def compute(self, epoch: int) -> Mapping: ...
    def push(self, epoch: int) -> Mapping: ...
    def sync(self, epoch: int) -> Mapping: ...
    def evaluate(self, epoch: int) -> "float | None": ...
    def finalize(self, telemetry) -> None: ...
    def close(self) -> None: ...


# ---------------------------------------------------------------------------
# stage trace + result
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StageEvent:
    """One executed pipeline stage with its accounting detail."""

    epoch: int
    stage: str
    detail: Mapping = field(default_factory=dict)


@dataclass
class EngineResult:
    """Everything one engine run produced, backend-agnostic."""

    backend: str
    channel: str
    sync_policy: str
    plan: PartitionPlan
    epochs: int
    stage_trace: tuple[StageEvent, ...]
    rmse_history: list[float]
    model: object | None = field(default=None, repr=False)
    sim_seconds: float = 0.0

    def stage_sequence(self) -> list[tuple[int, str]]:
        """The executed ``(epoch, stage)`` order — the parity signature."""
        return [(e.epoch, e.stage) for e in self.stage_trace]

    def epoch_updates(self) -> dict[int, tuple[int, ...]]:
        """Per-epoch per-worker SGD update counts, from compute stages."""
        out: dict[int, tuple[int, ...]] = {}
        for event in self.stage_trace:
            if event.stage == "compute" and "updates" in event.detail:
                out[event.epoch] = tuple(event.detail["updates"])
        return out

    def wire_bytes(self, stage: str) -> int:
        """Total bytes the trace accounts for one stage across epochs."""
        if stage not in ("pull", "push"):
            raise ValueError("wire bytes exist for the pull and push stages")
        return sum(
            int(e.detail.get("wire_bytes", 0))
            for e in self.stage_trace
            if e.stage == stage
        )

    @property
    def updates_applied(self) -> int:
        return sum(sum(u) for u in self.epoch_updates().values())


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
class EpochEngine:
    """Drive the stage pipeline over a backend for a number of epochs."""

    def __init__(
        self,
        backend: ComputeBackend,
        channel: Channel | None = None,
        partitions: "PartitionProvider | PartitionPlan | Sequence[float] | None" = None,
        sync_policy: SyncPolicy | None = None,
        telemetry=None,
    ):
        self.backend = backend
        self.channel = channel if channel is not None else Channel()
        self.partitions = as_provider(partitions)
        self.sync_policy = sync_policy if sync_policy is not None else AdditiveDeltaSync()
        self.telemetry = telemetry

    def run(self, epochs: int) -> EngineResult:
        """Execute ``epochs`` runs of the pull/compute/push/sync pipeline."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        plan = self.partitions.plan(self.backend.n_workers)
        registry = self.telemetry.registry if self.telemetry is not None else None
        trace: list[StageEvent] = []
        rmse_history: list[float] = []
        self.backend.open(
            plan, self.channel, self.sync_policy, self.telemetry, epochs
        )
        try:
            for epoch in range(epochs):
                for stage in STAGES:
                    detail = getattr(self.backend, stage)(epoch) or {}
                    trace.append(StageEvent(epoch, stage, detail))
                rmse = self.backend.evaluate(epoch)
                if rmse is not None:
                    rmse_history.append(rmse)
                    if registry is not None:
                        registry.gauge(
                            "epoch_rmse", "training RMSE at epoch end"
                        ).set(rmse, epoch=epoch)
                        registry.event("epoch", epoch=epoch, rmse=rmse)
            self.backend.finalize(self.telemetry)
        finally:
            self.backend.close()
        return EngineResult(
            backend=self.backend.name,
            channel=self.channel.describe(),
            sync_policy=self.sync_policy.name,
            plan=plan,
            epochs=epochs,
            stage_trace=tuple(trace),
            rmse_history=rmse_history,
            model=getattr(self.backend, "model", None),
            sim_seconds=float(getattr(self.backend, "sim_seconds", 0.0)),
        )
