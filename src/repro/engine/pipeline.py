"""The epoch engine: one composable training loop for every plane.

The paper's training step (Figure 4, steps 4-7) is the same pipeline no
matter which substrate executes it::

    PartitionProvider -> Channel.pull -> ComputeBackend -> Channel.push -> SyncPolicy

:class:`EpochEngine` drives that stage sequence.  Everything
substrate-specific lives behind the :class:`ComputeBackend` protocol
(:mod:`repro.engine.backends`): the sim plane advances the calibrated
cost model and runs the in-process numeric kernels; the process plane
coordinates real worker processes over shared memory.  Everything
strategy-specific lives in the channel stack
(:mod:`repro.engine.channels`) and the partition provider
(:mod:`repro.engine.partitions`), so a strategy knob is turned in
exactly one place and both planes feel it.

The engine is also the single emission point for run-level telemetry:
per-epoch RMSE gauges and events, and the stage trace — an auditable
``(epoch, stage, detail)`` record that the parity gate diffs across
backends to prove the planes execute the same sequence.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.core.config import RecoveryPolicy
from repro.core.partition import PartitionPlan
from repro.engine.backends import WirePayloadError, WorkerSyncError
from repro.engine.channels import Channel
from repro.engine.partitions import PartitionProvider, as_provider
from repro.resilience.health import HealthReport
from repro.resilience.policy import (
    RecoveryAction,
    ResilienceSummary,
    TrainingAborted,
    decide,
    redistribute,
)

#: The fixed per-epoch stage sequence (paper Figure 4 steps 4-7).
STAGES = ("pull", "compute", "push", "sync")

#: Failures the recovery policy may handle; anything else propagates.
RECOVERABLE_ERRORS = (WorkerSyncError, WirePayloadError)


# ---------------------------------------------------------------------------
# sync policies (how worker results merge into the global model)
# ---------------------------------------------------------------------------
class SyncPolicy:
    """Weighting of the server's delta merge ``Q += w * (Q_i - Q_base)``."""

    name = "additive-delta"

    def weight(self, worker_id: int, fractions: Sequence[float]) -> float:
        """Merge weight for one worker's push."""
        return 1.0


class AdditiveDeltaSync(SyncPolicy):
    """HCC-MF's default: ``w_i = 1``.

    Row-grid workers train on disjoint samples, so their deltas are
    distinct SGD steps that all apply; averaging would under-apply the
    epoch's updates (see :mod:`repro.core.server`).
    """


class WeightedAverageSync(SyncPolicy):
    """``w_i = x_i``: for entry-level partitions whose shards overlap."""

    name = "weighted-average"

    def weight(self, worker_id: int, fractions: Sequence[float]) -> float:
        return float(fractions[worker_id])


# ---------------------------------------------------------------------------
# backend protocol
# ---------------------------------------------------------------------------
@runtime_checkable
class ComputeBackend(Protocol):
    """One epoch substrate: what each pipeline stage means for real.

    ``open`` receives the resolved plan, channel stack, sync policy,
    telemetry and epoch count before the first epoch (process backends
    need the count up front to size span rings and spawn workers); the
    four stage methods run once
    per epoch in :data:`STAGES` order and return an accounting detail
    mapping; ``evaluate`` closes the epoch (RMSE, or ``None`` on pure
    timing runs); ``finalize`` attaches span artifacts to telemetry on
    success; ``close`` releases resources unconditionally.
    """

    name: str
    n_workers: int

    def open(self, plan: PartitionPlan, channel: Channel,
             sync_policy: SyncPolicy, telemetry, epochs: int) -> None: ...
    def pull(self, epoch: int) -> Mapping: ...
    def compute(self, epoch: int) -> Mapping: ...
    def push(self, epoch: int) -> Mapping: ...
    def sync(self, epoch: int) -> Mapping: ...
    def evaluate(self, epoch: int) -> "float | None": ...
    def finalize(self, telemetry) -> None: ...
    def close(self) -> None: ...


# ---------------------------------------------------------------------------
# stage trace + result
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StageEvent:
    """One executed pipeline stage with its accounting detail."""

    epoch: int
    stage: str
    detail: Mapping = field(default_factory=dict)


@dataclass
class EngineResult:
    """Everything one engine run produced, backend-agnostic."""

    backend: str
    channel: str
    sync_policy: str
    plan: PartitionPlan
    epochs: int
    stage_trace: tuple[StageEvent, ...]
    rmse_history: list[float]
    model: object | None = field(default=None, repr=False)
    sim_seconds: float = 0.0
    #: what the resilience plane did (None on a plain fail-fast run)
    resilience: ResilienceSummary | None = None
    #: the plan the run *finished* on — differs from ``plan`` after a
    #: redistribution; the chaos-parity harness compares its fractions
    final_plan: PartitionPlan | None = None

    def stage_sequence(self) -> list[tuple[int, str]]:
        """The executed ``(epoch, stage)`` order — the parity signature."""
        return [(e.epoch, e.stage) for e in self.stage_trace]

    def epoch_updates(self) -> dict[int, tuple[int, ...]]:
        """Per-epoch per-worker SGD update counts, from compute stages."""
        out: dict[int, tuple[int, ...]] = {}
        for event in self.stage_trace:
            if event.stage == "compute" and "updates" in event.detail:
                out[event.epoch] = tuple(event.detail["updates"])
        return out

    def wire_bytes(self, stage: str) -> int:
        """Total bytes the trace accounts for one stage across epochs."""
        if stage not in ("pull", "push"):
            raise ValueError("wire bytes exist for the pull and push stages")
        return sum(
            int(e.detail.get("wire_bytes", 0))
            for e in self.stage_trace
            if e.stage == stage
        )

    @property
    def updates_applied(self) -> int:
        return sum(sum(u) for u in self.epoch_updates().values())


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
class EpochEngine:
    """Drive the stage pipeline over a backend for a number of epochs.

    Beyond the plain loop, the engine owns the run's *resilience plane*
    (docs/resilience.md), all opt-in:

    * ``recovery=`` (a :class:`~repro.core.config.RecoveryPolicy`)
      turns worker failures from fatal into recoverable: transient
      failures retry the epoch with exponential backoff, a dead worker
      triggers a shard redistribution across the survivors, and
      exhausted recovery checkpoints (when a path is configured) and
      raises :class:`~repro.resilience.TrainingAborted`;
    * ``checkpoint_every=``/``checkpoint_path=`` write an atomic
      checkpoint at epoch boundaries;
    * ``resume_from=`` warm-starts from a saved checkpoint, replaying
      the completed epochs out of the workers' RNG streams so a
      resumed run continues the exact sample order of the
      straight-through run.

    ``profile=`` (a :class:`~repro.obs.profile.StageProfiler`) wraps
    every stage dispatch — the four pipeline stages plus ``evaluate`` —
    in a per-stage cProfile scope, and points backends that support
    worker-side profiling (``profile_dir``) at the profiler's drop
    directory, yielding a stage-attributed hotpath report
    (docs/observability.md).

    Backends run *local* epoch indices (each (re)open counts from 0)
    while the stage trace, telemetry, faults and checkpoints speak
    *global* epochs; with no resume and no failure the two coincide and
    the engine behaves exactly as the plain loop.
    """

    def __init__(
        self,
        backend: ComputeBackend,
        channel: Channel | None = None,
        partitions: "PartitionProvider | PartitionPlan | Sequence[float] | None" = None,
        sync_policy: SyncPolicy | None = None,
        telemetry=None,
        recovery: RecoveryPolicy | None = None,
        checkpoint_every: int = 0,
        checkpoint_path: "str | os.PathLike | None" = None,
        resume_from: "str | os.PathLike | None" = None,
        profile=None,
    ):
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        self.backend = backend
        self.channel = channel if channel is not None else Channel()
        self.partitions = as_provider(partitions)
        self.sync_policy = sync_policy if sync_policy is not None else AdditiveDeltaSync()
        self.telemetry = telemetry
        self.recovery = recovery
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.resume_from = resume_from
        self.profile = profile

    @property
    def _resilience_active(self) -> bool:
        return (
            self.recovery is not None
            or self.checkpoint_every > 0
            or self.resume_from is not None
        )

    def run(self, epochs: int) -> EngineResult:
        """Execute ``epochs`` runs of the pull/compute/push/sync pipeline."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        plan = self.partitions.plan(self.backend.n_workers)
        registry = self.telemetry.registry if self.telemetry is not None else None
        trace: list[StageEvent] = []
        rmse_history: list[float] = []
        summary = ResilienceSummary() if self._resilience_active else None
        if self.profile is not None and hasattr(self.backend, "profile_dir"):
            self.backend.profile_dir = self.profile.worker_dir()

        current_plan = plan
        done = 0                       # global epochs completed so far
        warm = None                    # model to warm-start the next open from
        if self.resume_from is not None:
            from repro.core.checkpoint import load_checkpoint

            ckpt = load_checkpoint(self.resume_from)
            if ckpt.epoch >= epochs:
                raise ValueError(
                    f"checkpoint already at epoch {ckpt.epoch}; nothing to "
                    f"resume within {epochs} epochs"
                )
            done = ckpt.epoch
            warm = ckpt.model
            rmse_history = [float(r) for r in ckpt.rmse_history]
            summary.resumed_from_epoch = done
        retries = 0

        while True:
            offset = done
            remaining = epochs - done
            self._stage_warm_start(warm, offset)
            self.backend.open(
                current_plan, self.channel, self.sync_policy, self.telemetry,
                remaining,
            )
            failure: Exception | None = None
            report: HealthReport | None = None
            try:
                try:
                    for local in range(remaining):
                        epoch = offset + local
                        for stage in STAGES:
                            with self._profiled(stage):
                                detail = getattr(self.backend, stage)(local) or {}
                            trace.append(StageEvent(epoch, stage, detail))
                        with self._profiled("evaluate"):
                            rmse = self.backend.evaluate(local)
                        if rmse is not None:
                            rmse_history.append(rmse)
                            if registry is not None:
                                registry.gauge(
                                    "epoch_rmse", "training RMSE at epoch end"
                                ).set(rmse, epoch=epoch)
                                registry.event("epoch", epoch=epoch, rmse=rmse)
                        done = epoch + 1
                        retries = 0  # progress resets the transient budget
                        if summary is not None and current_plan is not plan:
                            summary.degraded_epochs += 1
                            if registry is not None:
                                registry.counter(
                                    "resilience_degraded_epochs_total",
                                    "epochs run on a redistributed plan",
                                ).inc()
                        if (
                            self.checkpoint_every
                            and done % self.checkpoint_every == 0
                        ):
                            self._write_checkpoint(
                                done, rmse_history, summary, registry
                            )
                    self.backend.finalize(self.telemetry)
                except RECOVERABLE_ERRORS as err:
                    if self.recovery is None:
                        raise
                    failure = err
                    # health must be read before close(): teardown
                    # terminates the stragglers the report classifies
                    reporter = getattr(self.backend, "health_report", None)
                    report = reporter(err) if reporter is not None else None
            finally:
                self.backend.close()
            if failure is None:
                break
            warm = getattr(self.backend, "model", None)
            current_plan, retries = self._recover(
                failure, report, current_plan, done, retries,
                rmse_history, summary, registry,
            )

        if summary is not None:
            summary.final_workers = self.backend.n_workers
        return EngineResult(
            backend=self.backend.name,
            channel=self.channel.describe(),
            sync_policy=self.sync_policy.name,
            plan=plan,
            epochs=epochs,
            stage_trace=tuple(trace),
            rmse_history=rmse_history,
            model=getattr(self.backend, "model", None),
            sim_seconds=float(getattr(self.backend, "sim_seconds", 0.0)),
            resilience=summary,
            final_plan=current_plan,
        )

    def _profiled(self, stage: str):
        """Per-stage cProfile scope, or a no-op when profiling is off."""
        if self.profile is None:
            return nullcontext()
        return self.profile.stage(stage)

    # -- resilience internals -------------------------------------------
    def _stage_warm_start(self, model, offset: int) -> None:
        """Hand the next attempt its starting factors and epoch offset."""
        if model is None and offset == 0:
            return
        if not (
            hasattr(self.backend, "initial_model")
            and hasattr(self.backend, "epoch_offset")
        ):
            raise ValueError(
                f"the {self.backend.name!r} backend does not support warm "
                "starts (resume_from=/recovery need initial_model and "
                "epoch_offset)"
            )
        self.backend.initial_model = model
        self.backend.epoch_offset = offset

    def _write_checkpoint(
        self, done: int, rmse_history: list[float], summary, registry
    ) -> None:
        from repro.core.checkpoint import Checkpoint, save_checkpoint

        model = getattr(self.backend, "model", None)
        if model is None:
            raise ValueError(
                f"the {self.backend.name!r} backend exposes no model to "
                "checkpoint"
            )
        save_checkpoint(
            Checkpoint(
                model=model, epoch=done, rmse_history=list(rmse_history)
            ),
            self.checkpoint_path,
        )
        if summary is not None:
            summary.checkpoints_written += 1
        if registry is not None:
            registry.counter(
                "resilience_checkpoints_total",
                "checkpoints written at epoch boundaries",
            ).inc()
            registry.event(
                "resilience_checkpoint", epoch=done,
                path=str(self.checkpoint_path),
            )

    def _recover(
        self,
        err: Exception,
        report: "HealthReport | None",
        current_plan: PartitionPlan,
        done: int,
        retries: int,
        rmse_history: list[float],
        summary: ResilienceSummary,
        registry,
    ) -> tuple[PartitionPlan, int]:
        """Decide and apply the recovery action for one failure.

        Returns the (possibly redistributed) plan and the new transient
        retry count for the next attempt; raises
        :class:`TrainingAborted` when the policy gives up.
        """
        policy = self.recovery
        if report is None:
            report = HealthReport((), cause=str(err))
        action = decide(policy, report, retries, self.backend.n_workers)
        summary.failures.append(
            f"epoch {done}: {type(err).__name__} ({report.describe()}) "
            f"-> {action.value}"
        )
        summary.decisions.append((done, type(err).__name__, action.value))
        if registry is not None:
            registry.event(
                "resilience_failure", epoch=done, action=action.value,
                error=type(err).__name__, dead=list(report.dead_ranks),
                stragglers=list(report.straggler_ranks),
            )
        # injected faults at or before the failed epoch have fired;
        # retire them so the re-run does not trip over them again
        dropper = getattr(self.backend, "drop_faults_through", None)
        if dropper is not None:
            dropper(done)

        if action is RecoveryAction.ABORT:
            path = None
            if policy.checkpoint_on_abort and self.checkpoint_path is not None:
                self._write_checkpoint(done, rmse_history, summary, registry)
                path = str(self.checkpoint_path)
            raise TrainingAborted(done, str(err), path, summary) from err
        if action is RecoveryAction.REDISTRIBUTE:
            new_plan = redistribute(current_plan, report.dead_ranks)
            # remap pending faults BEFORE the worker count shrinks:
            # the remap needs the old numbering to locate survivors
            remap = getattr(self.backend, "remap_fault_ranks", None)
            if remap is not None:
                remap(report.dead_ranks)
            self.backend.n_workers = new_plan.n_workers
            summary.redistributions += 1
            if registry is not None:
                registry.counter(
                    "resilience_redistributions_total",
                    "dead-worker shard redistributions",
                ).inc()
                registry.event(
                    "resilience_redistribution", epoch=done,
                    dead=list(report.dead_ranks),
                    survivors=new_plan.n_workers,
                )
            return new_plan, 0
        # RETRY: transient failure, back off exponentially
        summary.retries += 1
        if registry is not None:
            registry.counter(
                "resilience_retries_total", "transient-failure epoch retries"
            ).inc()
        backoff = policy.backoff_s(retries)
        if backoff > 0:
            time.sleep(backoff)
        return current_plan, retries + 1
