"""repro.testing: the cross-plane chaos-parity harness.

The differential enforcement mechanism for the resilience plane
(docs/resilience.md): seeded fault scenarios (:mod:`repro.testing.chaos`)
run through *both* compute backends, and the outcomes are held to a
parity contract (:mod:`repro.testing.parity`) — identical recovery
decisions, identical final partition fractions, RMSE within tolerance,
and the sim's analytic degraded-epoch cost within a drift bound of the
process plane's measured timeline.  ``repro chaos-parity`` is the CLI
entry point; ``tests/test_chaos_parity.py`` the pytest one.
"""

from repro.testing.chaos import (
    ChaosScenario,
    default_matrix,
    generate_scenarios,
    parity_platform,
)
from repro.testing.parity import (
    ParityCheck,
    ParityReport,
    PlaneOutcome,
    check_invariants,
    check_parity,
    run_scenario,
)

__all__ = [
    "ChaosScenario",
    "ParityCheck",
    "ParityReport",
    "PlaneOutcome",
    "check_invariants",
    "check_parity",
    "default_matrix",
    "generate_scenarios",
    "parity_platform",
    "run_scenario",
]
