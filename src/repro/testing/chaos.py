"""Seeded chaos scenarios: the deterministic fault matrix both planes run.

A :class:`ChaosScenario` is everything one differential experiment
needs — worker count, epochs, the injected :class:`FaultPlan`, the
recovery policy — all derived from a seed, so a failing scenario is
reproducible from its seed alone.

Two sources of scenarios:

* :func:`default_matrix` — the named, hand-picked matrix the
  ``repro chaos-parity`` acceptance gate runs through *both* planes
  (one scenario per fault kind plus the rank-remap and abort paths).
  These avoid the two spots where the planes legitimately diverge: a
  corrupt payload at the final epoch (process workers exit cleanly
  right after, so the grace join classifies the rank dead while the
  sim calls it a straggler) and delays within ~1s of the barrier
  timeout (the health plane's grace join can catch the sleeping
  worker's clean exit).
* :func:`generate_scenarios` — the randomized matrix (fault kind x
  rank x epoch x policy) for the sim-only regression sweep, which has
  no such restrictions.

:func:`parity_platform` builds the sim platform a parity run must use:
identical CPUs over shared memory, mirroring the process plane's
homogeneous host-CPU substrate.  A heterogeneous platform (a GPU next
to CPUs) would make the degraded/healthy cost ratio diverge from the
measured process timeline for reasons unrelated to the fault path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import RecoveryPolicy
from repro.hardware.processor import Processor
from repro.hardware.specs import PROCESSOR_CATALOG, SHARED_MEMORY
from repro.hardware.topology import Platform
from repro.resilience.faults import CORRUPT, DELAY, DROP, KILL, FaultPlan

#: no backoff sleeps inside harness runs
_FAST = dict(backoff_base_s=0.0)

#: fatal delays exceed timeout + the health plane's 1s grace join by a
#: margin, so a sleeping straggler is never misread as a clean exit
_FATAL_DELAY_MARGIN_S = 3.0


def parity_platform(n_workers: int) -> Platform:
    """A homogeneous all-CPU sim platform mirroring the process substrate."""
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    server = Processor(PROCESSOR_CATALOG["6242"], threads=10, instance="cpu0")
    platform = Platform(server=server)
    for i in range(n_workers):
        platform.add_worker(
            Processor(PROCESSOR_CATALOG["6242"], threads=10, instance=f"cpu{i}w"),
            SHARED_MEMORY,
        )
    return platform


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded fault experiment, runnable on either plane."""

    name: str
    seed: int
    n_workers: int
    epochs: int
    fault_plan: FaultPlan
    recovery: RecoveryPolicy
    k: int = 8
    lr: float = 0.01
    barrier_timeout_s: float = 5.0
    #: synthetic dataset size (NETFLIX.scaled) both planes train on
    data_nnz: int = 4000
    #: the scenario is *supposed* to end in TrainingAborted
    expect_abort: bool = False

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        for f in self.fault_plan.faults:
            if f.rank >= self.n_workers:
                raise ValueError(
                    f"scenario {self.name!r}: fault rank {f.rank} outside "
                    f"{self.n_workers} workers"
                )

    def describe(self) -> str:
        return (
            f"{self.name}: seed={self.seed} workers={self.n_workers} "
            f"epochs={self.epochs} faults=[{self.fault_plan.describe()}]"
        )


def default_matrix(seed: int = 0) -> tuple[ChaosScenario, ...]:
    """The named acceptance matrix: every fault kind, every decision path.

    Deterministic given ``seed`` (which offsets the data/model seeds, so
    different seeds exercise different numerics over the same faults).
    """
    return (
        ChaosScenario(
            name="kill-soft",
            seed=seed,
            n_workers=3,
            epochs=4,
            # kill at epoch 2 so a warm healthy epoch (1) survives the
            # drift measurement's warm-up exclusion of epoch 0
            fault_plan=FaultPlan().kill(2, epoch=2),
            recovery=RecoveryPolicy(min_workers=2, **_FAST),
        ),
        ChaosScenario(
            name="kill-hard",
            seed=seed + 1,
            n_workers=3,
            epochs=4,
            fault_plan=FaultPlan().kill(1, epoch=2, hard=True),
            recovery=RecoveryPolicy(min_workers=2, **_FAST),
        ),
        ChaosScenario(
            name="corrupt-retry",
            seed=seed + 2,
            n_workers=2,
            epochs=3,
            fault_plan=FaultPlan().corrupt_payload(1, epoch=1),
            recovery=RecoveryPolicy(max_retries=2, **_FAST),
        ),
        ChaosScenario(
            name="drop-silent",
            seed=seed + 3,
            n_workers=2,
            epochs=3,
            fault_plan=FaultPlan().drop_payload(1, epoch=1),
            recovery=RecoveryPolicy(**_FAST),
        ),
        ChaosScenario(
            name="straggler-retry",
            seed=seed + 4,
            n_workers=2,
            epochs=3,
            barrier_timeout_s=2.0,
            fault_plan=FaultPlan().delay_barrier(
                0, epoch=1, seconds=2.0 + 1.0 + _FATAL_DELAY_MARGIN_S
            ),
            recovery=RecoveryPolicy(max_retries=1, **_FAST),
        ),
        ChaosScenario(
            name="two-deaths-remap",
            seed=seed + 5,
            n_workers=4,
            epochs=5,
            # the epoch-3 kill targets (old) rank 3; after the epoch-2
            # death of rank 1 renumbers survivors 0,2,3 -> 0,1,2 the
            # pending fault must follow its worker to rank 2 — the
            # remap this scenario exists to verify, on both planes
            fault_plan=FaultPlan().kill(1, epoch=2).kill(3, epoch=3),
            recovery=RecoveryPolicy(min_workers=2, **_FAST),
        ),
        ChaosScenario(
            name="abort-checkpointed",
            seed=seed + 6,
            n_workers=2,
            epochs=3,
            fault_plan=FaultPlan().kill(1, epoch=1),
            recovery=RecoveryPolicy(min_workers=2, **_FAST),
            expect_abort=True,
        ),
    )


def generate_scenarios(
    seed: int,
    count: int,
    data_nnz: int = 3000,
) -> tuple[ChaosScenario, ...]:
    """The randomized chaos matrix for the sim-only regression sweep.

    Deterministic in ``seed``: fault kind x rank x epoch x policy are
    all drawn from one ``default_rng(seed)`` stream, so any failure
    reproduces from the seed printed in the test's message.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    timeout = 2.0
    fatal = timeout + 1.0 + _FATAL_DELAY_MARGIN_S
    out: list[ChaosScenario] = []
    for i in range(count):
        n_workers = int(rng.integers(2, 5))
        epochs = int(rng.integers(3, 6))
        plan = FaultPlan()
        for _ in range(int(rng.integers(1, 3))):
            kind = (KILL, DELAY, DROP, CORRUPT)[int(rng.integers(0, 4))]
            rank = int(rng.integers(0, n_workers))
            epoch = int(rng.integers(0, epochs))
            if kind == KILL:
                plan = plan.kill(rank, epoch, hard=bool(rng.integers(0, 2)))
            elif kind == DELAY:
                seconds = fatal if rng.integers(0, 2) else 0.1
                point = ("start", "end")[int(rng.integers(0, 2))]
                plan = plan.delay_barrier(rank, epoch, seconds, point=point)
            elif kind == DROP:
                plan = plan.drop_payload(rank, epoch)
            else:
                plan = plan.corrupt_payload(rank, epoch)
        policy = RecoveryPolicy(
            max_retries=int(rng.integers(0, 3)),
            min_workers=int(rng.integers(1, 3)),
            redistribute=bool(rng.integers(0, 10)),  # off ~1 in 10
            **_FAST,
        )
        out.append(
            ChaosScenario(
                name=f"gen-{seed}-{i}",
                seed=seed * 10_000 + i,
                n_workers=n_workers,
                epochs=epochs,
                fault_plan=plan,
                recovery=policy,
                barrier_timeout_s=timeout,
                data_nnz=data_nnz,
            )
        )
    return tuple(out)
