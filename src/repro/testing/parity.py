"""Cross-plane chaos parity: the same fault scenario, both substrates.

:func:`run_scenario` executes one :class:`~repro.testing.chaos.ChaosScenario`
on either plane — the sim backend with its injected faults, simulated
exit codes and degraded-epoch cost log, or the process backend with
real spawned workers — and condenses the run into a
:class:`PlaneOutcome`.  :func:`check_parity` then holds the two
outcomes to the differential contract:

* **identical recovery decisions** — the ``(epoch, error, action)``
  sequence the engine recorded is equal element-for-element;
* **identical final partition fractions** — both planes ran the same
  ``redistribute()`` renormalization from the same even start, so the
  fractions must match exactly, not just approximately;
* **RMSE within tolerance** — the planes train different shard
  contents (different partitioning substrate), so convergence agrees
  to a relative tolerance, not bitwise;
* **degraded-cost drift within bound** — the sim's analytic
  degraded/healthy epoch-cost ratio tracks the process plane's
  *measured* degraded/healthy epoch-duration ratio.  The comparison is
  a ratio of ratios, so clock units cancel and only the *shape* of the
  slowdown is scored; when a scenario has no degraded or no healthy
  epochs the check is not applicable and passes.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.core.cost_model import TimeCostModel
from repro.data.datasets import NETFLIX
from repro.engine.backends import ProcessBackend, SimBackend
from repro.engine.channels import QOnlyChannel
from repro.engine.pipeline import EpochEngine
from repro.hardware.timeline import Phase, Timeline
from repro.resilience.policy import RecoveryAction, TrainingAborted
from repro.testing.chaos import ChaosScenario, parity_platform

PLANES = ("sim", "process")


@dataclass(frozen=True)
class PlaneOutcome:
    """One plane's condensed account of a chaos scenario run."""

    plane: str
    scenario_name: str
    aborted: bool
    abort_epoch: "int | None"
    #: an abort wrote (and we verified on disk) a final checkpoint
    checkpoint_written: bool
    #: the engine's (global epoch, error type, action) record
    decisions: tuple[tuple[int, str, str], ...]
    final_fractions: tuple[float, ...]
    final_workers: int
    rmse_history: tuple[float, ...]
    #: mean degraded epoch cost / mean healthy epoch cost (None when
    #: the run had no degraded epochs, no healthy ones, or no timing)
    degraded_ratio: "float | None"


@dataclass(frozen=True)
class ParityCheck:
    """One named comparison between the two planes' outcomes."""

    name: str
    ok: bool
    detail: str


@dataclass(frozen=True)
class ParityReport:
    """All parity checks for one scenario."""

    scenario_name: str
    checks: tuple[ParityCheck, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def describe(self) -> str:
        lines = [f"scenario {self.scenario_name}:"]
        for c in self.checks:
            mark = "ok" if c.ok else "FAIL"
            lines.append(f"  [{mark:>4}] {c.name}: {c.detail}")
        return "\n".join(lines)


def run_scenario(
    scenario: ChaosScenario,
    plane: str,
    data=None,
    checkpoint_dir: "str | None" = None,
) -> PlaneOutcome:
    """Execute one scenario on one plane and condense the outcome.

    ``data`` overrides the scenario's generated ratings (pass the same
    matrix to both planes); ``checkpoint_dir`` overrides the temporary
    directory abort checkpoints land in.
    """
    if plane not in PLANES:
        raise ValueError(f"plane must be one of {PLANES}, not {plane!r}")
    if data is None:
        data = NETFLIX.scaled(scenario.data_nnz).generate(seed=scenario.seed)
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_path = os.path.join(
            checkpoint_dir if checkpoint_dir is not None else tmp,
            f"{scenario.name}-{plane}.ckpt",
        )
        telemetry = None
        if plane == "sim":
            platform = parity_platform(scenario.n_workers)
            backend = SimBackend(
                platform,
                data.shuffle(scenario.seed),
                k=scenario.k,
                lr=scenario.lr,
                seed=scenario.seed,
                cost_model=TimeCostModel(
                    platform, NETFLIX.scaled(scenario.data_nnz), k=scenario.k
                ),
                fault_plan=scenario.fault_plan,
                barrier_timeout_s=scenario.barrier_timeout_s,
            )
        else:
            from repro.obs import Telemetry

            telemetry = Telemetry()
            backend = ProcessBackend(
                data,
                k=scenario.k,
                n_workers=scenario.n_workers,
                lr=scenario.lr,
                seed=scenario.seed,
                barrier_timeout_s=scenario.barrier_timeout_s,
                fault_plan=scenario.fault_plan,
            )
        engine = EpochEngine(
            backend,
            channel=QOnlyChannel(),
            telemetry=telemetry,
            recovery=scenario.recovery,
            checkpoint_path=ckpt_path,
        )
        aborted = False
        abort_epoch = None
        checkpoint_written = False
        result = None
        try:
            result = engine.run(scenario.epochs)
            summary = result.resilience
        except TrainingAborted as err:
            aborted = True
            abort_epoch = err.epoch
            summary = err.summary
            checkpoint_written = _checkpoint_readable(err.checkpoint_path)
        decisions = tuple(summary.decisions) if summary is not None else ()
        if plane == "sim":
            ratio = _sim_degraded_ratio(backend.cost_log)
        else:
            ratio = _process_degraded_ratio(telemetry, decisions)
        return PlaneOutcome(
            plane=plane,
            scenario_name=scenario.name,
            aborted=aborted,
            abort_epoch=abort_epoch,
            checkpoint_written=checkpoint_written,
            decisions=decisions,
            final_fractions=(
                tuple(result.final_plan.fractions)
                if result is not None and result.final_plan is not None
                else ()
            ),
            final_workers=backend.n_workers,
            rmse_history=(
                tuple(result.rmse_history) if result is not None else ()
            ),
            degraded_ratio=ratio,
        )


def _checkpoint_readable(path: "str | None") -> bool:
    """True when an abort's final checkpoint actually loads back."""
    if path is None:
        return False
    from repro.core.checkpoint import load_checkpoint

    try:
        load_checkpoint(path)
    except (FileNotFoundError, ValueError):
        return False
    return True


def _sim_degraded_ratio(cost_log) -> "float | None":
    """Degraded/healthy mean analytic epoch cost off the sim's log."""
    healthy = [cost for _, cost, degraded in cost_log if not degraded]
    degraded = [cost for _, cost, degraded in cost_log if degraded]
    if not healthy or not degraded:
        return None
    mean_h = sum(healthy) / len(healthy)
    if mean_h <= 0:
        return None
    return (sum(degraded) / len(degraded)) / mean_h


def _process_degraded_ratio(telemetry, decisions) -> "float | None":
    """Degraded/healthy mean measured epoch duration off the timeline.

    An epoch's duration follows Eq. 1's shape: the slowest worker's
    pull+compute+push for the attempt that completed it (its SYNC span
    names that attempt), plus the server's merge time.  An epoch is
    degraded iff a redistribute decision landed at or before it.

    The earliest completed epoch is excluded: its measured duration is
    dominated by warm-up (cold caches, first-touch page faults) that
    the sim's analytic cost has no counterpart for, and at harness
    scale it can swing the baseline mean by multiples either way.
    """
    timeline: "Timeline | None" = getattr(telemetry, "timeline", None)
    if timeline is None or not len(timeline):
        return None
    spans = timeline.spans
    completed: dict[int, int] = {}  # epoch -> attempt of its sync
    for s in spans:
        if s.phase is Phase.SYNC:
            completed[s.epoch] = max(s.attempt, completed.get(s.epoch, -1))
    if completed:
        completed.pop(min(completed))  # warm-up epoch
    redist = [e for e, _, action in decisions
              if action == RecoveryAction.REDISTRIBUTE.value]
    healthy: list[float] = []
    degraded: list[float] = []
    for epoch, attempt in completed.items():
        per_worker: dict[str, float] = {}
        sync_s = 0.0
        for s in spans:
            if s.epoch != epoch or s.attempt != attempt:
                continue
            if s.phase in (Phase.PULL, Phase.COMPUTE, Phase.PUSH):
                per_worker[s.worker] = per_worker.get(s.worker, 0.0) + s.duration
            elif s.phase is Phase.SYNC:
                sync_s += s.duration
        if not per_worker:
            continue
        duration = max(per_worker.values()) + sync_s
        (degraded if any(r <= epoch for r in redist) else healthy).append(duration)
    if not healthy or not degraded:
        return None
    mean_h = sum(healthy) / len(healthy)
    if mean_h <= 0:
        return None
    return (sum(degraded) / len(degraded)) / mean_h


def check_parity(
    sim: PlaneOutcome,
    process: PlaneOutcome,
    rmse_rel_tol: float = 0.08,
    drift_bound: float = 1.0,
) -> ParityReport:
    """Hold a scenario's two outcomes to the differential contract."""
    checks: list[ParityCheck] = []
    checks.append(ParityCheck(
        "decisions",
        sim.decisions == process.decisions,
        f"sim={list(sim.decisions)} process={list(process.decisions)}",
    ))
    abort_ok = (
        sim.aborted == process.aborted
        and sim.abort_epoch == process.abort_epoch
    )
    if sim.aborted and process.aborted:
        abort_ok = abort_ok and sim.checkpoint_written and process.checkpoint_written
    checks.append(ParityCheck(
        "abort",
        abort_ok,
        f"sim=({sim.aborted}, epoch={sim.abort_epoch}, "
        f"ckpt={sim.checkpoint_written}) "
        f"process=({process.aborted}, epoch={process.abort_epoch}, "
        f"ckpt={process.checkpoint_written})",
    ))
    if not sim.aborted and not process.aborted:
        checks.append(ParityCheck(
            "fractions",
            sim.final_fractions == process.final_fractions,
            f"sim={sim.final_fractions} process={process.final_fractions}",
        ))
        if sim.rmse_history and process.rmse_history:
            s, p = sim.rmse_history[-1], process.rmse_history[-1]
            rel = abs(s - p) / p if p > 0 else float("inf")
            checks.append(ParityCheck(
                "rmse",
                rel <= rmse_rel_tol,
                f"sim={s:.4f} process={p:.4f} rel={rel:.3f} "
                f"tol={rmse_rel_tol}",
            ))
        else:
            checks.append(ParityCheck(
                "rmse", False,
                f"missing history: sim={len(sim.rmse_history)} "
                f"process={len(process.rmse_history)} epochs",
            ))
    if sim.degraded_ratio is not None and process.degraded_ratio is not None:
        drift = abs(sim.degraded_ratio - process.degraded_ratio)
        drift /= process.degraded_ratio
        checks.append(ParityCheck(
            "drift",
            drift <= drift_bound,
            f"sim_ratio={sim.degraded_ratio:.3f} "
            f"process_ratio={process.degraded_ratio:.3f} "
            f"drift={drift:.3f} bound={drift_bound}",
        ))
    else:
        checks.append(ParityCheck(
            "drift", True,
            "n/a (no degraded or no healthy epochs to compare)",
        ))
    return ParityReport(sim.scenario_name, tuple(checks))


def check_invariants(scenario: ChaosScenario, outcome: PlaneOutcome) -> list[str]:
    """Single-plane safety invariants for the randomized regression sweep.

    Returns violation messages (empty = clean):

    * an abort must carry a checkpoint when the policy asks for one and
      a path is configured (``run_scenario`` always configures one);
    * a completed run must have exactly one RMSE per requested epoch —
      no epoch silently lost;
    * a completed run's decision record must contain no abort.
    """
    problems: list[str] = []
    if outcome.aborted:
        if scenario.recovery.checkpoint_on_abort and not outcome.checkpoint_written:
            problems.append("aborted without writing a checkpoint")
    else:
        if len(outcome.rmse_history) != scenario.epochs:
            problems.append(
                f"epoch loss: {len(outcome.rmse_history)} RMSE entries for "
                f"{scenario.epochs} epochs"
            )
        if any(a == RecoveryAction.ABORT.value for _, _, a in outcome.decisions):
            problems.append("decision record contains an abort on a completed run")
    return problems
