"""Ablation studies for the design choices DESIGN.md calls out.

Beyond the paper's own tables and figures, these sweeps isolate each
design decision:

* :func:`ablate_streams` — how many async streams does Strategy 3 need?
* :func:`ablate_lambda` — sensitivity of the DP1/DP2 regime switch to
  the paper's threshold lambda = 10 (Eq. 5).
* :func:`ablate_latent_dim` — how the latent dimension k moves the
  comm/compute balance (Eq. 2's (16k+4) vs 2k(m+n) terms).
* :func:`ablate_heterogeneous_baselines` — HCC-MF's throughput-aware
  partition vs DSGD's equal split (the related-work critique: bucket
  effect on heterogeneous processors) and NOMAD's column-passing
  traffic vs HCC-MF's Q-only traffic.
* :func:`extension_q_rotate` — the future-work ring-rotation mode vs
  Q-only on the datasets where the Table 6 limitation bites.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import (
    CommConfig,
    HCCConfig,
    TransmitMode,
)
from repro.core.framework import HCCMF
from repro.data.datasets import DatasetSpec, MOVIELENS_20M, NETFLIX, YAHOO_R1
from repro.experiments.platforms import workers_platform
from repro.experiments.tables import ExperimentResult
from repro.hardware.topology import paper_workstation
from repro.mf.dsgd import dsgd_epoch_time


def ablate_streams(
    dataset: DatasetSpec = YAHOO_R1,
    max_streams: int = 8,
    k: int = 128,
    epochs: int = 20,
) -> ExperimentResult:
    """Epoch time and utilization as Strategy 3's stream count grows."""
    result = ExperimentResult(
        "ablate-streams",
        f"Async stream count sweep on {dataset.name}",
        ["streams", "epoch_ms", "exposed_sync_ms", "utilization"],
    )
    for streams in range(1, max_streams + 1):
        cfg = HCCConfig(k=k, epochs=epochs, comm=CommConfig(streams=streams))
        res = HCCMF(paper_workstation(16), dataset, cfg).train()
        result.add_row(
            streams,
            res.epoch_cost.total * 1e3,
            res.epoch_cost.exposed_sync * 1e3,
            res.utilization,
        )
    result.add_note(
        "expected: monotone improvement with sharply diminishing returns "
        "past ~4 streams (the paper uses a handful)"
    )
    return result


def ablate_lambda(
    dataset: DatasetSpec = NETFLIX,
    thresholds: tuple[float, ...] = (1.0, 3.0, 10.0, 30.0, 100.0),
    k: int = 128,
    epochs: int = 20,
) -> ExperimentResult:
    """Eq. 5's lambda: when does AUTO switch from DP1 to DP2?"""
    result = ExperimentResult(
        "ablate-lambda",
        f"Regime-threshold sweep on {dataset.name}",
        ["lambda", "chosen_strategy", "epoch_ms"],
    )
    for lam in thresholds:
        cfg = HCCConfig(k=k, epochs=epochs, lambda_threshold=lam)
        hcc = HCCMF(paper_workstation(16), dataset, cfg)
        plan = hcc.prepare()
        res = hcc.train()
        result.add_row(lam, plan.strategy, res.epoch_cost.total * 1e3)
    result.add_note(
        "the paper picks lambda = 10; the sweep shows where the DP1->DP2 "
        "crossover actually falls for this dataset"
    )
    return result


def ablate_latent_dim(
    dataset: DatasetSpec = NETFLIX,
    dims: tuple[int, ...] = (16, 32, 64, 128, 256),
    epochs: int = 20,
) -> ExperimentResult:
    """k sweep: compute scales with (16k+4), comm with 2k(m+n) (Eq. 2)."""
    result = ExperimentResult(
        "ablate-k",
        f"Latent-dimension sweep on {dataset.name}",
        ["k", "epoch_ms", "comm_fraction", "utilization"],
    )
    for k in dims:
        cfg = HCCConfig(k=k, epochs=epochs)
        res = HCCMF(paper_workstation(16), dataset, cfg).train()
        comm_fraction = res.comm_time / (res.comm_time + epochs * res.epoch_cost.compute_total)
        result.add_row(k, res.epoch_cost.total * 1e3, comm_fraction, res.utilization)
    result.add_note(
        "both cost terms are ~linear in k, so the comm fraction is nearly "
        "k-invariant (Eq. 2) — the dataset shape, not k, decides the regime"
    )
    return result


def ablate_heterogeneous_baselines(
    dataset: DatasetSpec = NETFLIX,
    k: int = 128,
    epochs: int = 20,
) -> ExperimentResult:
    """HCC-MF's partition vs DSGD's equal split on heterogeneous workers.

    DSGD strata end at barriers, so with an equal block grid the epoch
    runs at the *slowest* processor's pace (the related-work critique).
    The comparison uses the same calibrated worker rates for both.
    """
    result = ExperimentResult(
        "ablate-baselines",
        f"Heterogeneous scheduling: HCC-MF vs DSGD equal split ({dataset.name})",
        ["scheme", "epoch_ms", "vs_hcc"],
    )
    platform = workers_platform(4)
    cfg = HCCConfig(k=k, epochs=epochs)
    hcc = HCCMF(platform, dataset, cfg).train()
    hcc_epoch = hcc.epoch_cost.total

    rates = [
        w.update_rate(k, dataset, partition_frac=1.0 / platform.n_workers, corun=True)
        for w in platform.workers
    ]
    p = len(rates)
    # DSGD: uniform p x p block grid over the same nnz
    block_nnz = np.full((p, p), dataset.nnz / (p * p))
    dsgd_epoch = dsgd_epoch_time(block_nnz, rates, barrier_cost=50e-6)

    # an idealized DSGD that magically knew the rates (column-proportional
    # blocks): isolates the barrier cost from the imbalance cost
    x = np.asarray(rates) / np.sum(rates)
    prop_nnz = np.outer(x, np.full(p, 1.0 / p)) * dataset.nnz
    dsgd_prop = dsgd_epoch_time(prop_nnz, rates, barrier_cost=50e-6)

    result.add_row("HCC-MF (AUTO partition)", hcc_epoch * 1e3, 1.0)
    result.add_row("DSGD (equal blocks)", dsgd_epoch * 1e3, dsgd_epoch / hcc_epoch)
    result.add_row(
        "DSGD (rate-proportional blocks)", dsgd_prop * 1e3, dsgd_prop / hcc_epoch
    )
    result.add_note(
        "equal-split DSGD pays the bucket effect at every stratum barrier; "
        "the rate-proportional variant is a lower bound that ignores "
        "DSGD's own inter-stratum parameter movement (HCC's number "
        "includes all pull/push/sync)"
    )
    return result


def extension_q_rotate(
    dataset: DatasetSpec = MOVIELENS_20M,
    k: int = 128,
    epochs: int = 20,
    max_workers: int = 4,
) -> ExperimentResult:
    """The future-work fix: ring-rotated Q vs Q-only as workers scale.

    Table 6 showed Q-only cannot profit from added workers when comm ~
    compute; Q_ROTATE's per-hop transfers overlap rotation steps and
    drop the server sync, so total time keeps falling with scale.
    """
    result = ExperimentResult(
        "extension-q-rotate",
        f"Future work: ring-rotated Q ownership on {dataset.name}",
        ["workers", "mode", "total_s", "epoch_ms", "utilization"],
    )
    for n in range(1, max_workers + 1):
        for label, mode in (("Q-only", TransmitMode.Q_ONLY), ("Q-rotate", TransmitMode.Q_ROTATE)):
            cfg = HCCConfig(k=k, epochs=epochs, comm=CommConfig(transmit=mode))
            res = HCCMF(workers_platform(n), dataset, cfg).train()
            result.add_row(
                n, label, res.total_time, res.epoch_cost.total * 1e3, res.utilization
            )
    result.add_note(
        "paper section 6's open problem: with Q-only, adding workers to "
        "MovieLens barely helps (Table 6); rotation restores scaling"
    )
    return result


def extension_adaptive(
    dataset: DatasetSpec = NETFLIX,
    epochs: int = 20,
    k: int = 128,
    slowdown_factor: float = 0.5,
    slowdown_epoch: int = 5,
) -> ExperimentResult:
    """Online re-partitioning vs a static DP1 plan under a throttle event.

    At ``slowdown_epoch`` the fastest GPU drops to ``slowdown_factor``
    of its speed (thermal throttling / co-tenant); the adaptive
    controller re-runs Eq. 6 on the observed times while the static run
    suffers the straggler for the rest of training.
    """
    from repro.core.adaptive import SlowdownEvent, simulate_adaptive_run

    platform = paper_workstation(16)
    # workers: [special cpu, cpu1, 2080S, 2080]; throttle the 2080S
    events = [SlowdownEvent(worker_index=2, epoch=slowdown_epoch, factor=slowdown_factor)]
    static = simulate_adaptive_run(platform, dataset, events, epochs, k, adaptive=False)
    adaptive = simulate_adaptive_run(platform, dataset, events, epochs, k, adaptive=True)

    result = ExperimentResult(
        "extension-adaptive",
        f"Online re-partitioning under a {1/slowdown_factor:.0f}x throttle ({dataset.name})",
        ["mode", "total_s", "post_event_epoch_ms", "repartitions"],
    )
    probe = min(slowdown_epoch + 3, epochs - 1)
    result.add_row("static DP1", static.total_time,
                   static.epoch_totals[probe] * 1e3, 0)
    result.add_row("adaptive", adaptive.total_time,
                   adaptive.epoch_totals[probe] * 1e3,
                   len(adaptive.repartition_epochs))
    result.extra["static"] = static
    result.extra["adaptive"] = adaptive
    result.add_note(
        "Algorithm 1 needs only measured epoch times, so it doubles as a "
        "runtime controller — an extension the paper's one-shot DP1 implies"
    )
    return result


def extension_energy(dataset: DatasetSpec = NETFLIX) -> ExperimentResult:
    """Figure 3's economics extended with operating energy."""
    from repro.experiments.energy import compare_platform_energy

    return compare_platform_energy(dataset)


def extension_sensitivity() -> ExperimentResult:
    """Robustness of the headline metrics to the fitted constants."""
    from repro.experiments.sensitivity import sensitivity_study

    return sensitivity_study(multipliers=(0.8, 0.9, 1.0, 1.1, 1.2))


#: ablation id -> generator
ALL_ABLATIONS = {
    "streams": ablate_streams,
    "lambda": ablate_lambda,
    "latent-dim": ablate_latent_dim,
    "baselines": ablate_heterogeneous_baselines,
    "q-rotate": extension_q_rotate,
    "adaptive": extension_adaptive,
    "energy": extension_energy,
    "sensitivity": extension_sensitivity,
}
