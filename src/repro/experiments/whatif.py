"""What-if platform exploration: hypothetical hardware under the model.

The calibrated cost model prices *any* platform the catalog can
describe, so it can answer design questions the paper's fixed testbed
cannot: what would NVLink buy?  How many GPUs before communication
saturates?  Is a V100 pool better value than 2080-class cards?

These helpers build hypothetical platforms and sweep them against a
dataset, returning plain result rows (used by the ablation benches and
the ``heterogeneous_scaling`` example's what-if section).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.core.config import CommConfig, HCCConfig
from repro.core.framework import HCCMF
from repro.data.datasets import DatasetSpec
from repro.hardware.processor import Processor
from repro.hardware.specs import (
    BusKind,
    BusSpec,
    PCIE3_X16,
    PROCESSOR_CATALOG,
    ProcessorSpec,
    XEON_6242,
)
from repro.hardware.topology import Platform

#: faster interconnect generations for what-if sweeps
PCIE4_X16 = BusSpec(name="PCI-E 4.0 x16", kind=BusKind.PCIE, bandwidth_gbs=31.5)
NVLINK2 = BusSpec(name="NVLink 2.0", kind=BusKind.NVLINK, bandwidth_gbs=75.0)

BUS_GENERATIONS: dict[str, BusSpec] = {
    "pcie3": PCIE3_X16,
    "pcie4": PCIE4_X16,
    "nvlink": NVLINK2,
}


def gpu_pool(
    gpu_name: str,
    count: int,
    bus: BusSpec = PCIE3_X16,
    server_threads: int = 16,
    shared_channel: bool = False,
) -> Platform:
    """A host CPU serving ``count`` identical GPUs.

    ``shared_channel=True`` hangs every GPU off one physical link (a
    PCI-E switch / bifurcated slot): their transfers then contend —
    the violation of Figure 2's "channels are sufficient" assumption.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    try:
        spec = PROCESSOR_CATALOG[gpu_name]
    except KeyError as exc:
        raise KeyError(f"unknown processor {gpu_name!r}") from exc
    if not spec.is_gpu:
        raise ValueError(f"{gpu_name} is not a GPU")
    server = Processor(XEON_6242, threads=server_threads, instance="host")
    platform = Platform(server=server)
    channel = "shared-slot" if shared_channel else None
    for i in range(count):
        platform.add_worker(Processor(spec, instance=f"g{i}"), bus, channel=channel)
    return platform


def sweep_channel_contention(
    dataset: DatasetSpec,
    gpu_name: str = "2080S",
    max_gpus: int = 4,
    k: int = 128,
    epochs: int = 20,
) -> list[WhatIfRow]:
    """Exclusive x16 slots vs one shared link, as GPUs are added.

    Quantifies the paper's Figure 2 caveat: collaboration only scales
    "as long as these connection channels are sufficient".
    """
    rows = []
    for shared in (False, True):
        for count in range(1, max_gpus + 1):
            platform = gpu_pool(gpu_name, count, shared_channel=shared)
            res = HCCMF(platform, dataset, HCCConfig(k=k, epochs=epochs)).train()
            label = "shared link" if shared else "exclusive slots"
            rows.append(
                WhatIfRow(
                    label=f"{count}x {gpu_name}, {label}",
                    total_time=res.total_time,
                    power=res.power,
                    utilization=res.utilization,
                    price=platform.total_price(),
                )
            )
    return rows


@dataclass(frozen=True)
class WhatIfRow:
    """One evaluated hypothetical configuration."""

    label: str
    total_time: float
    power: float
    utilization: float
    price: float

    @property
    def power_per_dollar(self) -> float:
        return self.power / self.price if self.price > 0 else float("inf")


def sweep_gpu_count(
    dataset: DatasetSpec,
    gpu_name: str = "2080S",
    max_gpus: int = 8,
    bus: BusSpec = PCIE3_X16,
    k: int = 128,
    epochs: int = 20,
    comm: CommConfig | None = None,
) -> list[WhatIfRow]:
    """Total time and value as identical GPUs are added.

    Shows where communication/synchronization saturate the scaling —
    the Table 6 effect generalized to any dataset shape.
    """
    rows = []
    for count in range(1, max_gpus + 1):
        platform = gpu_pool(gpu_name, count, bus=bus)
        config = HCCConfig(k=k, epochs=epochs, comm=comm or CommConfig())
        res = HCCMF(platform, dataset, config).train()
        rows.append(
            WhatIfRow(
                label=f"{count}x {gpu_name} ({bus.name})",
                total_time=res.total_time,
                power=res.power,
                utilization=res.utilization,
                price=platform.total_price(),
            )
        )
    return rows


def sweep_interconnect(
    dataset: DatasetSpec,
    gpu_name: str = "2080S",
    count: int = 2,
    k: int = 128,
    epochs: int = 20,
) -> list[WhatIfRow]:
    """The same GPU pool across interconnect generations."""
    rows = []
    for label, bus in BUS_GENERATIONS.items():
        platform = gpu_pool(gpu_name, count, bus=bus)
        res = HCCMF(platform, dataset, HCCConfig(k=k, epochs=epochs)).train()
        rows.append(
            WhatIfRow(
                label=f"{count}x {gpu_name} over {label}",
                total_time=res.total_time,
                power=res.power,
                utilization=res.utilization,
                price=platform.total_price(),
            )
        )
    return rows


def hypothetical_gpu(
    name: str,
    base: str = "2080S",
    rate_multiplier: float = 1.0,
    memory_gb: float | None = None,
    price_usd: float | None = None,
) -> ProcessorSpec:
    """Derive a hypothetical GPU spec from a catalog entry.

    Useful for roadmap questions ("a 2x-faster 2080S with 16 GB"): the
    derived spec plugs into any Platform like a real one.
    """
    if rate_multiplier <= 0:
        raise ValueError("rate_multiplier must be positive")
    spec = PROCESSOR_CATALOG[base]
    return dc_replace(
        spec,
        name=name,
        base_rate_k128=spec.base_rate_k128 * rate_multiplier,
        bandwidth_anchors=tuple(
            (t, b * rate_multiplier) for t, b in spec.bandwidth_anchors
        ),
        memory_gb=memory_gb if memory_gb is not None else spec.memory_gb,
        price_usd=price_usd if price_usd is not None else spec.price_usd,
    )
