"""Reproduction harness: one generator per paper table and figure.

Each ``figN``/``tableN`` function runs the corresponding experiment on
the calibrated platform model (plus the numeric plane where convergence
is under study) and returns an :class:`ExperimentResult` whose
``render()`` prints the same rows/series the paper reports.

See DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured values.
"""

from repro.experiments.tables import ExperimentResult, render_table
from repro.experiments.platforms import (
    overall_platform,
    hetero_platform,
    single,
    build_combo,
    workers_platform,
)
from repro.experiments.runners import (
    run_hcc,
    single_processor_time,
    dataset_config,
)
from repro.experiments.ablations import (
    ablate_streams,
    ablate_lambda,
    ablate_latent_dim,
    ablate_heterogeneous_baselines,
    extension_q_rotate,
    ALL_ABLATIONS,
)
from repro.experiments.energy import energy_of, compare_platform_energy
from repro.experiments.report import build_markdown_report
from repro.experiments.plots import ascii_line_chart, convergence_chart
from repro.experiments.sensitivity import sensitivity_study, perturbed, KNOBS, METRICS
from repro.experiments.crosscheck import crosscheck_model_vs_formulas, wire_bytes_identity
from repro.experiments.whatif import (
    gpu_pool,
    sweep_gpu_count,
    sweep_interconnect,
    sweep_channel_contention,
    hypothetical_gpu,
    WhatIfRow,
    PCIE4_X16,
    NVLINK2,
)
from repro.experiments.figures import (
    fig3a,
    fig3b,
    table2,
    fig5_timing_sequences,
    fig6_async_pipeline,
    fig7,
    table4,
    fig8,
    table5,
    fig9,
    table6,
    ALL_EXPERIMENTS,
)

__all__ = [
    "ExperimentResult",
    "render_table",
    "overall_platform",
    "hetero_platform",
    "single",
    "build_combo",
    "workers_platform",
    "run_hcc",
    "single_processor_time",
    "dataset_config",
    "fig3a",
    "fig3b",
    "table2",
    "fig5_timing_sequences",
    "fig6_async_pipeline",
    "fig7",
    "table4",
    "fig8",
    "table5",
    "fig9",
    "table6",
    "ALL_EXPERIMENTS",
    "ablate_streams",
    "ablate_lambda",
    "ablate_latent_dim",
    "ablate_heterogeneous_baselines",
    "extension_q_rotate",
    "ALL_ABLATIONS",
    "energy_of",
    "build_markdown_report",
    "ascii_line_chart",
    "convergence_chart",
    "sensitivity_study",
    "perturbed",
    "KNOBS",
    "METRICS",
    "crosscheck_model_vs_formulas",
    "wire_bytes_identity",
    "compare_platform_energy",
    "gpu_pool",
    "sweep_gpu_count",
    "sweep_interconnect",
    "sweep_channel_contention",
    "hypothetical_gpu",
    "WhatIfRow",
    "PCIE4_X16",
    "NVLINK2",
]
