"""Terminal plotting: ASCII line charts for convergence curves.

The repository has no plotting dependency, so the figures the paper
draws as line charts (Figure 7's RMSE-vs-epoch and RMSE-vs-time) are
rendered as fixed-width ASCII — good enough to *see* the crossovers the
tests assert, in any terminal or CI log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: glyphs assigned to series, in order
_GLYPHS = "*+ox#@%&"


def ascii_line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 68,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{name: (xs, ys)}`` as an ASCII chart.

    Each series gets a glyph; later series overwrite earlier ones on
    collisions (draw the most important last).  Axes are linear and
    annotated with their ranges.
    """
    if width < 20 or height < 5:
        raise ValueError("chart too small")
    if not series:
        raise ValueError("no series to plot")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")

    all_x = [v for xs, _ in series.values() for v in xs]
    all_y = [v for _, ys in series.values() for v in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} {name}")
        prev: tuple[int, int] | None = None
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            if prev is not None:
                # connect with a straight segment so sparse curves read
                pr, pc = prev
                steps = max(abs(col - pc), abs(row - pr), 1)
                for s in range(steps + 1):
                    rr = round(pr + (row - pr) * s / steps)
                    cc = round(pc + (col - pc) * s / steps)
                    grid[rr][cc] = glyph
            else:
                grid[row][col] = glyph
            prev = (row, col)

    lines = [f"{y_hi:10.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:10.4g} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_lo:<10.4g}{x_label:^{max(width - 20, 1)}}{x_hi:>10.4g}"
    )
    lines.append(" " * 12 + f"[{y_label}]   " + "   ".join(legend))
    return "\n".join(lines)


def convergence_chart(
    curves: Mapping[str, Mapping[str, Sequence[float]]],
    against: str = "epoch",
    width: int = 68,
    height: int = 16,
) -> str:
    """Chart Figure 7-style curves: ``{method: {"rmse": [...], "time": [...]}}``.

    ``against='epoch'`` plots RMSE vs epoch (Fig. 7a-c); ``'time'``
    plots RMSE vs the modeled time axis (Fig. 7d-f).
    """
    series: dict[str, tuple[Sequence[float], Sequence[float]]] = {}
    for name, data in curves.items():
        rmse = data["rmse"]
        if against == "epoch":
            xs: Sequence[float] = list(range(1, len(rmse) + 1))
        elif against == "time":
            xs = data["time"]
        else:
            raise ValueError("against must be 'epoch' or 'time'")
        series[name] = (xs, rmse)
    return ascii_line_chart(
        series, width=width, height=height,
        x_label=against, y_label="RMSE",
    )
