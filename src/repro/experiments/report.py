"""Markdown reproduction report: paper-vs-measured for every experiment.

:func:`build_markdown_report` regenerates all tables and figures and
renders them next to the paper's reported values — the content of the
repository's EXPERIMENTS.md (``scripts/generate_experiments_md.py`` is
a thin wrapper).  Individual section builders are exposed so notebooks
and CI jobs can rebuild one experiment's section cheaply.
"""

from __future__ import annotations

import io
from typing import Callable

from repro.experiments.figures import (
    fig3a,
    fig3b,
    fig5_timing_sequences,
    fig6_async_pipeline,
    fig7,
    fig8,
    fig9,
    table2,
    table4,
    table5,
    table6,
)

#: qualitative Figure 3(a) anchors (seconds for 20 Netflix epochs)
PAPER_FIG3A = {"6242": 5.5, "2080": 2.25, "2080S": 2.0, "V100": 1.6}

#: Figure 8's reported reductions
PAPER_FIG8 = {
    ("Netflix", 4, "dp1"): 0.122,
    ("R2", 4, "dp1"): 0.10,
    ("R1*", 4, "dp2"): 0.121,
}


def _fig3_section(w) -> None:
    r = fig3a()
    w("## Figure 3(a) — platform survey (Netflix, 20 epochs)\n\n")
    w("| platform | paper (s, approx.) | measured (s) |\n|---|---|---|\n")
    rows = r.row_map()
    for name, paper in PAPER_FIG3A.items():
        w(f"| {name} | {paper:.2f} | {rows[name][2]:.2f} |\n")
    for name in ("6242-2080", "6242-2080S", "2080-2080S"):
        w(f"| {name} | < each part alone | {rows[name][2]:.2f} |\n")
    for name in (
        "6242-2080S(Bad communication)",
        "6242-2080S(Unbalanced data)",
        "6242-2080S(Bad threads conf)",
    ):
        w(f"| {name} | benefit erased | {rows[name][2]:.2f} |\n")
    w("\nShape check: every good collaboration beats its lone processors; "
      "every bad configuration is slower than the lone 2080S. **Holds.**\n\n")

    rb = fig3b().row_map()
    w("## Figure 3(b) — prices\n\n| platform | price ($) |\n|---|---|\n")
    for name, price in rb.items():
        w(f"| {name} | {price[1]:,.0f} |\n")
    w("\nShape check: 6242-2080S delivers near-V100 performance at "
      f"{rb['6242-2080S'][1] / rb['V100'][1]:.0%} of the V100's price "
      "(paper: < 1/3). **Holds.**\n\n")


def _table2_section(w) -> None:
    r = table2()
    w("## Table 2 — memory bandwidth (GB/s), IW vs DP0\n\n")
    w("| worker | paper IW | model IW | paper DP0 | model DP0 |\n|---|---|---|---|---|\n")
    for worker, iw_m, dp0_m, iw_p, dp0_p in r.rows:
        w(f"| {worker} | {iw_p:.2f} | {iw_m:.2f} | {dp0_p:.2f} | {dp0_m:.2f} |\n")
    w("\nGPU bandwidth rises a few percent under DP0, CPU stays flat. "
      "**Holds** (model within 2% of every measured cell).\n\n")


def _fig56_section(w) -> None:
    r = fig5_timing_sequences()
    w("## Figure 5 — timing sequences (R1* shape, one epoch)\n\n")
    w("| configuration | epoch (s) | exposed sync (s) |\n|---|---|---|\n")
    for config, t, sync in r.rows:
        w(f"| {config} | {t:.3f} | {sync:.3f} |\n")
    w("\nDP1 < original; DP2 < DP1 with most sync hidden. **Holds.**\n\n")

    r = fig6_async_pipeline()
    w("## Figure 6 — async computing-transmission\n\n")
    w("| streams | epoch (s) | exposed comm (s) | hidden |\n|---|---|---|---|\n")
    for s, t, e, h in r.rows:
        w(f"| {s} | {t:.4f} | {e:.4f} | {h:.0%} |\n")
    w("\nExposed transfer ~ 1/streams (paper's claim). **Holds exactly** in "
      "the compute-bound regime.\n\n")


def _fig7_section(w, fig7_kwargs: dict | None) -> None:
    r = fig7(**(fig7_kwargs or {}))
    w("## Figure 7 — convergence & training speed vs FPSGD / CuMF_SGD\n\n")
    w("| dataset | method | final RMSE (scaled data) | epoch (ms) | "
      "speedup of HCC | paper speedup |\n|---|---|---|---|---|---|\n")
    for ds, method, rmse, epoch_ms, speed, paper in r.rows:
        w(f"| {ds} | {method} | {rmse:.3f} | {epoch_ms:.1f} | "
          f"{speed:.2f}x | {paper:.2f}x |\n")
    w("\nConvergence-per-epoch is equivalent across methods (Fig. 7a–c) and\n")
    w("HCC's modeled speed beats both baselines everywhere (Fig. 7d–f).\n")
    w("Netflix and R2 speedups vs CuMF_SGD land within ~3% of the paper\n")
    w("(2.25x vs 2.3x; 2.92x vs 2.9x); R1's is lower (1.0x vs 1.43x) because\n")
    w("our sync/communication model charges R1's huge item dimension more\n")
    w("conservatively than the authors' testbed did.\n\n")


def _table4_section(w) -> None:
    r = table4()
    w("## Table 4 — computing power (updates/s) and utilization\n\n")
    w("| dataset | 6242-24T | 6242-16T | 2080 | 2080S | Ideal | HCC | "
      "utilization | paper util |\n|---|---|---|---|---|---|---|---|---|\n")
    for ds, a, b, c, d, ideal, hcc, util, paper in r.rows:
        w(f"| {ds} | {a/1e6:,.0f}M | {b/1e6:,.0f}M | {c/1e6:,.0f}M | "
          f"{d/1e6:,.0f}M | {ideal/1e6:,.0f}M | {hcc/1e6:,.0f}M | "
          f"{util:.0%} | {paper:.0%} |\n")
    w("\nSingle-processor columns reproduce Table 4 exactly (they calibrate\n")
    w("the model); HCC utilization tracks the paper's ordering — high on\n")
    w("Netflix/R2, mid on R1, lowest on MovieLens. **Holds.**\n\n")


def _fig8_section(w) -> None:
    r = fig8()
    w("## Figure 8 — partition-strategy phase breakdowns (20 epochs)\n\n")
    w("| dataset | workers | upgrade | paper reduction | measured |\n|---|---|---|---|---|\n")
    for (ds, n, strat), measured in sorted(r.extra["reductions"].items()):
        paper = PAPER_FIG8.get((ds, n, strat))
        paper_s = f"{paper:.1%}" if paper is not None else "(3-worker case not quoted)"
        w(f"| {ds} | {n} | -> {strat} | {paper_s} | {measured:.1%} |\n")
    w("\nDP1 balances computing and cuts the total vs DP0; DP2 cuts further\n")
    w("on R1* by hiding sync. **Holds** (within a few points of the paper's\n")
    w("12.2% / 10% / 12.1%).\n\n")


def _table5_section(w) -> None:
    r = table5()
    w("## Table 5 — communication time of 20 epochs\n\n")
    w("| backend | dataset | optimization | paper (s) | measured (s) | "
      "paper speedup | measured speedup |\n|---|---|---|---|---|---|---|\n")
    for backend, ds, opt, t, speed, paper_t, paper_speed in r.rows:
        w(f"| {backend} | {ds} | {opt} | {paper_t:.3f} | {t:.3f} | "
          f"{paper_speed:.1f}x | {speed:.1f}x |\n")
    w("\nQ-only speedup ordering (Netflix >> R2 > R1), FP16's further 2x, and\n")
    w("COMM's ~7x advantage over ps-lite COMM-P all reproduce. **Holds.**\n\n")


def _fig9_section(w) -> None:
    r = fig9()
    w("## Figure 9 — computing power vs system scale\n\n")
    w("| dataset | scale | total HCC power | total ideal |\n|---|---|---|---|\n")
    seen = set()
    for row in r.rows:
        key = (row[0], row[1])
        if key in seen:
            continue
        seen.add(key)
        w(f"| {row[0]} | {row[1]} | {row[5]/1e6:,.0f}M | {row[6]/1e6:,.0f}M |\n")
    w("\nPower rises with each worker on Netflix/R2; on the R1 family the\n")
    w("4th (time-shared) worker's extra sync cancels its capacity — which is\n")
    w("exactly why the paper's Figure 9(c) stops R1 at three workers.\n")
    w("Ordinary-worker efficiency on Netflix: ")
    eff = r.extra["worker_efficiency"]
    netflix = [f"{w_}={e:.0%}" for (ds, w_), e in eff.items() if ds == "Netflix"]
    w(", ".join(netflix))
    w(" (paper: >80% ordinary, >70% special). **Holds.**\n\n")


def _table6_section(w) -> None:
    r = table6()
    w("## Table 6 — the MovieLens-20m limitation\n\n")
    w("| config | worker | pull (s) | computing (s) | push (s) | cost (s) |\n"
      "|---|---|---|---|---|---|\n")
    for config, worker, pull, comp, push, cost in r.rows:
        w(f"| {config} | {worker} | {pull:.3f} | {comp:.3f} | {push:.3f} | {cost:.3f} |\n")
    single = r.extra["totals"]["single"]
    dual = r.extra["totals"]["dual"]
    w(f"\nAdding a second GPU: {single:.3f}s -> {dual:.3f}s "
      f"({1 - dual / single:.0%} saved; paper: 0.559 -> 0.449, 20%).\n")
    w("Communication does not shrink with workers, so a dataset whose\n")
    w("comm ~ compute (nnz/(m+n) ~ 74) cannot be accelerated much. **Holds.**\n\n")


def _ablations_section(w) -> None:
    from repro.experiments.ablations import ALL_ABLATIONS

    w("## Ablations and extensions (beyond the paper)\n\n")
    w("Design-choice sweeps with no direct paper counterpart; shapes are\n")
    w("asserted in `tests/test_experiments_ablations.py`.\n\n")
    for generator in ALL_ABLATIONS.values():
        r = generator()
        w("```\n")
        w(r.render())
        w("\n```\n\n")


#: section id -> writer, in report order
SECTIONS: dict[str, Callable] = {
    "fig3": _fig3_section,
    "table2": _table2_section,
    "fig5-6": _fig56_section,
    "fig7": _fig7_section,
    "table4": _table4_section,
    "fig8": _fig8_section,
    "table5": _table5_section,
    "fig9": _fig9_section,
    "table6": _table6_section,
}


def build_markdown_report(
    include_ablations: bool = True,
    fig7_kwargs: dict | None = None,
) -> str:
    """Regenerate the full paper-vs-measured report as markdown."""
    out = io.StringIO()
    w = out.write
    w("# EXPERIMENTS — paper vs. measured\n\n")
    w("Generated by `scripts/generate_experiments_md.py`; regenerate after\n")
    w("any calibration change.  *Measured* numbers come from this\n")
    w("reproduction's calibrated platform model (timing) and NumPy numeric\n")
    w("plane (convergence); the contract is **shape fidelity** — who wins,\n")
    w("by roughly what factor, where crossovers fall — not absolute seconds\n")
    w("(see DESIGN.md sections 2 and 6).\n\n")
    for name, section in SECTIONS.items():
        if name == "fig7":
            section(w, fig7_kwargs)
        else:
            section(w)
    if include_ablations:
        _ablations_section(w)
    return out.getvalue()
