"""Cross-checks: the simulated model against the paper's closed forms.

The cost model is implemented as machinery (queue simulations, pipeline
schedulers); the paper states several closed-form approximations.  This
module evaluates both on the same configurations and reports the gap —
a self-audit that the implementation actually realizes the equations it
claims to (and documents where it deliberately refines them).

Checks:

* **Eq. 2's comm/compute ratio** ``~ B_i (m+n) / (8 x_i nnz B_bus_i)``
  (section 3.4's order-of-magnitude argument) against the model's
  measured ratio under P&Q transmission;
* **Eq. 3's sync time** ``3·4·k·(m+n)/B_server`` against
  ``TimeCostModel.sync_time``;
* **Strategy 3's 1/streams law** against the pipeline scheduler;
* **Eq. 6 / Theorem 1** against the DP0 implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.comm import CommPlan
from repro.core.config import CommConfig, PartitionStrategy, TransmitMode
from repro.core.cost_model import TimeCostModel
from repro.core.partition import dp0
from repro.core.theorem import equalizing_partition
from repro.data.datasets import DatasetSpec, NETFLIX
from repro.experiments.tables import ExperimentResult
from repro.hardware.streams import pipeline_schedule, theoretical_exposed_comm
from repro.hardware.topology import Platform, paper_workstation


def crosscheck_model_vs_formulas(
    dataset: DatasetSpec = NETFLIX,
    k: int = 128,
    platform: Platform | None = None,
) -> ExperimentResult:
    """Evaluate every closed form against the implemented machinery."""
    platform = platform if platform is not None else paper_workstation(16)
    result = ExperimentResult(
        "crosscheck",
        f"Paper closed forms vs implemented machinery ({dataset.name}, k={k})",
        ["check", "closed_form", "model", "relative_gap"],
    )

    # --- Eq. 2: comm/compute ratio under unoptimized P&Q ---------------
    model = TimeCostModel(
        platform, dataset, k,
        CommConfig(transmit=TransmitMode.P_AND_Q),
    )
    plan = model.derive_partition(PartitionStrategy.DP1)
    gpu = platform.workers[-1]
    x = plan.fractions[-1]
    bus = platform.bus(gpu)
    # derived from Eq. 2: one-way comm / compute =
    #   [4k(m+n)/B_bus] / [x nnz (16k+4)/B_i] ~ B_i (m+n) / (4 x nnz B_bus)
    # (the paper quotes the same form with an 8 — "about", off by the
    # factor-2 slack its order-of-magnitude argument tolerates).
    # B_i here is the effective (cache-inclusive) bandwidth the update
    # rate implies.
    b_eff = gpu.update_rate(k, dataset, x, corun=True) * (16 * k + 4)
    closed = b_eff * (dataset.m + dataset.n) / (4 * x * dataset.nnz * bus.bandwidth_gbs * 1e9)
    measured = model.comm_compute_ratio(gpu, x) / 2.0  # one-way
    result.add_row(
        "Eq.2 comm/compute ratio (GPU, P&Q, one-way)",
        closed, measured, abs(closed - measured) / closed,
    )

    # --- Eq. 3: per-sync server time ------------------------------------
    pq_model = TimeCostModel(
        platform, dataset, k, CommConfig(transmit=TransmitMode.P_AND_Q)
    )
    b_server = platform.server.effective_bandwidth(1.0) * 1e9
    closed_sync = 3.0 * 4.0 * k * (dataset.m + dataset.n) / b_server
    result.add_row(
        "Eq.3 sync time (P&Q)",
        closed_sync, pq_model.sync_time(),
        abs(closed_sync - pq_model.sync_time()) / closed_sync,
    )

    # --- Strategy 3: exposed comm ~ (pull+push)/streams ------------------
    pull, compute, push, streams = 0.02, 0.4, 0.02, 4
    sched = pipeline_schedule(pull, compute, push, streams=streams)
    closed_exposed = theoretical_exposed_comm(pull, push, streams)
    result.add_row(
        "Strategy 3 exposed comm (compute-bound)",
        closed_exposed, sched.exposed_comm,
        abs(closed_exposed - sched.exposed_comm) / closed_exposed,
    )

    # --- Eq. 6 vs Theorem 1's equalizer (b = 0) --------------------------
    independent = [model.independent_time(w) for w in platform.workers]
    x_dp0 = np.asarray(dp0(independent).fractions)
    x_thm = equalizing_partition(independent, [0.0] * len(independent))
    result.add_row(
        "Eq.6 DP0 vs Theorem 1 equalizer",
        1.0, float(np.max(np.abs(x_dp0 - x_thm))) + 1.0,
        float(np.max(np.abs(x_dp0 - x_thm))),
    )

    result.add_note(
        "gaps stem from documented refinements: the model adds bus latency, "
        "partition-size bandwidth boosts and chunk quantization on top of "
        "the paper's order-of-magnitude forms"
    )
    return result


def wire_bytes_identity(dataset: DatasetSpec = NETFLIX, k: int = 128) -> dict[str, float]:
    """Byte-accounting identities across transmit modes (for tests).

    Returns the measured ratios the paper states in section 3.4:
    Q-only's reduction ``n/(m+n)`` and FP16's factor 2.
    """
    pq = CommPlan.for_dataset(dataset, k, CommConfig(transmit=TransmitMode.P_AND_Q))
    q = CommPlan.for_dataset(dataset, k, CommConfig(transmit=TransmitMode.Q_ONLY))
    half = CommPlan.for_dataset(
        dataset, k, CommConfig(transmit=TransmitMode.Q_ONLY, fp16=True)
    )
    return {
        "q_over_pq": q.epoch_pull / pq.epoch_pull,
        "paper_q_over_pq": min(dataset.m, dataset.n) / (dataset.m + dataset.n),
        "fp16_factor": q.epoch_pull / half.epoch_pull,
    }
