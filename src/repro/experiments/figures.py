"""Generators for every table and figure in the paper's evaluation.

Each function reruns the corresponding experiment on this reproduction's
platform model / numeric plane and returns an
:class:`~repro.experiments.tables.ExperimentResult`.  Paper-reported
values are attached as notes so ``render()`` output is self-contained;
EXPERIMENTS.md tabulates paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import (
    CommBackendKind,
    CommConfig,
    HCCConfig,
    PartitionStrategy,
    TransmitMode,
)
from repro.core.framework import HCCMF
from repro.core.metrics import speedup as speedup_of
from repro.data.datasets import (
    MOVIELENS_20M,
    NETFLIX,
    R1_STAR,
    YAHOO_R1,
    YAHOO_R2,
)
from repro.experiments.platforms import (
    build_combo,
    combo_price,
    overall_platform,
    single,
    workers_platform,
)
from repro.experiments.runners import dataset_config, run_hcc, single_processor_time
from repro.experiments.tables import ExperimentResult
from repro.hardware.calibration import table2_bandwidth
from repro.hardware.specs import PROCESSOR_CATALOG
from repro.hardware.streams import pipeline_schedule
from repro.hardware.timeline import Timeline
from repro.mf.cumf import CuMFSGD
from repro.mf.fpsgd import FPSGD


# ---------------------------------------------------------------------------
# Figure 3: motivation — platforms, collaborations, prices
# ---------------------------------------------------------------------------
def fig3a(epochs: int = 20, k: int = 128) -> ExperimentResult:
    """Figure 3(a): Netflix 20-epoch time across platform configurations."""
    result = ExperimentResult(
        "fig3a",
        "SGD-based MF training time on different platforms (Netflix, 20 epochs)",
        ["platform", "category", "time_s"],
    )
    for name in ("6242", "2080", "2080S", "V100"):
        cat = "CPU" if PROCESSOR_CATALOG[name].is_cpu else "GPU"
        result.add_row(name, cat, single_processor_time(name, NETFLIX, epochs, k))

    combos = [("6242", "2080"), ("6242", "2080S"), ("2080", "2080S")]
    for names in combos:
        platform, config = build_combo(list(names))
        res = run_hcc(platform, NETFLIX, replace(config, k=k, epochs=epochs))
        result.add_row("-".join(names), "Good collaboration", res.total_time)

    bad_variants = [
        ("6242-2080S(Bad communication)", dict(bad_comm=True)),
        ("6242-2080S(Unbalanced data)", dict(unbalanced=True)),
        ("6242-2080S(Bad threads conf)", dict(bad_threads=True)),
    ]
    for label, flags in bad_variants:
        platform, config = build_combo(["6242", "2080S"], **flags)
        res = run_hcc(platform, NETFLIX, replace(config, k=k, epochs=epochs))
        result.add_row(label, "Bad collaboration", res.total_time)

    result.add_note(
        "paper shape: every good collaboration beats its lone processors; "
        "each bad configuration erases the benefit (bucket effect / comm overhead)"
    )
    return result


def fig3b() -> ExperimentResult:
    """Figure 3(b): hardware platform prices."""
    result = ExperimentResult(
        "fig3b", "Hardware platform costs", ["platform", "price_usd"]
    )
    for name in ("6242", "2080", "2080S", "V100"):
        result.add_row(name, PROCESSOR_CATALOG[name].price_usd)
    for names in (["6242", "2080"], ["6242", "2080S"], ["2080", "2080S"]):
        result.add_row("-".join(names), combo_price(names))
    result.add_note(
        "paper shape: 6242-2080S reaches near-V100 performance at < 1/3 of its price"
    )
    return result


# ---------------------------------------------------------------------------
# Table 2: memory bandwidth, independent worker vs DP0 partition
# ---------------------------------------------------------------------------
def table2(k: int = 128) -> ExperimentResult:
    """Table 2: runtime memory bandwidth under IW and DP0 data partitions."""
    result = ExperimentResult(
        "table2",
        "Memory bandwidth (GB/s) of different data partitions",
        ["worker", "IW_model", "DP0_model", "IW_paper", "DP0_paper"],
    )
    platform = workers_platform(4)
    model = HCCMF(platform, NETFLIX, HCCConfig(k=k, partition=PartitionStrategy.DP0))
    plan = model.prepare()
    label = {"2080S#gpu0": "2080S", "6242-24T#cpu1": "6242", "2080#gpu1": "2080", "6242L#cpu0w": "6242L"}
    for proc, frac in zip(platform.workers, plan.fractions):
        name = label.get(proc.name, proc.name)
        result.add_row(
            name,
            proc.effective_bandwidth(1.0),
            proc.effective_bandwidth(frac),
            table2_bandwidth(name, "IW"),
            table2_bandwidth(name, "DP0"),
        )
    result.add_note(
        "paper shape: GPU bandwidth rises a few percent under DP0 (smaller "
        "working set), CPU bandwidth is nearly constant"
    )
    return result


# ---------------------------------------------------------------------------
# Figures 5 and 6: timing sequences
# ---------------------------------------------------------------------------
def fig5_timing_sequences(epochs_shown: int = 1, k: int = 128) -> ExperimentResult:
    """Figure 5: epoch timing under no optimization / DP1 / DP2."""
    result = ExperimentResult(
        "fig5",
        "Timing sequences of a training epoch (R1* shape)",
        ["configuration", "epoch_time_s", "exposed_sync_s"],
    )
    gantts: dict[str, str] = {}
    cases = [
        ("original (even partition, P&Q)", HCCConfig(
            k=k, partition=PartitionStrategy.EVEN,
            comm=CommConfig(transmit=TransmitMode.P_AND_Q),
        )),
        ("optimized, sync ignored (DP1)", HCCConfig(k=k, partition=PartitionStrategy.DP1)),
        ("optimized, sync hidden (DP2)", HCCConfig(k=k, partition=PartitionStrategy.DP2)),
    ]
    for label, config in cases:
        res = run_hcc(workers_platform(4), R1_STAR, config, epochs=epochs_shown)
        result.add_row(label, res.epoch_cost.total, res.epoch_cost.exposed_sync)
        gantts[label] = res.timeline.ascii_gantt()
    result.extra["gantt"] = gantts
    result.add_note(
        "paper shape: DP1 aligns worker finish times; DP2 staggers them so "
        "each sync hides under the next worker's compute"
    )
    return result


def fig6_async_pipeline(streams: int = 4) -> ExperimentResult:
    """Figure 6: asynchronous computing-transmission pipelines."""
    result = ExperimentResult(
        "fig6",
        "Async computing-transmission: exposed communication vs streams",
        ["streams", "epoch_time_s", "exposed_comm_s", "hidden_fraction"],
    )
    # a representative GPU worker epoch on R1's shape: comm-heavy
    model = HCCMF(workers_platform(4), YAHOO_R1, HCCConfig(k=128)).cost_model
    gpu = model.platform.workers[0]
    pull, push = model.pull_time(gpu), model.push_time(gpu)
    compute = model.compute_time(gpu, 0.4)
    gantts: dict[int, str] = {}
    for s in range(1, streams + 1):
        res = pipeline_schedule(pull, compute, push, streams=s, copy_engines=2, worker=gpu.name)
        result.add_row(s, res.epoch_time, res.exposed_comm, res.hidden_fraction)
        tl = Timeline()
        tl.extend(res.spans)
        gantts[s] = tl.ascii_gantt()
    result.extra["gantt"] = gantts
    result.add_note("paper shape: exposed transfer shrinks toward 1/streams of the serial cost")
    return result


# ---------------------------------------------------------------------------
# Figure 7: convergence rate and training speed vs FPSGD / CuMF_SGD
# ---------------------------------------------------------------------------
_FIG7_PAPER_SPEEDUPS = {
    # dataset -> (vs CuMF_SGD, vs FPSGD)
    "Netflix": (2.3, 5.75),
    "R1": (1.43, 6.96),
    "R2": (2.9, 3.13),
}


def fig7(
    max_nnz: int = 40_000,
    epochs: int = 30,
    k: int = 16,
    seed: int = 7,
) -> ExperimentResult:
    """Figure 7: RMSE-vs-epoch curves and simulated training-speed ratios.

    The numeric plane runs scaled datasets (same shape statistics) so
    convergence-per-epoch is directly comparable across HCC / FPSGD /
    CuMF_SGD; the time axis comes from the calibrated full-scale model,
    yielding the speedup factors of Figure 7(d-f).
    """
    result = ExperimentResult(
        "fig7",
        "Convergence and training speed: HCC vs FPSGD vs CuMF_SGD",
        [
            "dataset", "method", "final_rmse", "epoch_time_ms",
            "speedup_vs", "paper_speedup",
        ],
    )
    curves: dict[str, dict[str, dict[str, list[float]]]] = {}
    for spec in (NETFLIX, YAHOO_R1, YAHOO_R2):
        small = spec.scaled(max_nnz)
        # Yahoo R1's 0-100 rating scale needs a smaller step at small k
        lr = 0.002 if spec.name == "R1" else 0.01
        ratings = small.generate(seed=seed)

        # numeric plane at small k for convergence; timing plane at the
        # paper's k=128 so the time axis is comparable with the baselines
        cfg = dataset_config(spec, k=k, epochs=epochs)
        cfg = replace(cfg, learning_rate=lr, seed=seed)
        hcc = run_hcc(overall_platform(), spec, cfg, ratings=ratings)
        timing = run_hcc(overall_platform(), spec, dataset_config(spec, k=128, epochs=epochs))
        hcc_epoch = timing.total_time / epochs

        fp = FPSGD(k=k, threads=4, lr=lr, reg=small.reg, seed=seed)
        fp.fit(ratings, epochs=epochs)
        fp_epoch = single_processor_time("6242", spec, epochs=1, k=128, threads=24)

        cu = CuMFSGD(k=k, gpu_threads=4096, lr=lr, reg=small.reg, seed=seed)
        cu.fit(ratings, epochs=epochs)
        cu_epoch = single_processor_time("2080S", spec, epochs=1, k=128)

        curves[spec.name] = {
            "HCC": {"rmse": hcc.rmse_history, "time": timing.time_axis()},
            "FPSGD": {
                "rmse": fp.history.rmse,
                "time": [fp_epoch * (i + 1) for i in range(epochs)],
            },
            "cuMF_SGD": {
                "rmse": cu.history.rmse,
                "time": [cu_epoch * (i + 1) for i in range(epochs)],
            },
        }
        paper_cu, paper_fp = _FIG7_PAPER_SPEEDUPS[spec.name]
        result.add_row(spec.name, "HCC", hcc.final_rmse, hcc_epoch * 1e3, 1.0, 1.0)
        result.add_row(
            spec.name, "cuMF_SGD", cu.history.final_rmse, cu_epoch * 1e3,
            speedup_of(cu_epoch, hcc_epoch), paper_cu,
        )
        result.add_row(
            spec.name, "FPSGD", fp.history.final_rmse, fp_epoch * 1e3,
            speedup_of(fp_epoch, hcc_epoch), paper_fp,
        )
    result.extra["curves"] = curves
    result.add_note(
        "speedup_vs = single-processor epoch time / HCC epoch time "
        "(equal-convergence-per-epoch, the paper's Figure 7d-f framing)"
    )
    return result


# ---------------------------------------------------------------------------
# Table 4: computing power and utilization
# ---------------------------------------------------------------------------
_TABLE4_PAPER_UTIL = {"Netflix": 0.86, "R1": 0.62, "R2": 0.88, "MovieLens-20m": 0.46}


def table4(epochs: int = 20, k: int = 128) -> ExperimentResult:
    """Table 4: per-processor computing power, ideal vs HCC, utilization."""
    result = ExperimentResult(
        "table4",
        "Computing power of 20-epoch training (updates/s)",
        [
            "dataset", "6242-24T", "6242-16T", "2080", "2080S",
            "Ideal", "HCC", "utilization", "paper_util",
        ],
    )
    platform = overall_platform()
    for spec in (NETFLIX, YAHOO_R1, YAHOO_R2, MOVIELENS_20M):
        rates = {}
        for label, name, threads in (
            ("6242-24T", "6242", 24),
            ("6242-16T", "6242", 16),
            ("2080", "2080", None),
            ("2080S", "2080S", None),
        ):
            rates[label] = spec.nnz / single_processor_time(name, spec, 1, k, threads)
        res = run_hcc(platform, spec, dataset_config(spec, k=k, epochs=epochs))
        # Table 4's "Ideal" column always sums the four processors'
        # independent powers, even when the active configuration (e.g.
        # R1's async streams) drops the time-shared special worker
        ideal = sum(rates.values())
        result.add_row(
            spec.name,
            rates["6242-24T"], rates["6242-16T"], rates["2080"], rates["2080S"],
            ideal, res.power, res.power / ideal,
            _TABLE4_PAPER_UTIL[spec.name],
        )
    result.add_note(
        "paper shape: >85% utilization on Netflix/R2, ~62% on R1, "
        "~46% on MovieLens (comm-bound, section 4.6)"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 8: data-partition strategy phase breakdowns
# ---------------------------------------------------------------------------
def fig8(epochs: int = 20, k: int = 128) -> ExperimentResult:
    """Figure 8: cumulative pull/computing/push per worker, DP0/DP1/DP2."""
    result = ExperimentResult(
        "fig8",
        "Time statistics of 20 epochs under different partition strategies",
        [
            "dataset", "workers", "strategy", "worker",
            "pull_s", "computing_s", "push_s", "total_s",
        ],
    )
    cases = [
        (NETFLIX, ("dp0", "dp1")),
        (YAHOO_R2, ("dp0", "dp1")),
        (R1_STAR, ("dp1", "dp2")),
    ]
    reductions: dict[tuple[str, int, str], float] = {}
    for spec, strategies in cases:
        for n_workers in (3, 4):
            totals = {}
            for strat in strategies:
                config = HCCConfig(k=k, epochs=epochs, partition=PartitionStrategy(strat))
                res = run_hcc(workers_platform(n_workers), spec, config)
                totals[strat] = epochs * res.epoch_cost.total
                for wname, phases in res.phase_totals.items():
                    result.add_row(
                        spec.name, n_workers, strat, wname,
                        phases["pull"], phases["computing"], phases["push"],
                        phases["total"],
                    )
            a, b = strategies
            reductions[(spec.name, n_workers, b)] = 1.0 - totals[b] / totals[a]
    result.extra["reductions"] = reductions
    result.add_note(
        "paper shape: DP1 cuts ~12.2% (Netflix) / ~10% (R2) vs DP0; "
        "DP2 cuts ~12.1% vs DP1 on R1*-4workers"
    )
    return result


# ---------------------------------------------------------------------------
# Table 5: communication time under the optimization strategies
# ---------------------------------------------------------------------------
_TABLE5_PAPER = {
    # (backend, dataset, optimization) -> seconds
    ("COMM", "Netflix", "P&Q"): 3.289744, ("COMM", "Netflix", "Q"): 0.180084684,
    ("COMM", "Netflix", "half-Q"): 0.056680425,
    ("COMM", "R1", "P&Q"): 19.569929, ("COMM", "R1", "Q"): 6.729931,
    ("COMM", "R1", "half-Q"): 2.04014235,
    ("COMM", "R2", "P&Q"): 7.0763885, ("COMM", "R2", "Q"): 0.9467911,
    ("COMM", "R2", "half-Q"): 0.31296455,
    ("COMM-P", "Netflix", "P&Q"): 21.8169325, ("COMM-P", "Netflix", "Q"): 1.461305316,
    ("COMM-P", "Netflix", "half-Q"): 0.53061025,
    ("COMM-P", "R1", "P&Q"): 140.821585, ("COMM-P", "R1", "Q"): 50.57931,
    ("COMM-P", "R1", "half-Q"): 24.5123435,
    ("COMM-P", "R2", "P&Q"): 51.00871, ("COMM-P", "R2", "Q"): 7.190965,
    ("COMM-P", "R2", "half-Q"): 4.039398,
}


def table5(epochs: int = 20, k: int = 128) -> ExperimentResult:
    """Table 5: 20-epoch communication time, COMM vs COMM-P x strategies."""
    result = ExperimentResult(
        "table5",
        "The communication time of 20 epochs",
        ["backend", "dataset", "optimization", "cost_time_s", "speedup", "paper_s", "paper_speedup"],
    )
    modes = [
        ("P&Q", TransmitMode.P_AND_Q, False),
        ("Q", TransmitMode.Q_ONLY, False),
        ("half-Q", TransmitMode.Q_ONLY, True),
    ]
    for backend_label, backend in (("COMM", CommBackendKind.COMM), ("COMM-P", CommBackendKind.COMM_P)):
        for spec in (NETFLIX, YAHOO_R1, YAHOO_R2):
            base_time = None
            paper_base = _TABLE5_PAPER[(backend_label, spec.name, "P&Q")]
            for label, tm, fp16 in modes:
                config = HCCConfig(
                    k=k, epochs=epochs,
                    comm=CommConfig(transmit=tm, fp16=fp16, backend=backend),
                )
                res = run_hcc(workers_platform(4), spec, config)
                comm_time = res.comm_time
                if base_time is None:
                    base_time = comm_time
                paper_t = _TABLE5_PAPER[(backend_label, spec.name, label)]
                result.add_row(
                    backend_label, spec.name, label, comm_time,
                    base_time / comm_time, paper_t, paper_base / paper_t,
                )
    result.add_note(
        "paper shape: Q-only speedup ~18x Netflix / ~2.9x R1 / ~7.5x R2; "
        "FP16 >= 2x more; COMM ~7x faster than ps-lite COMM-P"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9: computing power vs system scale
# ---------------------------------------------------------------------------
def fig9(epochs: int = 20, k: int = 128) -> ExperimentResult:
    """Figure 9: stacked computing power as workers join, HCC vs Ideal."""
    result = ExperimentResult(
        "fig9",
        "Computing power after adding heterogeneous processors in turn",
        ["dataset", "scale", "worker", "hcc_power", "ideal_power", "hcc_total", "ideal_total"],
    )
    efficiencies: dict[tuple[str, str], float] = {}
    for spec in (NETFLIX, YAHOO_R2, YAHOO_R1, R1_STAR):
        # Figure 9(c) stops at 3 workers for R1: the 4th (time-shared)
        # worker's extra sync outweighs its capacity on that dataset
        max_workers = 3 if spec.name == "R1" else 4
        for n in range(1, max_workers + 1):
            platform = workers_platform(n)
            # one consistent configuration across scales, so each added
            # worker's contribution is directly comparable
            config = HCCConfig(k=k, epochs=epochs)
            res = run_hcc(platform, spec, config)
            ideal_each = {
                w.name: (w.with_time_share(1.0) if w.time_share < 1 else w).update_rate(
                    k, spec, 1.0
                )
                for w in platform.workers
            }
            for wname, power in res.worker_powers.items():
                result.add_row(
                    spec.name, n, wname, power, ideal_each[wname],
                    res.power, res.ideal_power,
                )
                if n == max_workers:
                    efficiencies[(spec.name, wname)] = power / ideal_each[wname]
    result.extra["worker_efficiency"] = efficiencies
    result.add_note(
        "paper shape: power rises monotonically with workers; ordinary "
        "workers contribute >80% of their own power on Netflix/R2, ~45% on "
        "R1/R1*; the time-shared special worker >70%"
    )
    return result


# ---------------------------------------------------------------------------
# Table 6: the MovieLens-20m limitation
# ---------------------------------------------------------------------------
def table6(epochs: int = 20, k: int = 128) -> ExperimentResult:
    """Table 6: adding a GPU barely helps when comm ~ compute."""
    result = ExperimentResult(
        "table6",
        "Limitation shown with MovieLens-20m (20-epoch phase times)",
        ["config", "worker", "pull_s", "computing_s", "push_s", "cost_s"],
    )
    single_gpu, cfg1 = build_combo(["2080S"])
    res1 = run_hcc(single_gpu, MOVIELENS_20M, replace(cfg1, k=k, epochs=epochs))
    for wname, ph in res1.phase_totals.items():
        result.add_row("HCC 2080S", wname, ph["pull"], ph["computing"], ph["push"], res1.total_time)

    dual_gpu, cfg2 = build_combo(["2080S", "2080"])
    res2 = run_hcc(dual_gpu, MOVIELENS_20M, replace(cfg2, k=k, epochs=epochs))
    for wname, ph in res2.phase_totals.items():
        result.add_row("HCC 2080S-2080", wname, ph["pull"], ph["computing"], ph["push"], res2.total_time)

    cumf_compute = single_processor_time("2080S", MOVIELENS_20M, epochs, k)
    # CuMF_SGD moves the feature matrices on/off the GPU once per run
    model = HCCMF(single_gpu, MOVIELENS_20M, HCCConfig(k=k)).cost_model
    gpu = single_gpu.workers[0]
    once = model.pull_time(gpu) + model.push_time(gpu)
    result.add_row("CuMF_SGD 2080S", gpu.name, once / 2, cumf_compute, once / 2, cumf_compute + once)

    result.extra["totals"] = {"single": res1.total_time, "dual": res2.total_time}
    result.add_note(
        "paper shape: 0.559s -> 0.449s only (communication does not shrink "
        "with more workers; nnz/(m+n) ~ 74 << 1e3, section 3.4's bound)"
    )
    return result


#: experiment id -> generator, for harness iteration
ALL_EXPERIMENTS = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "table2": table2,
    "fig5": fig5_timing_sequences,
    "fig6": fig6_async_pipeline,
    "fig7": fig7,
    "table4": table4,
    "fig8": fig8,
    "table5": table5,
    "fig9": fig9,
    "table6": table6,
}
