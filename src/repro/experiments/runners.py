"""Shared experiment-running helpers."""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import CommConfig, HCCConfig
from repro.core.framework import HCCMF, TrainResult
from repro.data.datasets import DatasetSpec
from repro.data.ratings import RatingMatrix
from repro.hardware.specs import PROCESSOR_CATALOG
from repro.hardware.topology import Platform


def dataset_config(spec: DatasetSpec, k: int = 128, epochs: int = 20) -> HCCConfig:
    """The per-dataset HCC-MF configuration the paper's evaluation used.

    The comm-heavy R1 family gets the full strategy stack — Strategy 2
    (FP16 wire) and Strategy 3 (asynchronous computing-transmission; the
    paper attributes R1's slightly lossy training to exactly this).  The
    other datasets run the plain pipeline with the time-shared special
    worker.
    """
    heavy = spec.name.split("@")[0] in ("R1", "R1*")
    comm = CommConfig(streams=4, fp16=True) if heavy else CommConfig()
    return HCCConfig(k=k, epochs=epochs, comm=comm)


def run_hcc(
    platform: Platform,
    spec: DatasetSpec,
    config: HCCConfig | None = None,
    ratings: RatingMatrix | None = None,
    epochs: int | None = None,
) -> TrainResult:
    """Prepare and train one HCC-MF run."""
    cfg = config if config is not None else dataset_config(spec)
    if epochs is not None:
        cfg = replace(cfg, epochs=epochs)
    return HCCMF(platform, spec, cfg, ratings=ratings).train()


def single_processor_time(
    name: str,
    spec: DatasetSpec,
    epochs: int = 20,
    k: int = 128,
    threads: int | None = None,
) -> float:
    """Modeled time for one processor to train alone (Figure 3a bars).

    Independent training has no pull/push/sync: it is pure compute at
    the processor's Table 4 rate.
    """
    from repro.hardware.processor import Processor

    proc = Processor(PROCESSOR_CATALOG[name], threads=threads)
    return proc.compute_time(spec.nnz * epochs, k, spec, partition_frac=1.0, corun=False)
