"""Calibration-sensitivity analysis: how fragile is the reproduction?

DESIGN.md §5 fits a handful of constants to the paper's measurements
(the CPU co-run factor, COMM-P's slowdown, the GPU partition boost, the
special worker's duty cycle).  A reproduction whose headline results
only hold at exactly the fitted values would be suspect; this study
perturbs each knob by ±10–20% and re-measures the headline metrics —
Netflix utilization, the DP1-vs-DP0 reduction, and the Q-only
communication speedup — to show the *shapes* survive.

Knobs are module-level constants, perturbed through the
:func:`perturbed` context manager (which restores them afterwards, so
the study is side-effect-free).
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager

from repro.core.config import (
    CommBackendKind,
    CommConfig,
    HCCConfig,
    PartitionStrategy,
    TransmitMode,
)
from repro.data.datasets import NETFLIX, DatasetSpec
from repro.experiments.runners import run_hcc
from repro.experiments.tables import ExperimentResult
from repro.hardware.topology import paper_workstation

#: knob id -> (module path, attribute)
KNOBS: dict[str, tuple[str, str]] = {
    "cpu-corun-factor": ("repro.hardware.processor", "CPU_CORUN_FACTOR"),
    "comm-p-slowdown": ("repro.core.comm", "COMM_P_BANDWIDTH_FACTOR"),
    "oversubscription-penalty": ("repro.hardware.processor", "OVERSUBSCRIPTION_PENALTY"),
}


@contextmanager
def perturbed(knob: str, multiplier: float):
    """Temporarily scale one calibration constant."""
    if knob not in KNOBS:
        raise KeyError(f"unknown knob {knob!r}; known: {sorted(KNOBS)}")
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    module_path, attr = KNOBS[knob]
    module = importlib.import_module(module_path)
    original = getattr(module, attr)
    setattr(module, attr, original * multiplier)
    try:
        yield original * multiplier
    finally:
        setattr(module, attr, original)


# ---------------------------------------------------------------------------
# headline metrics (cheap: timing plane only)
# ---------------------------------------------------------------------------
def _utilization(dataset: DatasetSpec = NETFLIX) -> float:
    res = run_hcc(paper_workstation(16), dataset, HCCConfig(k=128, epochs=20))
    return res.utilization


def _dp1_reduction(dataset: DatasetSpec = NETFLIX) -> float:
    totals = {}
    for strat in ("dp0", "dp1"):
        cfg = HCCConfig(k=128, epochs=20, partition=PartitionStrategy(strat))
        res = run_hcc(paper_workstation(10), dataset, cfg)
        totals[strat] = res.epochs * res.epoch_cost.total
    return 1.0 - totals["dp1"] / totals["dp0"]


def _q_only_speedup(dataset: DatasetSpec = NETFLIX) -> float:
    times = {}
    for label, mode in (("pq", TransmitMode.P_AND_Q), ("q", TransmitMode.Q_ONLY)):
        cfg = HCCConfig(k=128, epochs=20, comm=CommConfig(transmit=mode))
        times[label] = run_hcc(paper_workstation(16), dataset, cfg).comm_time
    return times["pq"] / times["q"]


def _comm_p_ratio(dataset: DatasetSpec = NETFLIX) -> float:
    times = {}
    for label, backend in (("comm", CommBackendKind.COMM), ("comm-p", CommBackendKind.COMM_P)):
        cfg = HCCConfig(
            k=128, epochs=20,
            comm=CommConfig(transmit=TransmitMode.P_AND_Q, backend=backend),
        )
        times[label] = run_hcc(paper_workstation(16), dataset, cfg).comm_time
    return times["comm-p"] / times["comm"]


METRICS = {
    "netflix-utilization": _utilization,
    "dp1-reduction": _dp1_reduction,
    "q-only-speedup": _q_only_speedup,
    "comm-p-ratio": _comm_p_ratio,
}


def sensitivity_study(
    multipliers: tuple[float, ...] = (0.8, 0.9, 1.0, 1.1, 1.2),
) -> ExperimentResult:
    """Perturb each knob and re-measure every headline metric."""
    if 1.0 not in multipliers:
        raise ValueError("include 1.0 so the baseline row exists")
    result = ExperimentResult(
        "sensitivity",
        "Calibration sensitivity of the headline reproduction metrics",
        ["knob", "multiplier", *METRICS.keys()],
    )
    for knob in KNOBS:
        for mult in multipliers:
            with perturbed(knob, mult):
                values = [fn() for fn in METRICS.values()]
            result.add_row(knob, mult, *values)
    result.add_note(
        "the reproduction's contract is shape fidelity: within +-20% of "
        "every fitted constant, utilization stays high on Netflix, DP1 "
        "keeps beating DP0, and the comm speedups keep their order"
    )
    return result
