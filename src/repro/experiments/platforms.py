"""Canonical platform configurations used across the experiments.

The paper uses three families of configurations (section 4.1):

* the **overall-performance** testbed — CPU_0 at 16 threads plus the
  special worker, CPU_1 at 24 threads, both GPUs;
* the **heterogeneity** testbed — same but CPU_0 throttled to 10
  threads ("to increase the heterogeneity between CPU_0 and CPU_1");
* **single processors and ad-hoc combos** for Figure 3's motivation
  experiments, including the deliberately misconfigured variants.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import CommBackendKind, CommConfig, HCCConfig, PartitionStrategy, TransmitMode
from repro.hardware.processor import Processor
from repro.hardware.specs import (
    PCIE3_X16,
    PROCESSOR_CATALOG,
    SHARED_MEMORY,
    UPI,
)
from repro.hardware.topology import Platform, paper_workstation, single_processor


def overall_platform() -> Platform:
    """Section 4.1's peak configuration (CPU_0 at 16 threads)."""
    return paper_workstation(cpu0_threads=16)


def hetero_platform(include_special_worker: bool = True) -> Platform:
    """Section 4.1's heterogeneity configuration (CPU_0 at 10 threads)."""
    return paper_workstation(
        cpu0_threads=10, include_special_worker=include_special_worker
    )


def workers_platform(n_workers: int) -> Platform:
    """The paper's 3-worker / 4-worker configurations (Figures 8, 9).

    Workers join in Figure 9's stacking order: 2080S, 6242 (CPU_1, 24T),
    2080, and finally the time-shared 10-thread special worker "6242L".
    """
    if not (1 <= n_workers <= 4):
        raise ValueError("the paper's testbed supports 1..4 workers")
    include_special = n_workers >= 4
    server = Processor(PROCESSOR_CATALOG["6242"], threads=10, instance="cpu0")
    platform = Platform(server=server)
    order = [
        (PROCESSOR_CATALOG["2080S"], None, PCIE3_X16, "gpu0", 1.0),
        (PROCESSOR_CATALOG["6242"], 24, UPI, "cpu1", 1.0),
        (PROCESSOR_CATALOG["2080"], None, PCIE3_X16, "gpu1", 1.0),
        (PROCESSOR_CATALOG["6242L"], 10, SHARED_MEMORY, "cpu0w", 0.85),
    ]
    for spec, threads, bus, inst, share in order[:n_workers]:
        platform.add_worker(
            Processor(spec, threads=threads, instance=inst, time_share=share), bus
        )
    if not include_special:
        pass
    return platform


def single(name: str, threads: int | None = None) -> Platform:
    """A lone processor running the whole workload (Figure 3a bars 1-4)."""
    try:
        spec = PROCESSOR_CATALOG[name]
    except KeyError as exc:
        raise KeyError(f"unknown processor {name!r}; known: {sorted(PROCESSOR_CATALOG)}") from exc
    return single_processor(spec, threads=threads)


def build_combo(
    names: list[str],
    bad_comm: bool = False,
    unbalanced: bool = False,
    bad_threads: bool = False,
) -> tuple[Platform, HCCConfig]:
    """A Figure 3 collaboration: processors named like '6242', '2080S'.

    A named CPU becomes the time-shared server CPU (it must host the
    parameter server anyway); GPUs attach over PCI-E.  When no CPU is
    named (e.g. the 2080-2080S combo), a host 6242 manages but does not
    compute.  The ``bad_*`` flags produce the paper's "Bad
    collaboration" bars: ps-lite messaging with full P&Q traffic, an
    even (heterogeneity-blind) partition, or an oversubscribed CPU.
    """
    if not names:
        raise ValueError("need at least one processor name")
    cpus = [n for n in names if PROCESSOR_CATALOG[n].is_cpu]
    gpus = [n for n in names if PROCESSOR_CATALOG[n].is_gpu]

    # Figure 3a "Bad threads conf": the thread configuration thrashes at
    # runtime (oversubscription with the server/OS threads), while the
    # partition was derived from clean independent measurements — the
    # mismatch is what makes the collaboration bad.
    cpu_runtime_penalty = 0.45 if bad_threads else 1.0

    server_spec = PROCESSOR_CATALOG[cpus[0]] if cpus else PROCESSOR_CATALOG["6242"]
    server = Processor(server_spec, threads=16, instance="cpu0")
    platform = Platform(server=server)

    for i, name in enumerate(cpus):
        if i == 0:
            platform.add_worker(
                Processor(
                    PROCESSOR_CATALOG[name],
                    threads=16,
                    instance="cpu0w",
                    time_share=0.85,
                    runtime_penalty=cpu_runtime_penalty,
                ),
                SHARED_MEMORY,
            )
        else:
            platform.add_worker(
                Processor(
                    PROCESSOR_CATALOG[name],
                    threads=24,
                    instance=f"cpu{i}",
                    runtime_penalty=cpu_runtime_penalty,
                ),
                UPI,
            )
    for i, name in enumerate(gpus):
        platform.add_worker(
            Processor(PROCESSOR_CATALOG[name], instance=f"gpu{i}"), PCIE3_X16
        )

    config = HCCConfig(k=128, epochs=20)
    if bad_comm:
        config = replace(
            config,
            comm=CommConfig(transmit=TransmitMode.P_AND_Q, backend=CommBackendKind.COMM_P),
        )
    if unbalanced:
        config = replace(config, partition=PartitionStrategy.EVEN)
    if bad_threads:
        # a "random configuration" does not re-measure at runtime, so the
        # compensation loop (DP1) never sees the thrashing — stay on DP0
        config = replace(config, partition=PartitionStrategy.DP0)
    return platform, config


def combo_price(names: list[str]) -> float:
    """Figure 3(b)'s price of a combo: sum of the named processors."""
    return sum(PROCESSOR_CATALOG[n].price_usd for n in names)
