"""Energy analysis of training runs: price + power economics.

Extends Figure 3's "more economical" argument with operating cost: a
cheaper platform that draws more watt-hours per training run may lose
over its lifetime.  :func:`energy_of` prices one
:class:`~repro.core.framework.TrainResult`;
:func:`compare_platform_energy` reruns Figure 3(a)'s platform survey
with joules and joules-per-million-updates columns.
"""

from __future__ import annotations

from repro.core.config import HCCConfig
from repro.core.framework import HCCMF, TrainResult
from repro.data.datasets import DatasetSpec, NETFLIX
from repro.experiments.platforms import build_combo, combo_price
from repro.experiments.runners import single_processor_time
from repro.experiments.tables import ExperimentResult
from repro.hardware.energy import EnergyReport, run_energy
from repro.hardware.processor import Processor
from repro.hardware.specs import PROCESSOR_CATALOG
from repro.hardware.topology import Platform


def energy_of(result: TrainResult, platform: Platform) -> EnergyReport:
    """Energy accounting for a finished (timing-plane) run.

    Worker busy time = its per-epoch compute + transfer work times the
    epoch count; the server is busy for the cumulative sync time.
    """
    busy = {
        name: phases["computing"] + phases["pull"] + phases["push"]
        for name, phases in result.phase_totals.items()
    }
    return run_energy(
        platform,
        busy,
        total_seconds=result.total_time,
        updates=result.dataset.nnz * result.epochs,
        server_busy_seconds=result.sync_time_total,
    )


def compare_platform_energy(
    dataset: DatasetSpec = NETFLIX,
    epochs: int = 20,
    k: int = 128,
) -> ExperimentResult:
    """Figure 3 revisited with energy columns.

    Single processors run compute-only (their busy time is the whole
    run); collaborations run the full HCC-MF pipeline.
    """
    result = ExperimentResult(
        "energy",
        f"Time, price and energy per training run ({dataset.name}, {epochs} epochs)",
        ["platform", "time_s", "price_usd", "joules", "J_per_Mupdate"],
    )
    for name in ("6242", "2080", "2080S", "V100"):
        t = single_processor_time(name, dataset, epochs, k)
        proc = Processor(PROCESSOR_CATALOG[name])
        joules = proc.spec.tdp_watts * t  # busy the whole run
        result.add_row(
            name, t, PROCESSOR_CATALOG[name].price_usd, joules,
            joules / (dataset.nnz * epochs / 1e6),
        )
    for names in (["6242", "2080"], ["6242", "2080S"], ["2080", "2080S"]):
        platform, config = build_combo(list(names))
        res = HCCMF(platform, dataset, HCCConfig(k=k, epochs=epochs, comm=config.comm)).train()
        report = energy_of(res, platform)
        result.add_row(
            # price by Figure 3(b)'s convention: only the named processors
            "-".join(names), res.total_time, combo_price(list(names)),
            report.total_joules, report.joules_per_mupdate,
        )
    result.add_note(
        "collaborations finish sooner but light up more silicon; "
        "J/Mupdate shows whether the trade nets out"
    )
    return result
