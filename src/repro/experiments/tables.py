"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not headers:
        raise ValueError("headers required")
    str_rows = [[_fmt(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    ``rows`` hold the data series the paper plots/tabulates; ``notes``
    carry per-experiment commentary (paper values, deviations);
    ``extra`` stashes auxiliary artifacts (e.g. Gantt strings, raw
    TrainResults) for examples and tests.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, header: str) -> list[Any]:
        """One column of the result table, by header name."""
        try:
            idx = self.headers.index(header)
        except ValueError as exc:
            raise KeyError(f"no column {header!r}; have {self.headers}") from exc
        return [row[idx] for row in self.rows]

    def row_map(self, key_header: str | None = None) -> dict[Any, list[Any]]:
        """Rows keyed by their first (or named) column."""
        idx = 0 if key_header is None else self.headers.index(key_header)
        return {row[idx]: row for row in self.rows}

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text
