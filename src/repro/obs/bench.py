"""The pinned perf suite behind ``repro bench`` (the perf-trajectory plane).

"Faster" is only a claim until two runs can be compared mechanically.
This module pins a small benchmark suite over the repo's hot surfaces —

* **kernel** — SGD updates/sec for the numeric substrate: the
  vectorized kernel under both :class:`~repro.mf.kernels.ConflictPolicy`
  flavours, plus the FPSGD / DSGD / NOMAD variant trainers;
* **epoch** — end-to-end epoch seconds through the
  :class:`~repro.engine.pipeline.EpochEngine` on *both* planes
  (:class:`~repro.engine.backends.SimBackend` and the process plane via
  :class:`~repro.parallel.executor.SharedMemoryTrainer`);
* **wire** — bytes/sec through each channel stack's encode/decode codec
  (Q-only, FP16 wire, double-buffered transport)

— and emits one schema-versioned ``BENCH_train.json``
(:mod:`repro.obs.schema`) carrying a host fingerprint, per-metric
repeats with mean/stdev/min, and provenance (git SHA, UTC timestamp,
config).  :func:`compare_docs` diffs two such documents into per-metric
deltas with noise-aware verdicts, so a perf PR can state "moved metric
X by Y%" — and CI can fail on a regression — without anyone eyeballing
numbers.

All durations are measured with ``time.perf_counter()`` (HCC110:
timing code never reads the wall clock); the one wall-clock value in
the document is the provenance *timestamp*, which is a date, not a
duration.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench

#: the pinned *training* suite sections, in emission order.  The suite
#: registry itself is extensible — see :func:`register_suite` — and the
#: serving plane registers a fourth section ("serving") on import, so
#: ``repro bench --suites serving`` works through the same machinery.
SUITES = ("kernel", "epoch", "wire")

#: CLI exit code for "--compare found a regression" — distinct from 0
#: (clean) and 2 (usage/validation errors) so CI can branch on it
EXIT_REGRESSION = 3


class BenchValidationError(ValueError):
    """A bench document failed schema validation; lists every problem."""

    def __init__(self, path: str, problems: Sequence[str]):
        self.path = path
        self.problems = tuple(problems)
        joined = "\n  ".join(problems)
        super().__init__(f"invalid bench document {path}:\n  {joined}")


# ---------------------------------------------------------------------------
# configuration + host fingerprint
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BenchConfig:
    """Workload knobs for one suite run — recorded as provenance.

    The defaults are the *pinned* full suite; :meth:`quick` is the CI
    smoke variant (tiny nnz, one repeat) whose numbers are only good
    for schema/plumbing checks, never for cross-PR comparison (the
    ``quick`` provenance flag says which kind a document is).
    """

    nnz: int = 20_000
    epochs: int = 2
    k: int = 16
    workers: int = 2
    repeats: int = 3
    batch_size: int = 4096
    seed: int = 0
    quick: bool = False

    def __post_init__(self) -> None:
        for field_name in ("nnz", "epochs", "k", "workers", "repeats",
                           "batch_size"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @classmethod
    def quick_config(cls, **overrides) -> "BenchConfig":
        base = dict(nnz=2_000, epochs=2, k=8, workers=2, repeats=1,
                    quick=True)
        base.update(overrides)
        return cls(**base)


def host_fingerprint() -> dict:
    """Where the numbers came from: CPU count, python, numpy/BLAS.

    A bench document is only comparable to another from an equivalent
    host; ``--compare`` prints both fingerprints when they differ.
    """
    try:
        blas = _blas_name()
    except Exception:  # pragma: no cover - numpy internals vary
        blas = "unknown"
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "numpy": np.__version__,
        "blas": blas,
    }


def _blas_name() -> str:
    cfg = getattr(np, "__config__", None)
    if cfg is None:
        return "unknown"
    # numpy >= 1.25 exposes the build config as dicts
    show = getattr(np, "show_config", None)
    try:
        info = show(mode="dicts") if show is not None else None
    except TypeError:
        info = None
    if isinstance(info, dict):
        blas = info.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name")
        if name:
            return str(name)
    for key in ("openblas64__info", "openblas_info", "blas_mkl_info",
                "blas_opt_info"):
        if getattr(cfg, key, None):
            return key.replace("_info", "")
    return "unknown"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:  # pragma: no cover - no git binary
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


# ---------------------------------------------------------------------------
# metric results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MetricResult:
    """One suite metric: named, unit-ed, directed, with its raw repeats."""

    name: str
    unit: str
    #: ``throughput`` (higher is better) or ``time`` (lower is better)
    kind: str
    repeats: tuple[float, ...]
    meta: dict

    @property
    def mean(self) -> float:
        return sum(self.repeats) / len(self.repeats)

    @property
    def stdev(self) -> float:
        if len(self.repeats) < 2:
            return 0.0
        return statistics.stdev(self.repeats)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "kind": self.kind,
            "repeats": list(self.repeats),
            "mean": self.mean,
            "stdev": self.stdev,
            "min": min(self.repeats),
            "max": max(self.repeats),
            "meta": self.meta,
        }


def _measure(fn: Callable[[], float], repeats: int) -> tuple[float, ...]:
    """Run ``fn`` (which returns one measured value) ``repeats`` times."""
    return tuple(fn() for _ in range(repeats))


def _elapsed(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    # a sub-resolution run still needs a positive duration for the
    # rate division; the clamp is far below perf_counter resolution
    return max(time.perf_counter() - t0, 1e-9)


# ---------------------------------------------------------------------------
# workloads (shared with benchmarks/bench_kernels.py)
# ---------------------------------------------------------------------------
def kernel_workload(nnz: int = 60_000, seed: int = 0):
    """The pinned synthetic kernel workload: Netflix shape, scaled."""
    from repro.data.datasets import NETFLIX

    return NETFLIX.scaled(nnz).generate(seed=seed)


# ---------------------------------------------------------------------------
# suite sections
# ---------------------------------------------------------------------------
def _kernel_metrics(config: BenchConfig) -> list[MetricResult]:
    """SGD updates/sec: the raw kernel per ConflictPolicy + mf variants."""
    from repro.mf.dsgd import DSGD
    from repro.mf.fpsgd import FPSGD
    from repro.mf.kernels import ConflictPolicy, sgd_epoch
    from repro.mf.model import MFModel
    from repro.mf.nomad import NOMAD

    ratings = kernel_workload(config.nnz, config.seed)
    meta = {"nnz": ratings.nnz, "k": config.k,
            "batch_size": config.batch_size}
    out: list[MetricResult] = []
    for policy in (ConflictPolicy.ATOMIC, ConflictPolicy.LAST_WRITE):
        def one_epoch(policy=policy) -> float:
            model = MFModel.init_for(ratings, config.k, seed=config.seed)
            dt = _elapsed(lambda: sgd_epoch(
                model, ratings, 0.005, 0.01, config.batch_size, policy
            ))
            return ratings.nnz / dt
        out.append(MetricResult(
            name=f"kernel/sgd[{policy.value}]/updates_per_s",
            unit="updates/s", kind="throughput",
            repeats=_measure(one_epoch, config.repeats),
            meta=dict(meta, policy=policy.value),
        ))
    variants: dict[str, Callable[[], object]] = {
        "fpsgd": lambda: FPSGD(k=config.k, threads=config.workers,
                               seed=config.seed,
                               batch_size=config.batch_size),
        "dsgd": lambda: DSGD(k=config.k, workers=config.workers,
                             seed=config.seed,
                             batch_size=config.batch_size),
        "nomad": lambda: NOMAD(k=config.k, workers=config.workers,
                               seed=config.seed),
    }
    for label, make in variants.items():
        def one_fit(make=make) -> float:
            trainer = make()
            dt = _elapsed(lambda: trainer.fit(ratings, epochs=1))
            return ratings.nnz / dt
        out.append(MetricResult(
            name=f"kernel/{label}/updates_per_s",
            unit="updates/s", kind="throughput",
            repeats=_measure(one_fit, config.repeats),
            # fit() evaluates RMSE once per epoch, so the rate includes
            # one evaluation — comparable across runs, not to sgd_epoch
            meta=dict(meta, eval_included=True),
        ))
    return out


def _epoch_metrics(config: BenchConfig) -> list[MetricResult]:
    """End-to-end epoch seconds through the engine, on both planes."""
    from repro.engine import EpochEngine, QOnlyChannel, SimBackend
    from repro.experiments.platforms import workers_platform
    from repro.parallel.executor import SharedMemoryTrainer

    ratings = kernel_workload(config.nnz, config.seed)
    meta = {"nnz": ratings.nnz, "k": config.k, "epochs": config.epochs,
            "workers": config.workers, "channel": "q-only(full)"}

    def sim_epoch_seconds() -> float:
        backend = SimBackend(
            workers_platform(config.workers), ratings=ratings,
            eval_data=ratings, k=config.k, seed=config.seed,
            batch_size=config.batch_size,
        )
        engine = EpochEngine(backend, channel=QOnlyChannel())
        return _elapsed(lambda: engine.run(config.epochs)) / config.epochs

    process_rates: list[float] = []

    def process_epoch_seconds() -> float:
        result = SharedMemoryTrainer(
            ratings, k=config.k, n_workers=config.workers,
            seed=config.seed, batch_size=config.batch_size,
        ).train(config.epochs)
        process_rates.append(result.updates_per_second)
        return max(result.elapsed_seconds, 1e-9) / config.epochs

    out = [
        MetricResult(
            name="epoch/sim/seconds", unit="s/epoch", kind="time",
            repeats=_measure(sim_epoch_seconds, config.repeats),
            meta=dict(meta),
        ),
        MetricResult(
            name="epoch/process/seconds", unit="s/epoch", kind="time",
            repeats=_measure(process_epoch_seconds, config.repeats),
            meta=dict(meta),
        ),
        MetricResult(
            name="epoch/process/updates_per_s", unit="updates/s",
            kind="throughput", repeats=tuple(process_rates),
            meta=dict(meta),
        ),
    ]
    return out


def _wire_metrics(config: BenchConfig) -> list[MetricResult]:
    """Bytes/sec through each channel stack's encode/decode codec."""
    from repro.engine import DoubleBufferChannel, Fp16Channel, QOnlyChannel

    n = max(config.nnz // 4, 1_000)
    rng = np.random.default_rng(config.seed)
    q = rng.uniform(0.0, 1.0, (config.k, n)).astype(np.float32)
    cycles = 2 if config.quick else 5
    out: list[MetricResult] = []
    for channel in (
        QOnlyChannel(),
        Fp16Channel(QOnlyChannel()),
        DoubleBufferChannel(QOnlyChannel()),
    ):
        wire = np.empty(q.shape, dtype=channel.wire_dtype)

        def roundtrips(channel=channel, wire=wire) -> float:
            def cycle() -> None:
                for _ in range(cycles):
                    channel.encode(q, wire)
                    channel.decode(wire)
            dt = _elapsed(cycle)
            # one encode puts wire.nbytes on the wire, one decode takes
            # them off: 2x wire bytes moved per cycle
            return 2.0 * wire.nbytes * cycles / dt

        out.append(MetricResult(
            name=f"wire/{channel.describe()}/bytes_per_s",
            unit="bytes/s", kind="throughput",
            repeats=_measure(roundtrips, config.repeats),
            meta={"k": config.k, "n": n, "cycles": cycles,
                  "wire_dtype": channel.wire_dtype,
                  "wire_bytes": int(wire.nbytes)},
        ))
    return out


_SECTIONS: dict[str, Callable[[BenchConfig], list[MetricResult]]] = {
    "kernel": _kernel_metrics,
    "epoch": _epoch_metrics,
    "wire": _wire_metrics,
}


def register_suite(
    name: str, section: Callable[[BenchConfig], list[MetricResult]]
) -> None:
    """Add a suite section to the registry (other planes extend it here).

    A section is any ``BenchConfig -> list[MetricResult]`` callable;
    once registered it runs through the same driver, document schema,
    and ``--compare`` verdicts as the pinned train sections.  Names are
    single CLI tokens and register exactly once.
    """
    if not name or "," in name or name != name.strip():
        raise ValueError(f"invalid suite name {name!r}")
    if name in _SECTIONS:
        raise ValueError(f"suite {name!r} is already registered")
    _SECTIONS[name] = section


def _ensure_extension_suites() -> None:
    # in-repo planes that extend the registry do so at import time; the
    # import is lazy so repro.obs stays importable on its own
    import repro.serving.bench  # noqa: F401


def available_suites() -> tuple[str, ...]:
    """Every registered suite section, pinned train sections first."""
    _ensure_extension_suites()
    return tuple(_SECTIONS)


# ---------------------------------------------------------------------------
# suite driver + document IO
# ---------------------------------------------------------------------------
def make_document(
    metrics: Sequence[MetricResult],
    config: BenchConfig,
    suite: str = "train",
) -> dict:
    """Assemble one schema-versioned BENCH document around ``metrics``.

    Shared by every suite kind (train, serving, ...) so provenance and
    host fingerprinting stay uniform and ``compare_docs`` works across
    all of them.
    """
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "provenance": {
            "git_sha": _git_sha(),
            # provenance records *when*, not a duration: the one place
            # a wall-clock read belongs in this module
            "timestamp_utc": datetime.now(timezone.utc).isoformat(),
            "quick": config.quick,
            "config": asdict(config),
        },
        "host": host_fingerprint(),
        "metrics": [m.to_dict() for m in metrics],
    }


def run_suite(
    config: BenchConfig | None = None,
    suites: Iterable[str] = SUITES,
    log: Callable[[str], None] | None = None,
    suite_label: str = "train",
) -> dict:
    """Run the named suite sections and return the BENCH document."""
    config = config if config is not None else BenchConfig()
    _ensure_extension_suites()
    names = list(suites)
    unknown = set(names) - set(_SECTIONS)
    if unknown:
        raise ValueError(
            f"unknown suites {sorted(unknown)}; available: {list(_SECTIONS)}"
        )
    metrics: list[MetricResult] = []
    for name in names:
        if log is not None:
            log(f"suite {name}: running ({config.repeats} repeat(s))")
        metrics.extend(_SECTIONS[name](config))
    return make_document(metrics, config, suite=suite_label)


def write_bench(doc: dict, path: str | os.PathLike) -> None:
    """Validate and write a bench document (schema-checked at the door)."""
    problems = validate_bench(doc)
    if problems:
        raise BenchValidationError(str(path), problems)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_bench(path: str | os.PathLike) -> dict:
    """Load and validate a bench document written by :func:`write_bench`."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_bench(doc)
    if problems:
        raise BenchValidationError(str(path), problems)
    return doc


# ---------------------------------------------------------------------------
# compare: per-metric deltas with noise-aware verdicts
# ---------------------------------------------------------------------------
#: how --compare classified one metric
VERDICTS = ("ok", "improved", "regressed", "added", "removed")


@dataclass(frozen=True)
class MetricDelta:
    """One metric's old-vs-new comparison."""

    name: str
    unit: str
    kind: str
    old_mean: float | None
    new_mean: float | None
    #: signed percent change of the mean, new vs old (None when either
    #: side is missing)
    delta_pct: float | None
    #: the margin the delta had to clear: max(threshold, 2-sigma noise)
    margin_pct: float
    verdict: str


@dataclass
class CompareReport:
    """Every metric's delta plus the run-level verdict."""

    rows: list[MetricDelta]
    threshold_pct: float
    host_changed: bool = False

    @property
    def regressions(self) -> list[MetricDelta]:
        return [r for r in self.rows if r.verdict == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        from repro.experiments.tables import render_table

        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value:,.4g}"

        rows = [
            [r.name,
             fmt(r.old_mean),
             fmt(r.new_mean),
             "-" if r.delta_pct is None else f"{r.delta_pct:+.1f}%",
             f"{r.margin_pct:.1f}%",
             r.verdict.upper() if r.verdict == "regressed" else r.verdict]
            for r in self.rows
        ]
        table = render_table(
            ["metric", "old", "new", "delta", "margin", "verdict"],
            rows,
            title=f"bench compare (threshold {self.threshold_pct:g}%, "
                  f"margin = max(threshold, 2-sigma noise))",
        )
        lines = [table]
        if self.host_changed:
            lines.append(
                "note: host fingerprints differ — deltas may reflect the "
                "machine, not the code"
            )
        lines.append(
            f"compare: {'OK' if self.ok else 'REGRESSED'} "
            f"({len(self.regressions)} regression(s) in {len(self.rows)} "
            f"metric(s))"
        )
        return "\n".join(lines)


def _noise_pct(old: dict, new: dict) -> float:
    """Two-sigma of the difference of means, as a percent of old."""
    old_mean = old["mean"]
    if old_mean <= 0:
        return 0.0
    sigma = (old["stdev"] ** 2 + new["stdev"] ** 2) ** 0.5
    return 200.0 * sigma / old_mean


def compare_docs(old: dict, new: dict, threshold_pct: float = 5.0) -> CompareReport:
    """Diff two bench documents metric-by-metric.

    A metric **regresses** when its mean moved in the bad direction
    (down for throughput, up for time) by more than the margin — the
    caller's threshold or the two-sided 2-sigma noise band of the
    recorded repeats, whichever is larger.  Metrics present on only one
    side are reported (``added``/``removed``) but never fail the run:
    suites are allowed to grow.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be non-negative")
    old_metrics = {m["name"]: m for m in old["metrics"]}
    new_metrics = {m["name"]: m for m in new["metrics"]}
    rows: list[MetricDelta] = []
    for name, om in old_metrics.items():
        nm = new_metrics.get(name)
        if nm is None:
            rows.append(MetricDelta(name, om["unit"], om["kind"],
                                    om["mean"], None, None,
                                    threshold_pct, "removed"))
            continue
        margin = max(threshold_pct, _noise_pct(om, nm))
        delta_pct = (
            100.0 * (nm["mean"] - om["mean"]) / om["mean"]
            if om["mean"] > 0 else 0.0
        )
        worse = -delta_pct if om["kind"] == "throughput" else delta_pct
        if worse > margin:
            verdict = "regressed"
        elif -worse > margin:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append(MetricDelta(name, om["unit"], om["kind"],
                                om["mean"], nm["mean"], delta_pct,
                                margin, verdict))
    for name, nm in new_metrics.items():
        if name not in old_metrics:
            rows.append(MetricDelta(name, nm["unit"], nm["kind"],
                                    None, nm["mean"], None,
                                    threshold_pct, "added"))
    return CompareReport(
        rows=rows,
        threshold_pct=threshold_pct,
        host_changed=old.get("host") != new.get("host"),
    )
