"""Cost-model drift: measured phase times vs Eq. 1-5 predictions.

The paper validates its time-cost model against PCM/Nsight measurements
once, offline.  This module makes that validation a *runtime* artifact:
join the per-worker per-phase spans an instrumented run actually
recorded against what a cost model predicted for the same phases, and
report the relative error.  Two prediction sources:

* :func:`predictions_from_epoch_cost` — the analytical
  :class:`~repro.core.cost_model.TimeCostModel` output (simulated
  plane, or a calibrated platform standing in for the host);
* :func:`host_predictions` — Eq. 2/3 evaluated with *probe-measured*
  host numbers (copy bandwidth, SGD update rate) for real
  :class:`~repro.parallel.executor.SharedMemoryTrainer` runs — the
  same substitution DP1's Algorithm 1 makes when it re-measures.

Phases are keyed by their string value (``"pull"``, ``"computing"``,
``"push"``, ``"sync"``) so predictions and measurements join without
sharing enum instances across serialization boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.hardware.timeline import Phase, Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cost_model import EpochCost
    from repro.data.ratings import RatingMatrix

#: phases the drift report compares (barrier/eval have no model term)
MODELED_PHASES = (Phase.PULL, Phase.COMPUTE, Phase.PUSH, Phase.SYNC)

PredictionMap = Mapping[tuple[str, str], float]


@dataclass(frozen=True)
class HostRunInfo:
    """What the executor knew about a real run (drift-report inputs)."""

    worker_names: tuple[str, ...]
    shard_nnz: tuple[int, ...]
    k: int
    m: int
    n: int
    epochs: int


@dataclass(frozen=True)
class DriftRow:
    """One (worker, phase) comparison, per-epoch seconds."""

    worker: str
    phase: str
    predicted: float
    measured: float
    spans: int

    @property
    def rel_error(self) -> float:
        """(measured - predicted) / predicted; NaN when unpredicted."""
        if self.predicted <= 0:
            return math.nan
        return (self.measured - self.predicted) / self.predicted


@dataclass(frozen=True)
class DriftReport:
    """Joined measured-vs-predicted table for one instrumented run."""

    rows: tuple[DriftRow, ...]
    epochs: int

    @property
    def worst_abs_rel_error(self) -> float:
        errors = [abs(r.rel_error) for r in self.rows if not math.isnan(r.rel_error)]
        return max(errors) if errors else math.nan

    def row(self, worker: str, phase: str) -> DriftRow:
        for r in self.rows:
            if r.worker == worker and r.phase == phase:
                return r
        raise KeyError(f"no drift row for ({worker!r}, {phase!r})")

    def to_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "rows": [
                {
                    "worker": r.worker,
                    "phase": r.phase,
                    "predicted_s": r.predicted,
                    "measured_s": r.measured,
                    "rel_error": None if math.isnan(r.rel_error) else r.rel_error,
                    "spans": r.spans,
                }
                for r in self.rows
            ],
        }

    def render(self) -> str:
        header = f"{'worker':<12} {'phase':<10} {'predicted':>12} {'measured':>12} {'rel err':>9}"
        lines = ["cost-model drift report (per-epoch seconds)", header,
                 "-" * len(header)]
        for r in self.rows:
            err = "--" if math.isnan(r.rel_error) else f"{r.rel_error:+8.0%}"
            lines.append(
                f"{r.worker:<12} {r.phase:<10} {r.predicted:>12.6f} "
                f"{r.measured:>12.6f} {err:>9}"
            )
        worst = self.worst_abs_rel_error
        if not math.isnan(worst):
            lines.append(f"worst |rel err|: {worst:.0%} over {self.epochs} epoch(s)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# measurement side: aggregate a timeline into per-epoch phase means
# ---------------------------------------------------------------------------
def measured_phase_means(
    timeline: Timeline, epochs: int
) -> dict[tuple[str, str], tuple[float, int]]:
    """``(worker, phase-value) -> (mean seconds per epoch, span count)``."""
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    totals: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], int] = {}
    for span in timeline.spans:
        name = span.phase.value if isinstance(span.phase, Phase) else str(span.phase)
        key = (span.worker, name)
        totals[key] = totals.get(key, 0.0) + span.duration
        counts[key] = counts.get(key, 0) + 1
    return {key: (totals[key] / epochs, counts[key]) for key in totals}


def compare(
    timeline: Timeline, predictions: PredictionMap, epochs: int
) -> DriftReport:
    """Join measurements against predictions into a :class:`DriftReport`.

    Every predicted key appears in the report (measured 0 when the run
    recorded no such span); measured phases without a prediction appear
    with predicted 0 so nothing is silently dropped — only phases
    outside :data:`MODELED_PHASES` (barrier waits, evaluation) are
    excluded, since the cost model has no term for them.
    """
    measured = measured_phase_means(timeline, epochs)
    modeled_names = {p.value for p in MODELED_PHASES}
    keys = set(predictions) | {k for k in measured if k[1] in modeled_names}
    rows = []
    for worker, phase in sorted(keys):
        mean, count = measured.get((worker, phase), (0.0, 0))
        rows.append(
            DriftRow(
                worker=worker,
                phase=phase,
                predicted=float(predictions.get((worker, phase), 0.0)),
                measured=mean,
                spans=count,
            )
        )
    return DriftReport(rows=tuple(rows), epochs=epochs)


# ---------------------------------------------------------------------------
# prediction sources
# ---------------------------------------------------------------------------
def predictions_from_epoch_cost(
    cost: "EpochCost", server_lane: str = "server"
) -> dict[tuple[str, str], float]:
    """Flatten a modeled :class:`EpochCost` into a prediction map."""
    preds: dict[tuple[str, str], float] = {}
    for wc in cost.workers:
        preds[(wc.name, Phase.PULL.value)] = wc.pull
        preds[(wc.name, Phase.COMPUTE.value)] = wc.compute
        preds[(wc.name, Phase.PUSH.value)] = wc.push
    preds[(server_lane, Phase.SYNC.value)] = cost.sync_time_each * len(cost.workers)
    return preds


def host_predictions(
    host: HostRunInfo,
    bandwidth_gbs: float,
    updates_per_second: float,
    server_lane: str = "server",
) -> dict[tuple[str, str], float]:
    """Eq. 2/3 evaluated with probe-measured host rates.

    * pull/push: one Q copy of ``4 k n`` bytes at the measured copy
      bandwidth (Strategy 1: transmit Q only);
    * compute: shard nnz over the measured SGD update rate;
    * sync: the server's per-epoch merge touches three arrays per
      worker (read global, read push buffer, write global — Eq. 3's
      three memory operations), again at copy bandwidth.
    """
    if bandwidth_gbs <= 0 or updates_per_second <= 0:
        raise ValueError("probe rates must be positive")
    q_bytes = 4.0 * host.k * host.n
    copy_s = q_bytes / (bandwidth_gbs * 1e9)
    preds: dict[tuple[str, str], float] = {}
    for name, nnz in zip(host.worker_names, host.shard_nnz):
        preds[(name, Phase.PULL.value)] = copy_s
        preds[(name, Phase.COMPUTE.value)] = nnz / updates_per_second
        preds[(name, Phase.PUSH.value)] = copy_s
    preds[(server_lane, Phase.SYNC.value)] = (
        3.0 * q_bytes * len(host.worker_names) / (bandwidth_gbs * 1e9)
    )
    return preds
