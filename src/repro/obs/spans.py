"""Span recording for real runs: shared-memory rings, one copy, no queues.

Each worker process owns a :class:`SpanRing` — a fixed-capacity record
buffer in named shared memory.  Recording a span is four float64 stores
plus a cursor bump (no locks, no pickling, no queue in the hot path:
the paper's one-copy discipline applied to telemetry itself).  The
server drains every ring after the run — barriers order the writes
before the reads — and assembles a real :class:`Timeline`, which the
existing Chrome-trace exporter renders as the wall-clock counterpart of
the paper's Nsight Systems screenshots.

Record layout (float64 each): ``[count, dropped, (code, epoch, start,
end) * capacity]``.  When the ring is full, new records are *dropped
and counted* rather than overwriting history — a truncated trace that
says so beats a silently rewritten one.

All timestamps come from ``time.perf_counter()``: on every platform we
target it is a system-wide monotonic clock, so spans recorded in
different processes share a time base; the assembler subtracts the
run's origin so traces start at t=0.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.hardware.timeline import Phase, Timeline
from repro.parallel.shm import SharedArray, SharedArraySpec

#: stable wire codes for phases (enum order is part of the ring format)
PHASE_CODES: dict[Phase, int] = {phase: i for i, phase in enumerate(Phase)}
CODE_PHASES: dict[int, Phase] = {i: phase for phase, i in PHASE_CODES.items()}

_HEADER = 2  # [0] = records written, [1] = records dropped
_FIELDS = 4  # code, epoch, start, end


@dataclass(frozen=True)
class SpanRecord:
    """One drained ring entry (times are absolute perf_counter seconds)."""

    phase: Phase
    epoch: int
    start: float
    end: float
    #: which recovery attempt the record belongs to (a per-ring
    #: property: rings are created fresh for every backend open)
    attempt: int = 0


@dataclass(frozen=True)
class SpanRingSpec:
    """Everything a worker process needs to attach to a span ring."""

    array: SharedArraySpec
    worker: str
    attempt: int = 0

    @property
    def capacity(self) -> int:
        return (self.array.shape[0] - _HEADER) // _FIELDS


class SpanRing:
    """Single-writer span buffer over a shared float64 array."""

    def __init__(self, shm: SharedArray, worker: str, attempt: int = 0):
        self._shm = shm
        self.worker = worker
        self.attempt = attempt
        self.spec = SpanRingSpec(shm.spec, worker, attempt)
        self.capacity = self.spec.capacity

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(cls, capacity: int, worker: str, attempt: int = 0) -> "SpanRing":
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        arr = SharedArray.create((_HEADER + capacity * _FIELDS,), "float64")
        try:
            return cls(arr, worker, attempt)
        except BaseException:  # pragma: no cover - ctor cannot really fail
            arr.unlink()
            raise

    @classmethod
    def attach(cls, spec: SpanRingSpec) -> "SpanRing":
        arr = SharedArray.attach(spec.array)
        try:
            return cls(arr, spec.worker, spec.attempt)
        except BaseException:  # pragma: no cover - ctor cannot really fail
            arr.close()
            raise

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        self._shm.unlink()

    def __enter__(self) -> "SpanRing":
        return self

    def __exit__(self, *exc) -> None:
        if self._shm.owner:
            self.unlink()
        else:
            self.close()

    # -- writing ---------------------------------------------------------
    def record(self, phase: Phase, epoch: int, start: float, end: float) -> None:
        buf = self._shm.array
        count = int(buf[0])
        if count >= self.capacity:
            buf[1] += 1
            return
        base = _HEADER + count * _FIELDS
        buf[base] = PHASE_CODES[phase]
        buf[base + 1] = epoch
        buf[base + 2] = start
        buf[base + 3] = end
        buf[0] = count + 1

    # -- reading ---------------------------------------------------------
    @property
    def count(self) -> int:
        return int(self._shm.array[0])

    @property
    def dropped(self) -> int:
        return int(self._shm.array[1])

    def drain(self) -> list[SpanRecord]:
        """All records written so far, in write order.

        The attempt tag is the ring's, not stored per record: one ring
        serves exactly one backend open, so the wire format stays four
        fields per span.
        """
        buf = self._shm.array
        out: list[SpanRecord] = []
        for i in range(self.count):
            base = _HEADER + i * _FIELDS
            out.append(
                SpanRecord(
                    phase=CODE_PHASES[int(buf[base])],
                    epoch=int(buf[base + 1]),
                    start=float(buf[base + 2]),
                    end=float(buf[base + 3]),
                    attempt=self.attempt,
                )
            )
        return out


class SpanRecorder:
    """Worker-side convenience wrapper: timed context-managed spans."""

    def __init__(self, ring: SpanRing, clock: Callable[[], float] = time.perf_counter):
        self.ring = ring
        self.clock = clock

    def record(self, phase: Phase, epoch: int, start: float, end: float) -> None:
        self.ring.record(phase, epoch, start, end)

    @contextmanager
    def span(self, phase: Phase, epoch: int):
        start = self.clock()
        try:
            yield
        finally:
            self.ring.record(phase, epoch, start, self.clock())


def records_to_timeline(
    timeline: Timeline,
    worker: str,
    records: Iterable[SpanRecord],
    origin: float = 0.0,
    epoch_offset: int = 0,
) -> int:
    """Append drained records to a timeline, rebasing times to ``origin``.

    ``epoch_offset`` rebases ring-local epochs onto the run's global
    epoch numbering (recovery attempts count their epochs from zero).
    """
    n = 0
    for rec in records:
        timeline.add(worker, rec.phase, rec.start - origin, rec.end - origin,
                     rec.epoch + epoch_offset, rec.attempt)
        n += 1
    return n


def assemble_timeline(
    rings: Sequence[SpanRing],
    server_spans: Iterable[tuple] = (),
    origin: float = 0.0,
    server_lane: str = "server",
    epoch_offset: int = 0,
) -> tuple[Timeline, int]:
    """Build the run's Timeline from worker rings plus server-side spans.

    Returns ``(timeline, dropped)`` where ``dropped`` counts ring
    records lost to capacity across all workers.  Server span tuples
    are ``(phase, epoch, start, end)`` with an optional trailing
    attempt tag; worker spans carry their ring's attempt.
    """
    timeline = Timeline()
    dropped = 0
    for ring in rings:
        records_to_timeline(timeline, ring.worker, ring.drain(), origin,
                            epoch_offset)
        dropped += ring.dropped
    for phase, epoch, start, end, *rest in server_spans:
        attempt = int(rest[0]) if rest else 0
        timeline.add(server_lane, phase, start - origin, end - origin,
                     epoch + epoch_offset, attempt)
    return timeline, dropped
