"""Stage-attributed profiling: *where* an engine stage spends its time.

The bench suite (:mod:`repro.obs.bench`) says *what* is slow; this
module says *where*.  A :class:`StageProfiler` passed as
``EpochEngine(profile=...)`` / ``SharedMemoryTrainer(profile=...)``
wraps every pipeline stage dispatch (``pull``/``compute``/``push``/
``sync`` plus ``evaluate``) in a per-stage :mod:`cProfile` run, and —
on the process plane — hands each worker process a drop directory where
it dumps its own per-stage profiles at exit
(``attempt-N/worker-W.<stage>.pstats``, one file per engine attempt so
recovered runs keep every attempt's samples, mirroring the
attempt-tagged span timelines).  :meth:`StageProfiler.report` fuses the
server profiles with the worker dumps into one
:class:`StageProfileReport`: cumulative seconds bucketed per stage, a
top-N hotpath table, and the *attributed fraction* — how much of the
profiled time landed inside a named engine stage (a dump from an
unknown stage counts against it, so drift between the profiler and the
engine's stage set is visible, not silent).

cProfile allows one active profiler per interpreter, so stage scopes
must never nest — the engine's stage dispatch and the worker's
pull/train/push boundaries are disjoint by construction, and each
worker process owns its own interpreter.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

#: the stage buckets a profile may attribute time to: the engine's
#: pipeline stages plus the epoch-closing evaluate
ENGINE_STAGES = ("pull", "compute", "push", "sync", "evaluate")

#: hotpath JSON document marker (``obs-report --hotpaths`` input)
HOTPATH_SCHEMA = "repro-hotpaths/v1"


def _format_function(filename: str, lineno: int, funcname: str) -> str:
    """``name (pkg/module.py:lineno)``; builtins keep their own label."""
    if filename == "~":
        return funcname
    parts = filename.replace(os.sep, "/").split("/")
    short = "/".join(parts[-2:])
    return f"{funcname} ({short}:{lineno})"


@dataclass(frozen=True)
class HotpathEntry:
    """One profiled function, attributed to the stage it ran under."""

    stage: str
    function: str
    calls: int
    #: seconds inside the function itself (excluding callees)
    tottime: float
    #: seconds including callees — the hotpath ranking key
    cumtime: float

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "function": self.function,
            "calls": self.calls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HotpathEntry":
        return cls(
            stage=str(data["stage"]),
            function=str(data["function"]),
            calls=int(data["calls"]),
            tottime=float(data["tottime"]),
            cumtime=float(data["cumtime"]),
        )


@dataclass
class StageProfileReport:
    """Profiled time bucketed into engine stages + the hotpath table.

    ``stage_seconds`` sums each profile's *internal* times (``tottime``),
    so the per-stage totals add up without double counting; ``entries``
    ranks functions by cumulative time, which is what a reader follows
    to the hot call path.
    """

    stage_seconds: dict[str, float]
    entries: list[HotpathEntry]
    #: profiled seconds from dumps whose stage is not an engine stage
    unattributed_seconds: float = 0.0

    @property
    def attributed_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def total_seconds(self) -> float:
        return self.attributed_seconds + self.unattributed_seconds

    @property
    def attributed_fraction(self) -> float:
        """Share of profiled time that landed in a named engine stage."""
        total = self.total_seconds
        if total <= 0.0:
            return 1.0
        return self.attributed_seconds / total

    def top(self, n: int = 10) -> list[HotpathEntry]:
        return sorted(self.entries, key=lambda e: e.cumtime, reverse=True)[:n]

    def render(self, top_n: int = 10) -> str:
        lines = [
            f"stage-attributed profile: {self.total_seconds:.4f}s profiled, "
            f"{100.0 * self.attributed_fraction:.1f}% attributed to engine "
            f"stages"
        ]
        lines.append(f"  {'stage':<12} {'seconds':>10} {'share':>7}")
        total = self.total_seconds or 1.0
        for stage in ENGINE_STAGES:
            if stage in self.stage_seconds:
                secs = self.stage_seconds[stage]
                lines.append(
                    f"  {stage:<12} {secs:>10.4f} {100.0 * secs / total:>6.1f}%"
                )
        if self.unattributed_seconds > 0:
            lines.append(
                f"  {'(other)':<12} {self.unattributed_seconds:>10.4f} "
                f"{100.0 * self.unattributed_seconds / total:>6.1f}%"
            )
        top = self.top(top_n)
        if top:
            lines.append(f"top {len(top)} hotpaths by cumulative time:")
            lines.append(
                f"  {'stage':<10} {'cumtime':>9} {'calls':>8}  function"
            )
            for entry in top:
                lines.append(
                    f"  {entry.stage:<10} {entry.cumtime:>9.4f} "
                    f"{entry.calls:>8}  {entry.function}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": HOTPATH_SCHEMA,
            "stage_seconds": dict(self.stage_seconds),
            "unattributed_seconds": self.unattributed_seconds,
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageProfileReport":
        schema = data.get("schema")
        if schema != HOTPATH_SCHEMA:
            raise ValueError(
                f"not a hotpath report (schema {schema!r}, expected "
                f"{HOTPATH_SCHEMA!r})"
            )
        return cls(
            stage_seconds={
                str(k): float(v) for k, v in data["stage_seconds"].items()
            },
            entries=[HotpathEntry.from_dict(e) for e in data["entries"]],
            unattributed_seconds=float(data.get("unattributed_seconds", 0.0)),
        )

    def save(self, path: "str | os.PathLike") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "StageProfileReport":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class WorkerStageProfiles:
    """Per-stage cProfile accumulation inside one worker process.

    The worker wraps its pull/compute/push boundaries with
    :meth:`stage` (re-entering a stage resumes its profile) and calls
    :meth:`dump` once before exit to drop one ``.pstats`` file per
    stage into the server-provided directory.
    """

    def __init__(self) -> None:
        self._profiles: dict[str, cProfile.Profile] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        prof = self._profiles.setdefault(name, cProfile.Profile())
        prof.enable()
        try:
            yield
        finally:
            prof.disable()

    def dump(self, directory: str, worker_id: int) -> None:
        for name, prof in self._profiles.items():
            prof.dump_stats(
                os.path.join(directory, f"worker-{worker_id}.{name}.pstats")
            )


class StageProfiler:
    """The engine-side profiling hook (``EpochEngine(profile=...)``).

    Server-side stage dispatch is profiled directly via :meth:`stage`;
    worker processes dump into :meth:`worker_dir` (the process backend
    creates one ``attempt-N`` subdirectory per open).  :meth:`report`
    fuses both into a :class:`StageProfileReport`; call :meth:`cleanup`
    afterwards to remove the drop directory.
    """

    def __init__(self, max_entries_per_stage: int = 50):
        if max_entries_per_stage <= 0:
            raise ValueError("max_entries_per_stage must be positive")
        self.max_entries_per_stage = max_entries_per_stage
        self._profiles: dict[str, cProfile.Profile] = {}
        self._workdir: str | None = None

    def worker_dir(self) -> str:
        """The drop directory for worker dumps (created on first use)."""
        if self._workdir is None:
            self._workdir = tempfile.mkdtemp(prefix="repro-profile-")
        return self._workdir

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Profile one server-side stage dispatch (resumes per stage)."""
        prof = self._profiles.setdefault(name, cProfile.Profile())
        prof.enable()
        try:
            yield
        finally:
            prof.disable()

    # -- report assembly -------------------------------------------------
    def _collect(
        self,
        stats: pstats.Stats,
        stage: str,
        stage_seconds: dict[str, float],
        entries: list[HotpathEntry],
    ) -> float:
        """Fold one profile into the buckets; returns its total seconds."""
        total = 0.0
        per_stage: list[HotpathEntry] = []
        for (fname, lineno, func), row in stats.stats.items():  # type: ignore[attr-defined]
            _cc, nc, tt, ct, _callers = row
            if "_lsprof.Profiler" in func:
                continue  # the profiler's own enable/disable frames
            total += tt
            per_stage.append(HotpathEntry(
                stage=stage,
                function=_format_function(fname, lineno, func),
                calls=int(nc),
                tottime=float(tt),
                cumtime=float(ct),
            ))
        per_stage.sort(key=lambda e: e.cumtime, reverse=True)
        entries.extend(per_stage[: self.max_entries_per_stage])
        stage_seconds[stage] = stage_seconds.get(stage, 0.0) + total
        return total

    def report(self) -> StageProfileReport:
        """Fuse server profiles + worker dumps into one report."""
        stage_seconds: dict[str, float] = {}
        entries: list[HotpathEntry] = []
        unattributed = 0.0
        for stage, prof in self._profiles.items():
            prof.create_stats()
            total = self._collect(
                pstats.Stats(prof), stage, stage_seconds, entries
            )
            if stage not in ENGINE_STAGES:
                unattributed += total
                stage_seconds.pop(stage, None)
        if self._workdir is not None:
            for dirpath, _dirs, files in sorted(os.walk(self._workdir)):
                for fn in sorted(files):
                    if not fn.endswith(".pstats"):
                        continue
                    parts = fn.rsplit(".", 2)
                    stage = parts[-2] if len(parts) == 3 else "unknown"
                    total = self._collect(
                        pstats.Stats(os.path.join(dirpath, fn)),
                        stage, stage_seconds, entries,
                    )
                    if stage not in ENGINE_STAGES:
                        unattributed += total
                        stage_seconds.pop(stage, None)
        return StageProfileReport(
            stage_seconds=stage_seconds,
            entries=entries,
            unattributed_seconds=unattributed,
        )

    def cleanup(self) -> None:
        """Remove the worker drop directory (idempotent)."""
        if self._workdir is not None:
            shutil.rmtree(self._workdir, ignore_errors=True)
            self._workdir = None
