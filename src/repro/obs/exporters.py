"""Render a :class:`MetricsRegistry` as JSONL events or Prometheus text.

Two formats, two audiences:

* **JSONL** — one structured event per line, followed by one line per
  metric sample.  Greppable, diffable, replayable; the format the
  ``repro obs-report`` command reads back.
* **Prometheus text exposition** — ``# HELP`` / ``# TYPE`` headers and
  ``name{label="v"} value`` lines, so an instrumented run's final state
  can be scraped or pushed to a gateway without extra dependencies.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from repro.obs.registry import MetricsRegistry, Sample


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def jsonl_lines(registry: MetricsRegistry) -> Iterator[str]:
    """Events first (in order), then every metric sample."""
    for event in registry.events:
        yield json.dumps({"type": "event", **event}, sort_keys=False)
    for sample in registry.samples():
        yield json.dumps(
            {
                "type": "sample",
                "name": sample.name,
                "labels": sample.labels_dict(),
                "value": sample.value,
            }
        )


def write_metrics_jsonl(registry: MetricsRegistry, path: str | os.PathLike) -> int:
    """Write the JSONL stream; returns the line count."""
    n = 0
    with open(path, "w") as fh:
        for line in jsonl_lines(registry):
            fh.write(line + "\n")
            n += 1
    return n


def read_metrics_jsonl(path: str | os.PathLike) -> tuple[list[dict], list[dict]]:
    """Parse a JSONL stream back into ``(events, samples)`` dicts."""
    events: list[dict] = []
    samples: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "event":
                events.append(record)
            else:
                samples.append(record)
    return events, samples


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _escape_label_value(value: object) -> str:
    """Escape a label value per the exposition format spec.

    Inside label values, backslash, double-quote and newline must be
    escaped (in that order — escaping ``\\`` first keeps the other two
    escapes unambiguous); anything else passes through raw.
    """
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    """HELP text allows ``\\`` and newline escapes (quotes stay raw)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(sample: Sample) -> str:
    if not sample.labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sample.labels
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in metric.samples():
            value = sample.value
            text = "+Inf" if value == float("inf") else f"{value:g}"
            lines.append(f"{sample.name}{_format_labels(sample)} {text}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str | os.PathLike) -> int:
    """Write the Prometheus exposition; returns the byte count."""
    text = prometheus_text(registry)
    with open(path, "w") as fh:
        fh.write(text)
    return len(text)
