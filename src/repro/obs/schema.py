"""The BENCH_*.json document schema and its dependency-free validator.

Every ``repro bench`` run emits one schema-versioned JSON document so
perf numbers stay machine-comparable across PRs: a later run can be
diffed against an earlier file (``repro bench --compare``) only if both
sides agree on what the fields mean.  The schema is expressed as the
JSON-Schema subset this repo actually needs (``type`` / ``required`` /
``properties`` / ``items`` / ``enum`` / ``minimum``), and
:func:`validate_bench` walks it without any third-party dependency so
the CI gate can validate artifacts on minimal containers.

Version history
---------------
1. initial layout: ``schema_version`` / ``suite`` / ``provenance`` /
   ``host`` / ``metrics[]`` with per-metric repeats and mean/stdev/min.
   Later (additively, so still version 1): the ``suite`` field grew a
   second producer (``"serving"`` documents from ``repro serve-bench``
   next to ``"train"``) and an optional top-level ``slo`` object —
   declared latency/throughput targets plus measured values and
   verdicts, emitted only when an SLO was declared for the run.
"""

from __future__ import annotations

from typing import Any

#: bump on any incompatible change to the document layout
BENCH_SCHEMA_VERSION = 1

#: metric direction: how --compare decides which way "worse" points
METRIC_KINDS = ("throughput", "time")

BENCH_SCHEMA: dict = {
    "type": "object",
    "required": ["schema_version", "suite", "provenance", "host", "metrics"],
    "properties": {
        "schema_version": {"type": "integer", "minimum": 1},
        "suite": {"type": "string"},
        "provenance": {
            "type": "object",
            "required": ["git_sha", "timestamp_utc", "config"],
            "properties": {
                "git_sha": {"type": "string"},
                "timestamp_utc": {"type": "string"},
                "quick": {"type": "boolean"},
                "config": {"type": "object"},
            },
        },
        # optional: declared SLO targets + measured values/verdicts for
        # serving-suite documents (absent when no SLO was declared)
        "slo": {
            "type": "object",
            "required": ["targets", "measured", "ok"],
            "properties": {
                "targets": {"type": "object"},
                "measured": {"type": "object"},
                "ok": {"type": "boolean"},
                "violations": {
                    "type": "array",
                    "items": {"type": "string"},
                },
            },
        },
        "host": {
            "type": "object",
            "required": ["cpu_count", "python", "platform", "numpy"],
            "properties": {
                "cpu_count": {"type": "integer", "minimum": 1},
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "numpy": {"type": "string"},
                "blas": {"type": "string"},
            },
        },
        "metrics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "unit", "kind", "repeats", "mean",
                             "stdev", "min"],
                "properties": {
                    "name": {"type": "string"},
                    "unit": {"type": "string"},
                    "kind": {"type": "string", "enum": list(METRIC_KINDS)},
                    "repeats": {
                        "type": "array",
                        "items": {"type": "number", "minimum": 0},
                    },
                    "mean": {"type": "number", "minimum": 0},
                    "stdev": {"type": "number", "minimum": 0},
                    "min": {"type": "number", "minimum": 0},
                    "max": {"type": "number", "minimum": 0},
                    "meta": {"type": "object"},
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in python; a schema "integer"/"number"
    # must still reject True/False or quick=1 would validate as a flag
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def _walk(value: Any, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value!r} below minimum {schema['minimum']}")
    if expected == "object":
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _walk(value[key], sub, f"{path}.{key}", errors)
    elif expected == "array" and "items" in schema:
        for i, item in enumerate(value):
            _walk(item, schema["items"], f"{path}[{i}]", errors)


def validate_bench(doc: Any) -> list[str]:
    """Validate a bench document against :data:`BENCH_SCHEMA`.

    Returns a list of human-readable problems — empty means valid.
    Beyond the structural walk, cross-field invariants are checked:
    the version must be one this code understands, metric names must be
    unique, and each metric's mean/min must be consistent with its
    recorded repeats.
    """
    errors: list[str] = []
    _walk(doc, BENCH_SCHEMA, "$", errors)
    if errors:
        return errors
    if doc["schema_version"] != BENCH_SCHEMA_VERSION:
        errors.append(
            f"$.schema_version: {doc['schema_version']} is not the supported "
            f"version {BENCH_SCHEMA_VERSION}"
        )
    seen: set[str] = set()
    for i, metric in enumerate(doc["metrics"]):
        name = metric["name"]
        if name in seen:
            errors.append(f"$.metrics[{i}]: duplicate metric name {name!r}")
        seen.add(name)
        repeats = metric["repeats"]
        if not repeats:
            errors.append(f"$.metrics[{i}] ({name}): no repeats recorded")
            continue
        lo = min(repeats)
        if abs(metric["min"] - lo) > 1e-9 * max(lo, 1.0):
            errors.append(
                f"$.metrics[{i}] ({name}): min {metric['min']} does not "
                f"match repeats (expected {lo})"
            )
        mean = sum(repeats) / len(repeats)
        if abs(metric["mean"] - mean) > 1e-9 * max(mean, 1.0):
            errors.append(
                f"$.metrics[{i}] ({name}): mean {metric['mean']} does not "
                f"match repeats (expected {mean})"
            )
    return errors
