"""Metrics registry: counters, gauges, histograms, structured events.

The runtime telemetry plane's equivalent of a Prometheus client — kept
dependency-free so workers and benches can always import it.  Metrics
are named, optionally labelled (``counter.inc(1, worker="worker-0")``),
and collected as flat :class:`Sample` records that the exporters
(:mod:`repro.obs.exporters`) render as JSONL or Prometheus text.

Besides point-in-time metric values, a registry records **structured
events**: ordered dicts (one per epoch, probe, run, ...) that become
one JSONL line each.  Events are what you grep; metrics are what you
plot.

Timestamps use ``time.perf_counter()`` (monotonic), never wall clock —
the hcclint ``wall-clock`` rule (HCC110) enforces this for all timing
code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

#: histogram bucket upper bounds tuned for phase timings (seconds)
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, float("inf"),
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One exported metric point: name, labels, value."""

    name: str
    labels: LabelKey
    value: float

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Metric:
    """Base class: a named metric with one value series per label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def value(self, **labels: object) -> float:
        return self._series[_label_key(labels)]

    def samples(self) -> Iterator[Sample]:
        for key, value in sorted(self._series.items()):
            yield Sample(self.name, key, value)

    def series_count(self) -> int:
        return len(self._series)


class Counter(Metric):
    """Monotonically increasing count (updates applied, bytes moved)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(Metric):
    """Point-in-time value (per-epoch RMSE, updates/s)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = float(value)


class Histogram(Metric):
    """Cumulative-bucket distribution (barrier waits, merge times)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if sorted(bounds) != list(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("buckets must be strictly increasing")
        if not bounds or bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def mean(self, **labels: object) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def samples(self) -> Iterator[Sample]:
        for key in sorted(self._totals):
            cumulative = 0
            for bound, n in zip(self.buckets, self._counts[key]):
                cumulative += n
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                yield Sample(
                    f"{self.name}_bucket", key + (("le", le),), float(cumulative)
                )
            yield Sample(f"{self.name}_sum", key, self._sums[key])
            yield Sample(f"{self.name}_count", key, float(self._totals[key]))


class MetricsRegistry:
    """Create-or-get metric factory plus the structured-event log."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._metrics: dict[str, Metric] = {}
        self._events: list[dict] = []
        self._clock = clock
        self._t0 = clock()

    # -- factories -------------------------------------------------------
    def _get_or_create(self, cls: type, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- events ----------------------------------------------------------
    def event(self, name: str, /, **fields: object) -> dict:
        """Append a structured event; ``t`` is seconds since registry birth."""
        record = {
            "event": name,
            "seq": len(self._events),
            "t": self._clock() - self._t0,
            **fields,
        }
        self._events.append(record)
        return record

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    # -- introspection -----------------------------------------------------
    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> list[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def samples(self) -> list[Sample]:
        out: list[Sample] = []
        for metric in self.metrics():
            out.extend(metric.samples())
        return out
