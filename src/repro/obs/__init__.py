"""repro.obs — the runtime telemetry plane.

Observability for *real* runs, mirroring what the paper gets from Intel
PCM and Nsight Systems:

* :mod:`repro.obs.spans` — per-worker shared-memory span rings; real
  pull/compute/push/sync spans assemble into a
  :class:`~repro.hardware.timeline.Timeline` that the Chrome-trace
  exporter renders in Perfetto;
* :mod:`repro.obs.registry` — counters / gauges / histograms plus
  structured events;
* :mod:`repro.obs.exporters` — JSONL and Prometheus text renderers;
* :mod:`repro.obs.drift` — measured phase times joined against the
  Eq. 1-5 cost model, as a per-run report;
* :mod:`repro.obs.bench` — the pinned perf suite behind ``repro
  bench``: schema-versioned ``BENCH_*.json`` documents
  (:mod:`repro.obs.schema`) plus noise-aware regression compare;
* :mod:`repro.obs.profile` — stage-attributed cProfile hooks
  (``EpochEngine(profile=...)``) and the hotpath report.

:class:`Telemetry` is the facade: pass one to
``SharedMemoryTrainer(..., telemetry=...)`` or
``HCCMF.train(telemetry=...)`` and everything above is populated for
that run.  Passing ``None`` (the default) keeps both executors on
their uninstrumented zero-overhead paths.
"""

from __future__ import annotations

import os

from repro.hardware.timeline import Timeline
from repro.obs.bench import (
    BenchConfig,
    CompareReport,
    MetricResult,
    compare_docs,
    host_fingerprint,
    load_bench,
    run_suite,
    write_bench,
)
from repro.obs.drift import (
    DriftReport,
    DriftRow,
    HostRunInfo,
    compare,
    host_predictions,
    predictions_from_epoch_cost,
)
from repro.obs.exporters import (
    jsonl_lines,
    prometheus_text,
    read_metrics_jsonl,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.profile import StageProfileReport, StageProfiler
from repro.obs.schema import BENCH_SCHEMA_VERSION, validate_bench
from repro.obs.spans import (
    SpanRecord,
    SpanRecorder,
    SpanRing,
    SpanRingSpec,
    assemble_timeline,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Sample",
    "SpanRing",
    "SpanRingSpec",
    "SpanRecord",
    "SpanRecorder",
    "assemble_timeline",
    "DriftReport",
    "DriftRow",
    "HostRunInfo",
    "compare",
    "host_predictions",
    "predictions_from_epoch_cost",
    "jsonl_lines",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "prometheus_text",
    "write_prometheus",
    "BenchConfig",
    "MetricResult",
    "CompareReport",
    "run_suite",
    "write_bench",
    "load_bench",
    "compare_docs",
    "host_fingerprint",
    "BENCH_SCHEMA_VERSION",
    "validate_bench",
    "StageProfiler",
    "StageProfileReport",
]


class Telemetry:
    """One instrumented run: spans, metrics, and the drift report.

    Create one, hand it to a trainer, then export::

        tel = Telemetry()
        result = SharedMemoryTrainer(data, n_workers=2, telemetry=tel).train(4)
        tel.export_chrome_trace("run.json")       # open in Perfetto
        tel.write_metrics_jsonl("run.jsonl")
        print(tel.drift_report().render())
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.timeline = Timeline()
        self.dropped_spans = 0
        self.host: HostRunInfo | None = None
        self._ratings = None  # retained for the drift probe, if any

    # -- populated by the instrumented executor -------------------------
    def attach_run(self, timeline: Timeline, dropped: int, host: HostRunInfo,
                   ratings=None) -> None:
        """Executor hook: install the assembled run artifacts."""
        self.timeline = timeline
        self.dropped_spans = dropped
        self.host = host
        self._ratings = ratings
        if dropped:
            self.registry.counter(
                "spans_dropped_total", "ring-capacity span drops"
            ).inc(dropped)

    # -- exporters -------------------------------------------------------
    def export_chrome_trace(self, path: str | os.PathLike) -> int:
        """Write the run's Timeline as Chrome-trace JSON (Perfetto)."""
        from repro.hardware.trace import export_chrome_trace

        return export_chrome_trace(self.timeline, path)

    def write_metrics_jsonl(self, path: str | os.PathLike) -> int:
        return write_metrics_jsonl(self.registry, path)

    def prometheus_text(self) -> str:
        return prometheus_text(self.registry)

    # -- drift -----------------------------------------------------------
    def drift_report(
        self,
        predictions=None,
        bandwidth_gbs: float | None = None,
        updates_per_second: float | None = None,
    ) -> DriftReport:
        """Join measured spans against cost-model predictions.

        With no arguments, host rates are probed on the spot (the
        PCM/Nsight stand-in probes from :mod:`repro.hardware.profiler`)
        and Eq. 2/3 predictions derived from them; pass an explicit
        ``predictions`` map (e.g. from
        :func:`predictions_from_epoch_cost`) to compare against an
        analytical platform model instead.
        """
        if self.host is None:
            raise RuntimeError("no instrumented run attached to this Telemetry")
        if predictions is None:
            from repro.hardware.profiler import (
                probe_copy_bandwidth,
                probe_update_rate,
            )

            if bandwidth_gbs is None:
                probe = probe_copy_bandwidth(nbytes=16 * 1024 * 1024, repeats=3)
                probe.record_to(self.registry, "probe_copy_bandwidth_gbs")
                bandwidth_gbs = probe.value
            if updates_per_second is None:
                if self._ratings is None:
                    raise RuntimeError(
                        "no ratings retained for the update-rate probe; pass "
                        "updates_per_second= or predictions= explicitly"
                    )
                probe = probe_update_rate(self._ratings, k=self.host.k)
                probe.record_to(self.registry, "probe_update_rate")
                updates_per_second = probe.value
            predictions = host_predictions(
                self.host, bandwidth_gbs, updates_per_second
            )
        return compare(self.timeline, predictions, self.host.epochs)
