"""Process-parallel parameter-server executor (wall-clock plane).

Implements the paper's execution architecture for real: the main
process is the server, each worker is an OS process (paper 3.5:
"the server and the workers are designed as process instances"), and
all feature traffic flows through shared memory:

* a shared **P** matrix — row-grid exclusivity lets workers update
  their user rows in place, no merging needed (Strategy 1's premise);
* shared **pull buffers** (``channel.depth`` of them, rotated per
  epoch) holding the epoch-base Q in the channel's wire format;
* one shared **push buffer** per worker for its locally-updated Q.

:class:`SharedMemoryTrainer` is a thin facade: the epoch loop itself
lives in :class:`repro.engine.pipeline.EpochEngine` driving a
:class:`repro.engine.backends.ProcessBackend`, which makes the paper's
strategy axes real in this plane — ``channel=`` selects the wire stack
(Q-only payloads, FP16 wire, double-buffered pulls) and ``partition=``
accepts any :class:`~repro.core.partition.PartitionPlan` or provider
(DP0/DP1/DP2 shard fractions), not just equal splits.

Passing ``telemetry=`` (a :class:`repro.obs.Telemetry`) instruments the
run: workers log pull/compute/push/barrier spans into per-worker
shared-memory rings (:mod:`repro.obs.spans` — one-copy, no queues), the
server adds sync/eval spans, and the run assembles a real
:class:`~repro.hardware.timeline.Timeline` plus a metrics registry.
With ``telemetry=None`` (the default) every timing call is skipped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    import os

    from repro.core.config import HCCConfig, RecoveryPolicy
    from repro.engine.channels import Channel
    from repro.obs import Telemetry
    from repro.resilience import FaultPlan, ResilienceSummary

#: Default rendezvous ceiling; kept as a module constant for backward
#: compatibility — configure per run via ``HCCConfig.barrier_timeout_s``
#: or the trainer's ``barrier_timeout_s=``.
_BARRIER_TIMEOUT_S = 120.0


@dataclass
class ParallelTrainResult:
    """Outcome of a shared-memory parallel training run."""

    rmse_history: list[float]
    elapsed_seconds: float
    epochs: int
    n_workers: int
    nnz: int
    model: MFModel = field(repr=False)
    telemetry: "Telemetry | None" = field(default=None, repr=False)
    #: what the resilience plane did, when any of its features were on
    resilience: "ResilienceSummary | None" = None

    @property
    def updates_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            # a sub-resolution run has no meaningful rate; 0.0 keeps
            # downstream aggregation (means, tables) finite
            return 0.0
        return self.nnz * self.epochs / self.elapsed_seconds


class SharedMemoryTrainer:
    """Multi-process HCC-MF-style trainer on host CPUs."""

    def __init__(
        self,
        ratings: RatingMatrix,
        k: int = 32,
        n_workers: int = 2,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        fractions: list[float] | None = None,
        seed: int = 0,
        telemetry: "Telemetry | None" = None,
        fail_worker_at: tuple[int, int] | None = None,
        partition=None,
        channel: "Channel | None" = None,
        config: "HCCConfig | None" = None,
        barrier_timeout_s: float | None = None,
        fault_plan: "FaultPlan | None" = None,
        recovery: "RecoveryPolicy | None" = None,
        checkpoint_every: int = 0,
        checkpoint_path: "str | os.PathLike | None" = None,
        resume_from: "str | os.PathLike | None" = None,
        profile=None,
    ):
        # imported lazily to avoid a module-level cycle with
        # repro.engine.backends (which maps repro.parallel.shm segments)
        from repro.engine import QOnlyChannel, channel_for, provider_from

        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.ratings = ratings
        self.k = k
        self.n_workers = n_workers
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        #: partition provider: ``partition=`` takes a PartitionPlan, raw
        #: fractions or a provider; ``fractions=`` is the legacy alias
        self.partitions = provider_from(partition, fractions)
        self.fractions = (
            list(self.partitions.plan(n_workers).fractions)
            if partition is not None or fractions is not None
            else [1.0 / n_workers] * n_workers
        )
        if channel is not None:
            self.channel = channel
        elif config is not None:
            self.channel = channel_for(config.comm, ratings.m, ratings.n)
        else:
            # the process plane is Strategy-1 by construction: P lives
            # in shared memory, only Q crosses the wire
            self.channel = QOnlyChannel()
        if barrier_timeout_s is not None:
            self.barrier_timeout_s = float(barrier_timeout_s)
        elif config is not None:
            self.barrier_timeout_s = config.barrier_timeout_s
        else:
            self.barrier_timeout_s = _BARRIER_TIMEOUT_S
        #: opt-in runtime telemetry (None = zero-overhead path)
        self.telemetry = telemetry
        #: fault-injection hook for tests: (worker_id, epoch) that crashes
        self.fail_worker_at = fail_worker_at
        #: structured fault injection (docs/resilience.md); supersedes
        #: ``fail_worker_at`` — ProcessBackend rejects passing both
        self.fault_plan = fault_plan
        #: recovery policy; falls back to the config's, when one is given
        if recovery is not None:
            self.recovery = recovery
        elif config is not None:
            self.recovery = config.recovery
        else:
            self.recovery = None
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.resume_from = resume_from
        #: opt-in stage-attributed profiling hook
        #: (a :class:`repro.obs.profile.StageProfiler`)
        self.profile = profile

    def train(self, epochs: int = 5) -> ParallelTrainResult:
        from repro.engine import EpochEngine, ProcessBackend

        if epochs <= 0:
            raise ValueError("epochs must be positive")
        backend = ProcessBackend(
            self.ratings,
            k=self.k,
            n_workers=self.n_workers,
            lr=self.lr,
            reg=self.reg,
            batch_size=self.batch_size,
            seed=self.seed,
            barrier_timeout_s=self.barrier_timeout_s,
            fail_worker_at=self.fail_worker_at,
            fault_plan=self.fault_plan,
        )
        engine = EpochEngine(
            backend,
            channel=self.channel,
            partitions=self.partitions,
            telemetry=self.telemetry,
            recovery=self.recovery,
            checkpoint_every=self.checkpoint_every,
            checkpoint_path=self.checkpoint_path,
            resume_from=self.resume_from,
            profile=self.profile,
        )
        t0 = time.perf_counter()
        result = engine.run(epochs)
        elapsed = time.perf_counter() - t0
        history = result.rmse_history
        if self.telemetry is not None:
            self.telemetry.registry.gauge(
                "run_elapsed_seconds", "wall-clock of the whole run"
            ).set(elapsed)
            self.telemetry.registry.event(
                "run_complete", epochs=epochs, n_workers=backend.n_workers,
                elapsed_seconds=elapsed, final_rmse=history[-1],
            )
        return ParallelTrainResult(
            rmse_history=history,
            elapsed_seconds=elapsed,
            epochs=epochs,
            n_workers=backend.n_workers,
            nnz=backend.data.nnz,
            model=backend.model,
            telemetry=self.telemetry,
            resilience=result.resilience,
        )
