"""Process-parallel parameter-server executor (wall-clock plane).

Implements the paper's execution architecture for real: the main
process is the server, each worker is an OS process (paper 3.5:
"the server and the workers are designed as process instances"), and
all feature traffic flows through shared memory:

* a shared **P** matrix — row-grid exclusivity lets workers update
  their user rows in place, no merging needed (Strategy 1's premise);
* a shared **pull buffer** holding the epoch-base Q;
* one shared **push buffer** per worker for its locally-updated Q.

Per epoch: the server deposits Q into the pull buffer, a barrier
releases the workers, each trains its shard asynchronously, deposits
its Q into its push buffer, and a second barrier hands control back to
the server, which applies the additive delta merge
``Q += sum_i (Q_i - Q_base)`` (shards are disjoint, so every worker's
updates count as distinct SGD steps).

This demonstrates genuine multi-process parallel SGD with the one-copy
communication discipline; wall-clock speedups depend on the host's
cores and the GIL-free NumPy kernels.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.parallel.shm import SharedArray, SharedArraySpec

_BARRIER_TIMEOUT_S = 120.0


@dataclass
class ParallelTrainResult:
    """Outcome of a shared-memory parallel training run."""

    rmse_history: list[float]
    elapsed_seconds: float
    epochs: int
    n_workers: int
    nnz: int
    model: MFModel = field(repr=False)

    @property
    def updates_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.nnz * self.epochs / self.elapsed_seconds


def _worker_main(
    worker_id: int,
    p_spec: SharedArraySpec,
    pull_spec: SharedArraySpec,
    push_spec: SharedArraySpec,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    epochs: int,
    lr: float,
    reg: float,
    batch_size: int,
    seed: int,
    start_barrier,
    end_barrier,
    fail_at_epoch: int = -1,
) -> None:
    """Worker process body: epochs of pull -> train -> push.

    ``fail_at_epoch`` is a fault-injection hook for tests: the worker
    aborts its barrier (simulating a crash) at that epoch.
    """
    rng = np.random.default_rng(seed + 1000 * (worker_id + 1))
    # ExitStack closes every attached segment even if a later attach
    # fails partway through (a bare attach-then-try would leak the
    # earlier mappings on that path)
    with ExitStack() as stack:
        p_shared = stack.enter_context(SharedArray.attach(p_spec))
        pull_buf = stack.enter_context(SharedArray.attach(pull_spec))
        push_buf = stack.enter_context(SharedArray.attach(push_spec))
        n = len(vals)
        for epoch in range(epochs):
            if epoch == fail_at_epoch:
                start_barrier.abort()
                raise RuntimeError(f"injected failure in worker {worker_id}")
            start_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
            # pull: the worker's single per-epoch copy out of the shared
            # pull buffer (paper 3.5)  # hcclint: disable=hot-copy
            q_local = pull_buf.array.copy()
            model = MFModel(p_shared.array, q_local)
            order = rng.permutation(n)
            for lo in range(0, n, batch_size):
                sel = order[lo : lo + batch_size]
                sgd_batch_update(
                    model, rows[sel], cols[sel], vals[sel], lr, reg,
                    policy=ConflictPolicy.ATOMIC,
                )
            # push: one copy into this worker's shared push buffer
            np.copyto(push_buf.array, model.Q)
            end_barrier.wait(timeout=_BARRIER_TIMEOUT_S)


class SharedMemoryTrainer:
    """Multi-process HCC-MF-style trainer on host CPUs."""

    def __init__(
        self,
        ratings: RatingMatrix,
        k: int = 32,
        n_workers: int = 2,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        fractions: list[float] | None = None,
        seed: int = 0,
        fail_worker_at: tuple[int, int] | None = None,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.ratings = ratings
        self.k = k
        self.n_workers = n_workers
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        if fractions is None:
            fractions = [1.0 / n_workers] * n_workers
        if len(fractions) != n_workers:
            raise ValueError("one fraction per worker required")
        self.fractions = [float(f) for f in fractions]
        #: fault-injection hook for tests: (worker_id, epoch) that crashes
        self.fail_worker_at = fail_worker_at

    @staticmethod
    def _terminate_stragglers(procs: list[mp.process.BaseProcess]) -> None:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()

    def train(self, epochs: int = 5) -> ParallelTrainResult:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        data = self.ratings.shuffle(self.seed)
        assignments = partition_rows(data, self.fractions, GridKind.ROW)

        init = MFModel.init_for(data, self.k, seed=self.seed)
        ctx = mp.get_context("spawn")
        start_barrier = ctx.Barrier(self.n_workers + 1)
        end_barrier = ctx.Barrier(self.n_workers + 1)

        # once-per-run server-side snapshot  # hcclint: disable=hot-copy
        model = MFModel(init.P.copy(), init.Q.copy())
        procs: list[mp.process.BaseProcess] = []
        history: list[float] = []
        t0 = time.perf_counter()
        # register each segment's unlink the moment it exists: if a later
        # create (or anything else) raises, the earlier segments are
        # still destroyed instead of leaking until reboot
        with ExitStack() as stack:
            p_shared = SharedArray.create(init.P.shape, "float32")
            stack.callback(p_shared.unlink)
            pull_buf = SharedArray.create(init.Q.shape, "float32")
            stack.callback(pull_buf.unlink)
            push_bufs: list[SharedArray] = []
            for _ in range(self.n_workers):
                buf = SharedArray.create(init.Q.shape, "float32")
                stack.callback(buf.unlink)
                push_bufs.append(buf)
            np.copyto(p_shared.array, init.P)
            # LIFO: registered last so stragglers die before any unlink
            stack.callback(self._terminate_stragglers, procs)

            for wid, a in enumerate(assignments):
                shard = a.extract(data).sort_by_row()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        wid,
                        p_shared.spec,
                        pull_buf.spec,
                        push_bufs[wid].spec,
                        shard.rows,
                        shard.cols,
                        shard.vals,
                        epochs,
                        self.lr,
                        self.reg,
                        self.batch_size,
                        self.seed,
                        start_barrier,
                        end_barrier,
                        self.fail_worker_at[1]
                        if self.fail_worker_at is not None and self.fail_worker_at[0] == wid
                        else -1,
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)

            for _ in range(epochs):
                # per-epoch sync-base snapshot  # hcclint: disable=hot-copy
                q_base = model.Q.copy()
                np.copyto(pull_buf.array, model.Q)
                try:
                    start_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                    end_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                except threading.BrokenBarrierError as exc:
                    raise RuntimeError(
                        "a worker process failed mid-epoch; shared state "
                        "has been cleaned up"
                    ) from exc
                # sync: additive delta merge — workers trained on
                # disjoint row-grid shards, so their Q deltas are
                # distinct SGD steps and all of them apply
                np.copyto(model.P, p_shared.array)
                for buf in push_bufs:
                    model.Q += buf.array - q_base
                history.append(model.rmse(data))

            for proc in procs:
                proc.join(timeout=_BARRIER_TIMEOUT_S)
        elapsed = time.perf_counter() - t0
        return ParallelTrainResult(
            rmse_history=history,
            elapsed_seconds=elapsed,
            epochs=epochs,
            n_workers=self.n_workers,
            nnz=data.nnz,
            model=model,
        )
