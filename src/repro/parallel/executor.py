"""Process-parallel parameter-server executor (wall-clock plane).

Implements the paper's execution architecture for real: the main
process is the server, each worker is an OS process (paper 3.5:
"the server and the workers are designed as process instances"), and
all feature traffic flows through shared memory:

* a shared **P** matrix — row-grid exclusivity lets workers update
  their user rows in place, no merging needed (Strategy 1's premise);
* a shared **pull buffer** holding the epoch-base Q;
* one shared **push buffer** per worker for its locally-updated Q.

Per epoch: the server deposits Q into the pull buffer, a barrier
releases the workers, each trains its shard asynchronously, deposits
its Q into its push buffer, and a second barrier hands control back to
the server, which applies the additive delta merge
``Q += sum_i (Q_i - Q_base)`` (shards are disjoint, so every worker's
updates count as distinct SGD steps).

This demonstrates genuine multi-process parallel SGD with the one-copy
communication discipline; wall-clock speedups depend on the host's
cores and the GIL-free NumPy kernels.

Passing ``telemetry=`` (a :class:`repro.obs.Telemetry`) instruments the
run: workers log pull/compute/push/barrier spans into per-worker
shared-memory rings (:mod:`repro.obs.spans` — one-copy, no queues), the
server adds sync/eval spans, and the run assembles a real
:class:`~repro.hardware.timeline.Timeline` plus a metrics registry.
With ``telemetry=None`` (the default) every timing call is skipped —
the uninstrumented path is byte-for-byte the loop described above.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.hardware.timeline import Phase
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.parallel.shm import SharedArray, SharedArraySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Telemetry

_BARRIER_TIMEOUT_S = 120.0

#: ring slots per epoch when instrumented: pull + compute + push + two
#: barrier waits, plus one spare
_SPANS_PER_EPOCH = 6


@dataclass
class ParallelTrainResult:
    """Outcome of a shared-memory parallel training run."""

    rmse_history: list[float]
    elapsed_seconds: float
    epochs: int
    n_workers: int
    nnz: int
    model: MFModel = field(repr=False)
    telemetry: "Telemetry | None" = field(default=None, repr=False)

    @property
    def updates_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            # a sub-resolution run has no meaningful rate; 0.0 keeps
            # downstream aggregation (means, tables) finite
            return 0.0
        return self.nnz * self.epochs / self.elapsed_seconds


def _train_shard(
    model: MFModel,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    rng: np.random.Generator,
    batch_size: int,
    lr: float,
    reg: float,
) -> None:
    """One epoch of batched SGD over this worker's shard."""
    n = len(vals)
    order = rng.permutation(n)
    for lo in range(0, n, batch_size):
        sel = order[lo : lo + batch_size]
        sgd_batch_update(
            model, rows[sel], cols[sel], vals[sel], lr, reg,
            policy=ConflictPolicy.ATOMIC,
        )


def _worker_main(
    worker_id: int,
    p_spec: SharedArraySpec,
    pull_spec: SharedArraySpec,
    push_spec: SharedArraySpec,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    epochs: int,
    lr: float,
    reg: float,
    batch_size: int,
    seed: int,
    start_barrier,
    end_barrier,
    span_spec=None,
    fail_at_epoch: int = -1,
) -> None:
    """Worker process body: epochs of pull -> train -> push.

    ``span_spec`` (a :class:`repro.obs.spans.SpanRingSpec`) switches the
    loop onto its instrumented variant; ``None`` runs the plain loop
    with zero telemetry overhead.  ``fail_at_epoch`` is a
    fault-injection hook for tests: the worker aborts its barrier
    (simulating a crash) at that epoch.
    """
    rng = np.random.default_rng(seed + 1000 * (worker_id + 1))
    # ExitStack closes every attached segment even if a later attach
    # fails partway through (a bare attach-then-try would leak the
    # earlier mappings on that path)
    with ExitStack() as stack:
        p_shared = stack.enter_context(SharedArray.attach(p_spec))
        pull_buf = stack.enter_context(SharedArray.attach(pull_spec))
        push_buf = stack.enter_context(SharedArray.attach(push_spec))
        rec = None
        if span_spec is not None:
            # imported here so the uninstrumented path never touches
            # repro.obs (and to avoid an import cycle via repro.parallel)
            from repro.obs.spans import SpanRecorder, SpanRing

            rec = SpanRecorder(stack.enter_context(SpanRing.attach(span_spec)))
        for epoch in range(epochs):
            if epoch == fail_at_epoch:
                start_barrier.abort()
                raise RuntimeError(f"injected failure in worker {worker_id}")
            if rec is None:
                start_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                # pull: the worker's single per-epoch copy out of the shared
                # pull buffer (paper 3.5)  # hcclint: disable=hot-copy
                q_local = pull_buf.array.copy()
                model = MFModel(p_shared.array, q_local)
                _train_shard(model, rows, cols, vals, rng, batch_size, lr, reg)
                # push: one copy into this worker's shared push buffer
                np.copyto(push_buf.array, model.Q)
                end_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
            else:
                t0 = time.perf_counter()
                start_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                rec.record(Phase.BARRIER, epoch, t0, time.perf_counter())
                with rec.span(Phase.PULL, epoch):
                    # the same single per-epoch pull copy, timed
                    # hcclint: disable=hot-copy
                    q_local = pull_buf.array.copy()
                model = MFModel(p_shared.array, q_local)
                with rec.span(Phase.COMPUTE, epoch):
                    _train_shard(model, rows, cols, vals, rng, batch_size, lr, reg)
                with rec.span(Phase.PUSH, epoch):
                    np.copyto(push_buf.array, model.Q)
                t1 = time.perf_counter()
                end_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                rec.record(Phase.BARRIER, epoch, t1, time.perf_counter())


class SharedMemoryTrainer:
    """Multi-process HCC-MF-style trainer on host CPUs."""

    def __init__(
        self,
        ratings: RatingMatrix,
        k: int = 32,
        n_workers: int = 2,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        fractions: list[float] | None = None,
        seed: int = 0,
        telemetry: "Telemetry | None" = None,
        fail_worker_at: tuple[int, int] | None = None,
    ):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.ratings = ratings
        self.k = k
        self.n_workers = n_workers
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        if fractions is None:
            fractions = [1.0 / n_workers] * n_workers
        if len(fractions) != n_workers:
            raise ValueError("one fraction per worker required")
        self.fractions = [float(f) for f in fractions]
        #: opt-in runtime telemetry (None = zero-overhead path)
        self.telemetry = telemetry
        #: fault-injection hook for tests: (worker_id, epoch) that crashes
        self.fail_worker_at = fail_worker_at

    @staticmethod
    def _terminate_stragglers(procs: list[mp.process.BaseProcess]) -> None:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()

    def train(self, epochs: int = 5) -> ParallelTrainResult:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        data = self.ratings.shuffle(self.seed)
        assignments = partition_rows(data, self.fractions, GridKind.ROW)

        init = MFModel.init_for(data, self.k, seed=self.seed)
        ctx = mp.get_context("spawn")
        start_barrier = ctx.Barrier(self.n_workers + 1)
        end_barrier = ctx.Barrier(self.n_workers + 1)

        # once-per-run server-side snapshot  # hcclint: disable=hot-copy
        model = MFModel(init.P.copy(), init.Q.copy())
        telemetry = self.telemetry
        procs: list[mp.process.BaseProcess] = []
        history: list[float] = []
        shard_nnz: list[int] = []
        rings: list = []
        server_spans: list[tuple[Phase, int, float, float]] = []
        t0 = time.perf_counter()
        # register each segment's unlink the moment it exists: if a later
        # create (or anything else) raises, the earlier segments are
        # still destroyed instead of leaking until reboot
        with ExitStack() as stack:
            p_shared = SharedArray.create(init.P.shape, "float32")
            stack.callback(p_shared.unlink)
            pull_buf = SharedArray.create(init.Q.shape, "float32")
            stack.callback(pull_buf.unlink)
            push_bufs: list[SharedArray] = []
            for _ in range(self.n_workers):
                buf = SharedArray.create(init.Q.shape, "float32")
                stack.callback(buf.unlink)
                push_bufs.append(buf)
            if telemetry is not None:
                from repro.obs.spans import SpanRing

                for wid in range(self.n_workers):
                    ring = SpanRing.create(
                        capacity=epochs * _SPANS_PER_EPOCH, worker=f"worker-{wid}"
                    )
                    stack.callback(ring.unlink)
                    rings.append(ring)
            np.copyto(p_shared.array, init.P)
            # LIFO: registered last so stragglers die before any unlink
            stack.callback(self._terminate_stragglers, procs)

            for wid, a in enumerate(assignments):
                shard = a.extract(data).sort_by_row()
                shard_nnz.append(shard.nnz)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        wid,
                        p_shared.spec,
                        pull_buf.spec,
                        push_bufs[wid].spec,
                        shard.rows,
                        shard.cols,
                        shard.vals,
                        epochs,
                        self.lr,
                        self.reg,
                        self.batch_size,
                        self.seed,
                        start_barrier,
                        end_barrier,
                        rings[wid].spec if telemetry is not None else None,
                        self.fail_worker_at[1]
                        if self.fail_worker_at is not None and self.fail_worker_at[0] == wid
                        else -1,
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)

            for epoch in range(epochs):
                # per-epoch sync-base snapshot  # hcclint: disable=hot-copy
                q_base = model.Q.copy()
                np.copyto(pull_buf.array, model.Q)
                try:
                    start_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                    end_barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                except threading.BrokenBarrierError as exc:
                    raise RuntimeError(
                        "a worker process failed mid-epoch; shared state "
                        "has been cleaned up"
                    ) from exc
                if telemetry is not None:
                    m0 = time.perf_counter()
                # sync: additive delta merge — workers trained on
                # disjoint row-grid shards, so their Q deltas are
                # distinct SGD steps and all of them apply
                np.copyto(model.P, p_shared.array)
                for buf in push_bufs:
                    model.Q += buf.array - q_base
                if telemetry is not None:
                    m1 = time.perf_counter()
                    server_spans.append((Phase.SYNC, epoch, m0, m1))
                rmse = model.rmse(data)
                history.append(rmse)
                if telemetry is not None:
                    server_spans.append((Phase.EVAL, epoch, m1, time.perf_counter()))
                    telemetry.registry.gauge(
                        "epoch_rmse", "training RMSE at epoch end"
                    ).set(rmse, epoch=epoch)
                    telemetry.registry.histogram(
                        "merge_seconds", "server delta-merge time per epoch"
                    ).observe(m1 - m0)
                    telemetry.registry.event(
                        "epoch", epoch=epoch, rmse=rmse, merge_seconds=m1 - m0
                    )

            for proc in procs:
                proc.join(timeout=_BARRIER_TIMEOUT_S)
            if telemetry is not None:
                self._finalize_telemetry(
                    telemetry, rings, server_spans, t0, data, shard_nnz, epochs,
                )
        elapsed = time.perf_counter() - t0
        if telemetry is not None:
            telemetry.registry.gauge(
                "run_elapsed_seconds", "wall-clock of the whole run"
            ).set(elapsed)
            telemetry.registry.event(
                "run_complete", epochs=epochs, n_workers=self.n_workers,
                elapsed_seconds=elapsed, final_rmse=history[-1],
            )
        return ParallelTrainResult(
            rmse_history=history,
            elapsed_seconds=elapsed,
            epochs=epochs,
            n_workers=self.n_workers,
            nnz=data.nnz,
            model=model,
            telemetry=telemetry,
        )

    def _finalize_telemetry(
        self,
        telemetry: "Telemetry",
        rings: list,
        server_spans: list[tuple[Phase, int, float, float]],
        origin: float,
        data: RatingMatrix,
        shard_nnz: list[int],
        epochs: int,
    ) -> None:
        """Drain the span rings into the run's Timeline and registry.

        Runs after the workers joined and *before* the rings unlink
        (ExitStack teardown), so every record is final and readable.
        """
        from repro.obs.drift import HostRunInfo
        from repro.obs.spans import assemble_timeline

        timeline, dropped = assemble_timeline(rings, server_spans, origin=origin)
        registry = telemetry.registry
        q_bytes = 4 * self.k * data.n
        updates = registry.counter("updates_total", "SGD updates applied")
        pulled = registry.counter("bytes_pulled_total", "bytes pulled per worker")
        pushed = registry.counter("bytes_pushed_total", "bytes pushed per worker")
        barrier = registry.histogram(
            "barrier_wait_seconds", "time workers spent waiting at barriers"
        )
        rate = registry.gauge("updates_per_second", "achieved per-worker rate")
        for wid, ring in enumerate(rings):
            worker = ring.worker
            updates.inc(shard_nnz[wid] * epochs, worker=worker)
            pulled.inc(q_bytes * epochs, worker=worker)
            pushed.inc(q_bytes * epochs, worker=worker)
            compute_s = timeline.phase_total(Phase.COMPUTE, worker)
            if compute_s > 0:
                rate.set(shard_nnz[wid] * epochs / compute_s, worker=worker)
        for span in timeline.spans:
            if span.phase is Phase.BARRIER:
                barrier.observe(span.duration, worker=span.worker)
        telemetry.attach_run(
            timeline,
            dropped,
            HostRunInfo(
                worker_names=tuple(r.worker for r in rings),
                shard_nnz=tuple(shard_nnz),
                k=self.k,
                m=data.m,
                n=data.n,
                epochs=epochs,
            ),
            ratings=data,
        )
