"""Real shared-memory parallel execution substrate.

The paper implements HCC-MF with one *process* per worker and shared
pinned memory for the pull/push buffers (section 3.5).  This subpackage
reproduces those mechanics on host CPUs with
:mod:`multiprocessing.shared_memory`: a server process owns the global
feature matrices, worker processes train row-grid shards in parallel,
and pull/push are single copies through shared buffers.

This is the wall-clock execution plane; the calibrated timing plane
(:mod:`repro.hardware`) models the paper's actual CPU+GPU testbed.
"""

from repro.parallel.shm import SharedArray, SharedArraySpec
from repro.parallel.executor import SharedMemoryTrainer, ParallelTrainResult
from repro.parallel.tuning import MeasuredPartition, measure_partition

__all__ = [
    "SharedArray",
    "SharedArraySpec",
    "SharedMemoryTrainer",
    "ParallelTrainResult",
    "MeasuredPartition",
    "measure_partition",
]
