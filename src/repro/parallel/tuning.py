"""Wall-clock data-partition tuning: Algorithm 1 on real measurements.

The timing plane runs DP0/DP1 against the calibrated model; this module
runs them against *this host*: each candidate shard is timed with the
real NumPy kernel (the paper's "measure one epoch" step), Eq. 6 turns
the measured times into DP0 fractions, and Algorithm 1's compensation
loop re-times under each refined partition.  The result feeds
:class:`repro.parallel.SharedMemoryTrainer` directly.

On a homogeneous host the fractions come out near-uniform — which is
itself the correct answer; shard-dependent cache behaviour (row ranges
with hot items) is what produces the residual spread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionPlan, dp0, dp1
from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_epoch
from repro.mf.model import MFModel


@dataclass(frozen=True)
class MeasuredPartition:
    """A wall-clock-derived partition plan plus its measurements."""

    plan: PartitionPlan
    independent_times: tuple[float, ...]
    calibration_seconds: float


def _time_shard(shard: RatingMatrix, k: int, batch_size: int, seed: int) -> float:
    """Seconds for one calibration epoch over a shard (floor-guarded)."""
    if shard.nnz == 0:
        return 1e-9
    model = MFModel.init_for(shard, k, seed=seed)
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    sgd_epoch(model, shard, 0.005, 0.01, batch_size=batch_size,
              policy=ConflictPolicy.ATOMIC, rng=rng)
    return max(time.perf_counter() - t0, 1e-9)


def measure_partition(
    ratings: RatingMatrix,
    n_workers: int,
    k: int = 16,
    batch_size: int = 4096,
    refine: bool = True,
    max_rounds: int = 3,
    seed: int = 0,
) -> MeasuredPartition:
    """Derive DP0 (and optionally DP1) fractions from timed epochs.

    The DP0 step times each worker's *even-split* shard scaled up to the
    full dataset (the per-entry rate is what Eq. 6 needs); the DP1 loop
    then re-times the shards each refined partition produces.
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    t_start = time.perf_counter()
    data = ratings.shuffle(seed)

    even = [1.0 / n_workers] * n_workers
    shards = [a.extract(data) for a in partition_rows(data, even, GridKind.ROW)]
    # independent time = full-dataset time at this shard's measured rate
    independent = []
    for shard in shards:
        t = _time_shard(shard, k, batch_size, seed)
        rate = shard.nnz / t if shard.nnz else 1.0
        independent.append(data.nnz / max(rate, 1.0))
    base = dp0(independent)

    if not refine:
        return MeasuredPartition(
            plan=base,
            independent_times=tuple(independent),
            calibration_seconds=time.perf_counter() - t_start,
        )

    def measure(fractions):
        parts = partition_rows(data, list(fractions), GridKind.ROW)
        return [
            _time_shard(a.extract(data), k, batch_size, seed) for a in parts
        ]

    # all host workers are CPU processes; Algorithm 1 degenerates to its
    # homogeneous short-circuit unless told otherwise, so mark none as GPU
    refined = dp1(base, measure, is_gpu=[False] * n_workers, max_rounds=max_rounds)
    return MeasuredPartition(
        plan=refined,
        independent_times=tuple(independent),
        calibration_seconds=time.perf_counter() - t_start,
    )
