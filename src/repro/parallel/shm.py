"""Shared-memory array helpers (the "shared pinned memory" stand-in).

Wraps :class:`multiprocessing.shared_memory.SharedMemory` so that a
NumPy array can be created in one process and attached zero-copy in
another, with explicit lifecycle control.  The paper's COMM module maps
one pull buffer (server -> workers) and per-worker push buffers
(worker -> server) this way, so each transfer is a single ``memcpy``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything a peer process needs to attach to a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize


class SharedArray:
    """A NumPy array backed by named shared memory.

    Create with :meth:`create` in the owner process; attach elsewhere
    with :meth:`attach`.  The owner must :meth:`unlink` once all
    processes have closed, or the segment leaks until reboot.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: SharedArraySpec, owner: bool):
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self.array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, shape: tuple[int, ...], dtype="float32", name: str | None = None) -> "SharedArray":
        spec_dtype = np.dtype(dtype).str
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if nbytes <= 0:
            raise ValueError("shared array must have positive size")
        shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        try:
            spec = SharedArraySpec(shm.name, tuple(int(s) for s in shape), spec_dtype)
            arr = cls(shm, spec, owner=True)
            arr.array[...] = 0
            return arr
        except BaseException:
            # a failure between creating the segment and handing
            # ownership to the caller would leak it until reboot
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedArray":
        shm = shared_memory.SharedMemory(name=spec.name)
        try:
            return cls(shm, spec, owner=False)
        except BaseException:
            # e.g. a stale spec whose shape exceeds the real segment:
            # drop this process's mapping before propagating
            shm.close()
            raise

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._closed:
            return
        # drop the numpy view first, else SharedMemory.close warns
        self.array = None
        self._shm.close()
        self._closed = True

    def unlink(self) -> None:
        """Destroy the segment (owner only, after close in peers)."""
        if not self.owner:
            raise RuntimeError("only the owner may unlink a shared array")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()
