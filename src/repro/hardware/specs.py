"""Processor and bus specifications (the paper's hardware catalog).

Encodes the testbed of section 4.1 — Xeon Gold 6242 CPUs, RTX 2080 /
2080 Super GPUs, the Tesla V100 of Figure 3, PCI-E 3.0 x16 and Intel
QPI/UPI interconnects — plus Figure 3(b)'s platform prices.

``base_rate_k128`` is each processor's calibrated SGD-MF throughput
(parameter updates per second at latent dimension k=128 on
Netflix-shaped data), taken from Table 4 where the paper measured it;
dataset-dependent corrections live in :mod:`repro.hardware.calibration`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ProcessorKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


class BusKind(enum.Enum):
    PCIE = "pcie"
    QPI = "qpi"
    UPI = "upi"
    NVLINK = "nvlink"
    SHM = "shm"  # server and worker share physical memory (special worker)


@dataclass(frozen=True)
class BusSpec:
    """A worker<->server interconnect channel."""

    name: str
    kind: BusKind
    bandwidth_gbs: float  # sustained one-direction bandwidth, GB/s
    latency_us: float = 5.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("bus latency must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over this channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class ProcessorSpec:
    """Static description of one CPU or GPU.

    Parameters
    ----------
    base_rate_k128:
        Calibrated SGD update throughput (updates/s) at k=128 on
        Netflix-shaped data, at ``ref_threads`` threads (Table 4).
    bandwidth_anchors:
        ``(threads, GB/s)`` anchor points of measured DRAM bandwidth as
        a function of active threads; CPUs scale with thread count
        (Table 2's 6242 vs 6242l-10), GPUs have a single anchor.
    partition_boost:
        Fractional bandwidth gain when a worker processes a partition
        instead of the full dataset (Table 2's IW vs DP0 columns): the
        working set shrinks and caches hit more.  ~4% for GPUs, ~1% for
        CPUs at vanishing partition size.
    copy_engines:
        Independent DMA engines usable for async transfer overlap
        (Strategy 3); discrete NVIDIA GPUs have 2, a CPU has one only if
        it carries an integrated GPU whose BLT engine can copy.
    """

    name: str
    kind: ProcessorKind
    ref_threads: int
    max_threads: int
    base_rate_k128: float
    bandwidth_anchors: tuple[tuple[int, float], ...]
    partition_boost: float
    price_usd: float
    copy_engines: int = 0
    integrated_gpu: bool = False
    memory_gb: float = 0.0  # device memory (GPUs); 0 = host-memory processor
    tdp_watts: float = 0.0  # thermal design power, for the energy model

    def __post_init__(self) -> None:
        if self.base_rate_k128 <= 0:
            raise ValueError("base_rate_k128 must be positive")
        if self.ref_threads <= 0 or self.max_threads < self.ref_threads:
            raise ValueError("invalid thread configuration")
        if not self.bandwidth_anchors:
            raise ValueError("need at least one bandwidth anchor")
        if self.partition_boost < 0:
            raise ValueError("partition_boost must be non-negative")

    @property
    def is_cpu(self) -> bool:
        return self.kind is ProcessorKind.CPU

    @property
    def is_gpu(self) -> bool:
        return self.kind is ProcessorKind.GPU

    def dram_bandwidth(self, threads: int | None = None) -> float:
        """Measured DRAM bandwidth (GB/s) at a thread count.

        Piecewise-linear interpolation between anchors, clamped at the
        ends (bandwidth saturates beyond the last anchor).
        """
        anchors = sorted(self.bandwidth_anchors)
        if threads is None or len(anchors) == 1:
            # reference configuration
            for t, b in anchors:
                if t == self.ref_threads:
                    return b
            return anchors[-1][1]
        t = max(1, min(threads, self.max_threads))
        if t <= anchors[0][0]:
            return anchors[0][1]
        if t >= anchors[-1][0]:
            return anchors[-1][1]
        for (t0, b0), (t1, b1) in zip(anchors, anchors[1:]):
            if t0 <= t <= t1:
                return b0 + (b1 - b0) * (t - t0) / (t1 - t0)
        return anchors[-1][1]  # pragma: no cover - unreachable


# ---------------------------------------------------------------------------
# Processor catalog.
#
# base_rate_k128 sources: Table 4 "Netflix" row for 6242-24T / 6242-16T /
# 2080 / 2080S.  6242L-10 (the 10-thread CPU_0 configuration used to
# "increase the heterogeneity", section 4.1) and the V100 (Figure 3 only)
# are extrapolated; see DESIGN.md section 5.
#
# Bandwidth anchors: Table 2 measured values (67.30 GB/s at 16 threads,
# 39.32 at 10; 378.6 for the 2080, 407.1 for the 2080S).  CPU bandwidth
# saturates at 16 threads (Table 2 quotes 67.3 for the 24-thread CPU_1
# as well); the 24T throughput edge over 16T is compute-side and enters
# through the explicit "6242-24T" calibration rows of Table 4.
# ---------------------------------------------------------------------------

XEON_6242 = ProcessorSpec(
    name="6242",
    kind=ProcessorKind.CPU,
    ref_threads=16,
    max_threads=32,
    base_rate_k128=272_502_189.0,
    bandwidth_anchors=((10, 39.32), (16, 67.30), (24, 67.30)),
    partition_boost=0.010,
    price_usd=2_529.0,
    copy_engines=1,
    integrated_gpu=False,
    tdp_watts=150.0,
)

# CPU_0 configured down to 10 threads ("6242l" in Table 2 / Figure 9):
# the time-shared server/special-worker configuration.
XEON_6242L_10T = ProcessorSpec(
    name="6242L",
    kind=ProcessorKind.CPU,
    ref_threads=10,
    max_threads=32,
    base_rate_k128=159_211_000.0,  # 272.5e6 * (39.32/67.30)
    bandwidth_anchors=((10, 39.32), (16, 67.30), (24, 67.30)),
    partition_boost=0.010,
    price_usd=2_529.0,
    copy_engines=1,
    integrated_gpu=False,
    tdp_watts=150.0,
)

RTX_2080 = ProcessorSpec(
    name="2080",
    kind=ProcessorKind.GPU,
    ref_threads=41_216,
    max_threads=41_216,
    base_rate_k128=918_333_483.0,
    bandwidth_anchors=((41_216, 378.62),),
    partition_boost=0.042,
    price_usd=699.0,
    copy_engines=2,
    memory_gb=8.0,
    tdp_watts=215.0,
)

RTX_2080S = ProcessorSpec(
    name="2080S",
    kind=ProcessorKind.GPU,
    ref_threads=43_008,
    max_threads=43_008,
    base_rate_k128=1_052_866_849.0,
    bandwidth_anchors=((43_008, 407.10),),
    partition_boost=0.042,
    price_usd=699.0,
    copy_engines=2,
    memory_gb=8.0,
    tdp_watts=250.0,
)

TESLA_V100 = ProcessorSpec(
    name="V100",
    kind=ProcessorKind.GPU,
    ref_threads=81_920,
    max_threads=81_920,
    base_rate_k128=1_280_000_000.0,  # Figure 3(a): a bit faster than 2080S
    bandwidth_anchors=((81_920, 900.0),),
    partition_boost=0.042,
    price_usd=8_999.0,
    copy_engines=2,
    memory_gb=16.0,
    tdp_watts=300.0,
)

PCIE3_X16 = BusSpec(name="PCI-E 3.0 x16", kind=BusKind.PCIE, bandwidth_gbs=15.75)
QPI = BusSpec(name="QPI", kind=BusKind.QPI, bandwidth_gbs=16.0)
UPI = BusSpec(name="UPI", kind=BusKind.UPI, bandwidth_gbs=20.8)
# the special worker lives on the server's CPU: pull/push are memcpy at
# (a conservative fraction of) memory bandwidth
SHARED_MEMORY = BusSpec(name="shared-memory", kind=BusKind.SHM, bandwidth_gbs=40.0, latency_us=0.5)

PROCESSOR_CATALOG: dict[str, ProcessorSpec] = {
    spec.name: spec
    for spec in (XEON_6242, XEON_6242L_10T, RTX_2080, RTX_2080S, TESLA_V100)
}

BUS_CATALOG: dict[str, BusSpec] = {
    bus.name: bus for bus in (PCIE3_X16, QPI, UPI, SHARED_MEMORY)
}
