"""Execution timelines: the timing sequences of paper Figures 5, 6 and 8.

A :class:`Timeline` records :class:`Span` intervals per worker lane
(pull / computing / push / sync) for one or more epochs.  It backs

* Figure 5's three timing-sequence diagrams (via :meth:`ascii_gantt`),
* Figure 8's cumulative pull/compute/push stacks (via
  :meth:`phase_totals`), and
* the epoch-time computation ``T = max_i{T_i} + T_sync`` (Eq. 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class Phase(enum.Enum):
    """Lifecycle phases of a worker epoch (paper Figure 4 steps 4-7).

    The first four are the paper's modeled phases; BARRIER (a worker
    waiting for the epoch barrier) and EVAL (the server computing RMSE)
    come from the runtime telemetry plane (:mod:`repro.obs`) and have
    no cost-model term.
    """

    PULL = "pull"
    COMPUTE = "computing"
    PUSH = "push"
    SYNC = "sync"
    BARRIER = "barrier"
    EVAL = "eval"


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on a worker's lane."""

    worker: str
    phase: Phase
    start: float
    end: float
    epoch: int = 0
    #: which recovery attempt recorded the span (0 = the first open of
    #: the run's backend; bumped on every re-open after a failure)
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """An append-only record of spans across workers and epochs."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def add(self, worker: str, phase: Phase, start: float, end: float,
            epoch: int = 0, attempt: int = 0) -> Span:
        span = Span(worker, phase, start, end, epoch, attempt)
        self._spans.append(span)
        return span

    def extend(self, spans: Iterable[Span]) -> None:
        for s in spans:
            if not isinstance(s, Span):
                raise TypeError(f"expected Span, got {type(s)}")
            self._spans.append(s)

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    def workers(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self._spans:
            seen.setdefault(s.worker, None)
        return list(seen)

    def span_of(self) -> tuple[float, float]:
        """(earliest start, latest end) across all spans."""
        if not self._spans:
            return (0.0, 0.0)
        return (
            min(s.start for s in self._spans),
            max(s.end for s in self._spans),
        )

    def makespan(self) -> float:
        lo, hi = self.span_of()
        return hi - lo

    def worker_end(self, worker: str) -> float:
        ends = [s.end for s in self._spans if s.worker == worker]
        if not ends:
            raise KeyError(f"no spans for worker {worker!r}")
        return max(ends)

    def phase_total(self, phase: Phase, worker: str | None = None) -> float:
        """Cumulative duration of a phase (optionally for one worker)."""
        return sum(
            s.duration
            for s in self._spans
            if s.phase is phase and (worker is None or s.worker == worker)
        )

    def phase_totals(self, worker: str | None = None) -> dict[Phase, float]:
        """Per-phase cumulative durations — Figure 8's stacked bars."""
        return {phase: self.phase_total(phase, worker) for phase in Phase}

    def epoch_spans(self, epoch: int) -> list[Span]:
        return [s for s in self._spans if s.epoch == epoch]

    def epoch_time(self, epoch: int) -> float:
        spans = self.epoch_spans(epoch)
        if not spans:
            raise KeyError(f"no spans for epoch {epoch}")
        return max(s.end for s in spans) - min(s.start for s in spans)

    # ------------------------------------------------------------------
    _GLYPH = {
        Phase.PULL: "<",
        Phase.COMPUTE: "#",
        Phase.PUSH: ">",
        Phase.SYNC: "S",
        Phase.BARRIER: ".",
        Phase.EVAL: "E",
    }

    def ascii_gantt(self, width: int = 72) -> str:
        """Render the timeline as a fixed-width Gantt chart.

        Lanes are workers; glyphs: ``<`` pull, ``#`` compute, ``>``
        push, ``S`` sync.  Reproduces the flavour of Figures 5 and 6.
        """
        if width < 10:
            raise ValueError("width too small")
        lo, hi = self.span_of()
        total = max(hi - lo, 1e-12)
        scale = width / total
        names = self.workers()
        label_w = max((len(n) for n in names), default=0) + 1
        lines = []
        for name in names:
            row = [" "] * width
            for s in self._spans:
                if s.worker != name or s.duration == 0:
                    continue
                a = int((s.start - lo) * scale)
                b = max(a + 1, int((s.end - lo) * scale))
                for i in range(a, min(b, width)):
                    row[i] = self._GLYPH.get(s.phase, "?")
            lines.append(f"{name:<{label_w}}|{''.join(row)}|")
        legend = "legend: < pull   # compute   > push   S sync   . barrier   E eval"
        return "\n".join([*lines, legend])
