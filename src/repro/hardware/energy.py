"""Energy model: joules from TDP and busy/idle times.

Extends Figure 3(b)'s economics argument from purchase price to
operating cost.  The model is the standard two-state approximation:
a processor draws its full TDP while computing and an idle fraction of
it otherwise; transfer engines' draw is folded into the busy state.

All inputs come from the timing plane (per-worker busy seconds and the
run's makespan), so energy composes with every platform/what-if sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.processor import Processor
from repro.hardware.topology import Platform

#: idle power as a fraction of TDP (typical for both Xeons and Turing GPUs)
IDLE_POWER_FRACTION = 0.30


def processor_energy(
    processor: Processor,
    busy_seconds: float,
    total_seconds: float,
    idle_fraction: float = IDLE_POWER_FRACTION,
) -> float:
    """Joules one processor draws over a run of ``total_seconds``."""
    if busy_seconds < 0 or total_seconds < 0:
        raise ValueError("times must be non-negative")
    if busy_seconds > total_seconds * (1 + 1e-9):
        raise ValueError("busy time exceeds the run's makespan")
    if not (0.0 <= idle_fraction <= 1.0):
        raise ValueError("idle_fraction must be in [0, 1]")
    tdp = processor.spec.tdp_watts
    idle_seconds = max(total_seconds - busy_seconds, 0.0)
    return tdp * (busy_seconds + idle_fraction * idle_seconds)


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one training run."""

    total_joules: float
    per_worker_joules: dict[str, float]
    server_joules: float
    updates: float

    @property
    def watt_hours(self) -> float:
        return self.total_joules / 3600.0

    @property
    def joules_per_mupdate(self) -> float:
        """Joules per million parameter updates — the efficiency metric."""
        if self.updates <= 0:
            return float("inf")
        return self.total_joules / (self.updates / 1e6)


def run_energy(
    platform: Platform,
    busy_seconds_by_worker: dict[str, float],
    total_seconds: float,
    updates: float,
    server_busy_seconds: float = 0.0,
    idle_fraction: float = IDLE_POWER_FRACTION,
) -> EnergyReport:
    """Energy for a whole run: every worker plus the server CPU.

    A time-shared special worker and the server occupy the same chip;
    its energy is counted once, under the server, at the *maximum* of
    the two busy times (the chip is busy when either role is).
    """
    per_worker: dict[str, float] = {}
    shared_busy = server_busy_seconds
    for worker in platform.workers:
        busy = busy_seconds_by_worker.get(worker.name, 0.0)
        if worker.time_share < 1.0:
            # same physical chip as the server: fold into the server term
            shared_busy = max(shared_busy, busy)
            continue
        per_worker[worker.name] = processor_energy(
            worker, busy, total_seconds, idle_fraction
        )
    server_j = processor_energy(
        platform.server, min(shared_busy, total_seconds), total_seconds, idle_fraction
    )
    total = sum(per_worker.values()) + server_j
    return EnergyReport(
        total_joules=total,
        per_worker_joules=per_worker,
        server_joules=server_j,
        updates=updates,
    )
