"""Runtime processor model: throughput as a function of configuration.

Implements the compute side of the paper's cost model (Eq. 2): one SGD
update touches ``16k + 4`` bytes, so a processor's update rate is its
effective memory bandwidth divided by that — with three corrections the
paper measures:

* **thread scaling** (CPUs): bandwidth, hence rate, follows the active
  thread count (Table 2's 6242 vs 6242l-10; section 4.1 deliberately
  runs CPU_0 at 10 or 16 threads);
* **partition boost**: a worker processing a DP0-sized slice of the data
  enjoys slightly higher bandwidth than an independent worker (Table 2's
  IW vs DP0 columns) because its working set is smaller;
* **dataset locality**: per-dataset multipliers from Table 4 (or the
  fallback heuristic) capture cache behaviour differences.

A deliberately mis-sized thread count models Figure 3(a)'s "Bad threads
conf": oversubscription past the physical core count thrashes and costs
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import DatasetSpec
from repro.hardware.calibration import REFERENCE_K, bytes_per_update, dataset_rate, table4_rate
from repro.hardware.specs import ProcessorKind, ProcessorSpec

#: throughput multiplier when threads exceed the physical capacity
OVERSUBSCRIPTION_PENALTY = 0.55

#: CPU throughput multiplier when co-running with the server's sync and
#: the other workers' host-side traffic.  This is the "non-critical
#: factor neglected when modeling" that unbalances CPU vs GPU compute
#: times after DP0 (paper 3.3: bandwidth at runtime differs from the
#: independent measurement) and that DP1's compensation loop corrects.
#: GPUs compute out of their own DRAM and are unaffected.
CPU_CORUN_FACTOR = 0.82


@dataclass
class Processor:
    """A processor instance with a concrete runtime configuration.

    Parameters
    ----------
    spec:
        Static hardware description.
    threads:
        Active compute threads.  Defaults to the spec's reference count
        (16 for the 6242, the full thread grid for GPUs).
    instance:
        Disambiguates identical processors on one platform ("2080S#1").
    time_share:
        Fraction of time available for worker compute; the "special
        worker" time-sharing the server's CPU runs below 1.0.
    """

    spec: ProcessorSpec
    threads: int | None = None
    instance: str = ""
    time_share: float = 1.0
    runtime_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.threads is None:
            self.threads = self.spec.ref_threads
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if not (0.0 < self.time_share <= 1.0):
            raise ValueError("time_share must be in (0, 1]")
        if not (0.0 < self.runtime_penalty <= 1.0):
            raise ValueError("runtime_penalty must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        base = self.spec.name
        if self.threads != self.spec.ref_threads:
            base = f"{base}-{self.threads}T"
        if self.instance:
            base = f"{base}#{self.instance}"
        return base

    @property
    def kind(self) -> ProcessorKind:
        return self.spec.kind

    @property
    def is_gpu(self) -> bool:
        return self.spec.is_gpu

    @property
    def is_cpu(self) -> bool:
        return self.spec.is_cpu

    @property
    def oversubscribed(self) -> bool:
        return self.threads > self.spec.max_threads

    # ------------------------------------------------------------------
    def effective_bandwidth(self, partition_frac: float = 1.0) -> float:
        """Achieved DRAM bandwidth (GB/s) for a given partition size.

        ``partition_frac`` is the share of the dataset this worker
        processes; 1.0 is the independent-worker case (Table 2 "IW").
        Smaller partitions get the spec's partition boost, linearly in
        the shrink factor — which reproduces Table 2's DP0 column.
        """
        if not (0.0 < partition_frac <= 1.0):
            raise ValueError("partition_frac must be in (0, 1]")
        threads = min(self.threads, self.spec.max_threads)
        base = self.spec.dram_bandwidth(threads)
        boost = self.spec.partition_boost * (1.0 - partition_frac)
        return base * (1.0 + boost)

    def update_rate(
        self,
        k: int = REFERENCE_K,
        dataset: DatasetSpec | None = None,
        partition_frac: float = 1.0,
        corun: bool = False,
    ) -> float:
        """SGD parameter updates per second in this configuration.

        The Netflix-calibrated base rate is scaled by: latent-dimension
        bytes ratio (Eq. 2's ``16k+4``), thread-dependent bandwidth,
        dataset locality, partition boost, oversubscription penalty and
        the time-share duty factor.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        # exact Table 4 cell for a thread-qualified configuration?
        qualified = f"{self.spec.name}-{self.threads}T"
        rate = None
        if dataset is not None:
            rate = table4_rate(qualified, dataset.name)
        if rate is None:
            if dataset is not None:
                rate = dataset_rate(
                    self.spec.name,
                    self.is_gpu,
                    self.spec.base_rate_k128,
                    dataset,
                    memory_gb=self.spec.memory_gb,
                )
            else:
                rate = self.spec.base_rate_k128
            # thread scaling relative to the reference configuration
            if self.is_cpu and self.threads != self.spec.ref_threads:
                eff_threads = min(self.threads, self.spec.max_threads)
                ratio = self.spec.dram_bandwidth(eff_threads) / self.spec.dram_bandwidth(
                    self.spec.ref_threads
                )
                rate *= ratio

        rate *= bytes_per_update(REFERENCE_K) / bytes_per_update(k)
        rate *= 1.0 + self.spec.partition_boost * (1.0 - partition_frac)
        if corun and self.is_cpu:
            rate *= CPU_CORUN_FACTOR
        if corun:
            # misconfiguration (e.g. thread oversubscription) that only
            # bites when the collaborative run is live, not during the
            # independent measurements the partition was derived from —
            # Figure 3(a)'s "Bad threads conf"
            rate *= self.runtime_penalty
        if self.oversubscribed:
            rate *= OVERSUBSCRIPTION_PENALTY
        return rate * self.time_share

    def compute_time(
        self,
        n_updates: float,
        k: int = REFERENCE_K,
        dataset: DatasetSpec | None = None,
        partition_frac: float = 1.0,
        corun: bool = False,
    ) -> float:
        """Seconds to perform ``n_updates`` SGD updates (Eq. 2's first term)."""
        if n_updates < 0:
            raise ValueError("n_updates must be non-negative")
        return n_updates / self.update_rate(k, dataset, partition_frac, corun)

    def with_time_share(self, share: float) -> "Processor":
        """A copy of this processor running at a duty factor < 1."""
        return Processor(
            self.spec, self.threads, self.instance,
            time_share=share, runtime_penalty=self.runtime_penalty,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Processor({self.name}, {self.kind.value}, threads={self.threads})"
