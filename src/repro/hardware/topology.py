"""Platform topology: processors wired to a parameter server by buses.

Models the multi-CPU/GPU architecture of paper Figure 2: processors are
nodes of a graph whose edges carry :class:`BusSpec` channels.  "As long
as these connection channels are sufficient, processors can communicate
in parallel without losing bandwidth" — hence each worker's pull/push
uses its own edge bandwidth, concurrently with the others.

The canonical instance is :func:`paper_workstation` — the section 4.1
testbed: two Xeon Gold 6242 (CPU_0 hosting the server), an RTX 2080 and
an RTX 2080 Super on PCI-E 3.0 x16, CPU_1 over UPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.hardware.processor import Processor
from repro.hardware.specs import (
    BusSpec,
    PCIE3_X16,
    ProcessorSpec,
    RTX_2080,
    RTX_2080S,
    SHARED_MEMORY,
    UPI,
    XEON_6242,
)


@dataclass
class Platform:
    """A multi-CPU/GPU machine: one server plus worker processors."""

    server: Processor
    graph: nx.Graph = field(default_factory=nx.Graph)
    _workers: list[Processor] = field(default_factory=list)
    _channels: dict[str, str | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.server.name not in self.graph:
            self.graph.add_node(self.server.name, processor=self.server)

    # ------------------------------------------------------------------
    def add_worker(
        self,
        processor: Processor,
        bus: BusSpec,
        channel: str | None = None,
    ) -> Processor:
        """Attach a worker to the server via a bus channel.

        ``channel`` names the *physical* link: workers that share a
        channel id split its bandwidth when they transfer concurrently.
        The paper's Figure 2 assumes "these connection channels are
        sufficient" — separate x16 slots per GPU; leaving ``channel``
        None models exactly that (each worker's link is exclusive).
        """
        if processor.name in self.graph:
            raise ValueError(f"duplicate processor name {processor.name!r}")
        self.graph.add_node(processor.name, processor=processor)
        self.graph.add_edge(self.server.name, processor.name, bus=bus)
        self._workers.append(processor)
        self._channels[processor.name] = channel
        return processor

    def channel_of(self, worker: Processor | str) -> str | None:
        """The physical channel id this worker was attached with."""
        name = worker if isinstance(worker, str) else worker.name
        if name not in self._channels:
            raise KeyError(f"no worker named {name!r}")
        return self._channels[name]

    def channel_sharing(self, worker: Processor | str) -> int:
        """How many workers contend on this worker's physical channel."""
        name = worker if isinstance(worker, str) else worker.name
        if name not in self._channels:
            raise KeyError(f"no worker named {name!r}")
        channel = self._channels[name]
        if channel is None:
            return 1
        return sum(1 for c in self._channels.values() if c == channel)

    @property
    def workers(self) -> list[Processor]:
        return list(self._workers)

    @property
    def processors(self) -> list[Processor]:
        return [self.server, *self._workers]

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def worker(self, name: str) -> Processor:
        for w in self._workers:
            if w.name == name:
                return w
        raise KeyError(f"no worker named {name!r}")

    def bus(self, worker: Processor | str) -> BusSpec:
        """The channel connecting a worker to the server."""
        name = worker if isinstance(worker, str) else worker.name
        try:
            return self.graph.edges[self.server.name, name]["bus"]
        except KeyError as exc:
            raise KeyError(f"no bus between server and {name!r}") from exc

    def counts(self) -> tuple[int, int]:
        """(number of CPU workers, number of GPU workers) — (c, g) in Table 1."""
        c = sum(1 for w in self._workers if w.is_cpu)
        g = sum(1 for w in self._workers if w.is_gpu)
        return c, g

    def total_price(self) -> float:
        """Hardware cost of the distinct physical processors (Figure 3b).

        A time-shared worker (``time_share < 1``) reuses the server's
        physical CPU and therefore adds no cost.
        """
        total = self.server.spec.price_usd
        for p in self._workers:
            if p.time_share < 1.0:
                continue
            total += p.spec.price_usd
        return total

    def describe(self) -> str:
        lines = [f"server: {self.server.name} ({self.server.kind.value})"]
        for w in self._workers:
            bus = self.bus(w)
            lines.append(
                f"worker: {w.name} ({w.kind.value}, {w.threads} threads) "
                f"via {bus.name} @ {bus.bandwidth_gbs:g} GB/s"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------
def paper_workstation(
    cpu0_threads: int = 16,
    include_special_worker: bool = True,
    special_worker_share: float = 0.85,
) -> Platform:
    """The section 4.1 testbed.

    CPU_0 hosts the parameter server and (unless Strategy 3 is active)
    a time-shared "special worker"; CPU_1 is a full worker over UPI; the
    two GPUs hang off CPU_0's PCI-E 3.0 x16 slots.  The paper runs
    CPU_0 with 16 threads for peak performance or 10 threads "to
    increase the heterogeneity" — pass ``cpu0_threads`` accordingly.
    """
    server = Processor(XEON_6242, threads=cpu0_threads, instance="cpu0")
    platform = Platform(server=server)
    if include_special_worker:
        special = Processor(
            XEON_6242,
            threads=cpu0_threads,
            instance="cpu0w",
            time_share=special_worker_share,
        )
        platform.add_worker(special, SHARED_MEMORY)
    platform.add_worker(Processor(XEON_6242, threads=24, instance="cpu1"), UPI)
    platform.add_worker(Processor(RTX_2080S, instance="gpu0"), PCIE3_X16)
    platform.add_worker(Processor(RTX_2080, instance="gpu1"), PCIE3_X16)
    return platform


def single_processor(spec: ProcessorSpec, threads: int | None = None) -> Platform:
    """A degenerate platform: one processor computing alone.

    The server role is nominal (no cross-processor communication), used
    for the independent-worker baselines of Figure 3(a) and Table 4.
    """
    server = Processor(XEON_6242, threads=16, instance="host")
    platform = Platform(server=server)
    platform.add_worker(
        Processor(spec, threads=threads),
        SHARED_MEMORY if spec.is_cpu else PCIE3_X16,
    )
    return platform


def custom_platform(
    workers: list[tuple[ProcessorSpec, int | None, BusSpec]],
    server_spec: ProcessorSpec = XEON_6242,
    server_threads: int = 16,
) -> Platform:
    """Assemble an arbitrary platform from (spec, threads, bus) triples."""
    server = Processor(server_spec, threads=server_threads, instance="srv")
    platform = Platform(server=server)
    for i, (spec, threads, bus) in enumerate(workers):
        platform.add_worker(Processor(spec, threads=threads, instance=f"w{i}"), bus)
    return platform
