"""Asynchronous multi-stream pipeline model (Strategy 3, paper 3.4).

"Asynchronous Computing-Transmission" splits a worker's epoch into
``streams`` chunks, each an independent pull -> compute -> push
pipeline.  The GPU's copy engines move data while the compute engine
works on earlier chunks, so the exposed communication shrinks toward
``1/streams`` of the unpipelined cost (paper Figure 6).

Three engine resources are simulated:

* a *copy-in* engine (pull DMA),
* the *compute* engine,
* a *copy-out* engine (push DMA) — discrete GPUs have two copy engines,
  so copy-in and copy-out run concurrently; a CPU with only an
  integrated-GPU BLT engine (``copy_engines == 1``) serializes them.

The schedule is computed by a tiny list scheduler, which also emits the
spans drawn in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.timeline import Phase, Span


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of pipelining one worker epoch."""

    epoch_time: float
    exposed_comm: float       # communication not hidden by compute
    compute_time: float
    pull_time: float          # total pull work (hidden or not)
    push_time: float
    streams: int
    spans: tuple[Span, ...] = field(default=())

    @property
    def hidden_fraction(self) -> float:
        """Share of total communication hidden under computation."""
        total = self.pull_time + self.push_time
        if total <= 0:
            return 0.0
        return 1.0 - self.exposed_comm / total


def pipeline_schedule(
    pull_time: float,
    compute_time: float,
    push_time: float,
    streams: int,
    copy_engines: int = 2,
    worker: str = "worker",
    epoch: int = 0,
    t0: float = 0.0,
) -> PipelineResult:
    """Schedule an epoch's chunks over the copy/compute engines.

    With ``streams == 1`` this degenerates to the sequential
    pull -> compute -> push of Eq. 2.  Chunks are equal-sized (the data
    partition is uniform within a worker); chunk i's compute depends on
    its pull, its push on its compute, and each engine processes chunks
    in order.
    """
    if streams <= 0:
        raise ValueError("streams must be positive")
    if copy_engines not in (1, 2):
        raise ValueError("copy_engines must be 1 or 2")
    if min(pull_time, compute_time, push_time) < 0:
        raise ValueError("phase times must be non-negative")

    s = streams
    pull_c, comp_c, push_c = pull_time / s, compute_time / s, push_time / s

    copy_in_free = t0
    compute_free = t0
    copy_out_free = t0
    spans: list[Span] = []

    for i in range(s):
        # pull chunk i
        pull_start = copy_in_free
        pull_end = pull_start + pull_c
        copy_in_free = pull_end
        if pull_c > 0:
            spans.append(Span(worker, Phase.PULL, pull_start, pull_end, epoch))

        # compute chunk i (after its pull)
        comp_start = max(compute_free, pull_end)
        comp_end = comp_start + comp_c
        compute_free = comp_end
        if comp_c > 0:
            spans.append(Span(worker, Phase.COMPUTE, comp_start, comp_end, epoch))

        # push chunk i (after its compute; engine may be shared with pull)
        if copy_engines == 1:
            engine_free = max(copy_in_free, copy_out_free)
        else:
            engine_free = copy_out_free
        push_start = max(engine_free, comp_end)
        push_end = push_start + push_c
        copy_out_free = push_end
        if copy_engines == 1:
            copy_in_free = max(copy_in_free, push_end)
        if push_c > 0:
            spans.append(Span(worker, Phase.PUSH, push_start, push_end, epoch))

    epoch_time = max(copy_in_free, compute_free, copy_out_free) - t0
    exposed = epoch_time - compute_time
    return PipelineResult(
        epoch_time=epoch_time,
        exposed_comm=max(0.0, exposed),
        compute_time=compute_time,
        pull_time=pull_time,
        push_time=push_time,
        streams=s,
        spans=tuple(spans),
    )


def theoretical_exposed_comm(pull_time: float, push_time: float, streams: int) -> float:
    """The paper's headline claim: exposed transfer ~ total/streams.

    Exact when compute dominates each chunk; :func:`pipeline_schedule`
    gives the precise value.
    """
    if streams <= 0:
        raise ValueError("streams must be positive")
    return (pull_time + push_time) / streams
