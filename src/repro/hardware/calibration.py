"""Calibration tables from the paper's measurements.

Two kinds of measured data anchor the platform model:

* **Table 2** — runtime memory bandwidth (GB/s) per worker, for the
  "independent worker" (IW, full dataset) and DP0-partition cases;
* **Table 4** — "computing power" (SGD updates/s) of each processor on
  each dataset, training independently.

Anything not measured by the paper falls back to a locality heuristic
based on the dataset's feature-reuse statistics, so the model
extrapolates sensibly to new dataset shapes.
"""

from __future__ import annotations

from repro.data.datasets import DatasetSpec

#: latent dimension at which the calibrated rates were measured
REFERENCE_K = 128

#: bytes touched per SGD update at latent dimension k: read p, read q,
#: write p, write q (4 x 4k bytes) plus the 4-byte rating (paper Eq. 2).
def bytes_per_update(k: int) -> int:
    if k <= 0:
        raise ValueError("k must be positive")
    return 16 * k + 4


# ---------------------------------------------------------------------------
# Table 2: memory bandwidth (GB/s) under IW and DP0 configurations
# ---------------------------------------------------------------------------
_TABLE2: dict[str, dict[str, float]] = {
    "6242":  {"IW": 67.3001,  "DP0": 67.75335},
    "6242L": {"IW": 39.31905, "DP0": 39.5995},
    "2080":  {"IW": 378.616,  "DP0": 388.7935},
    "2080S": {"IW": 407.095,  "DP0": 412.042},
}


def table2_bandwidth(processor_name: str, config: str = "IW") -> float:
    """Measured memory bandwidth from Table 2 (GB/s)."""
    try:
        return _TABLE2[processor_name][config]
    except KeyError as exc:
        raise KeyError(
            f"no Table 2 bandwidth for processor={processor_name!r}, config={config!r}"
        ) from exc


# ---------------------------------------------------------------------------
# Table 4: independent "computing power" in updates/s
# ---------------------------------------------------------------------------
_TABLE4: dict[str, dict[str, float]] = {
    # processor -> dataset -> updates/s
    "6242-24T": {
        "Netflix": 348_790_567.0,
        "R1": 190_891_071.0,
        "R2": 266_293_289.0,
        "MovieLens-20m": 261_609_815.0,
    },
    "6242": {  # = 6242-16T in Table 4
        "Netflix": 272_502_189.3,
        "R1": 191_469_060.9,
        "R2": 212_851_540.0,
        "MovieLens-20m": 250_860_330.0,
    },
    "2080": {
        "Netflix": 918_333_483.2,
        "R1": 801_190_194.0,
        "R2": 339_096_219.3,
        "MovieLens-20m": 835_890_148.7,
    },
    "2080S": {
        "Netflix": 1_052_866_849.0,
        "R1": 939_313_585.8,
        "R2": 354_261_902.7,
        "MovieLens-20m": 905_200_490.3,
    },
    # 10-thread 6242 ("6242l"): not a Table 4 row; extrapolated from the
    # 16T row by the Table 2 bandwidth ratio 39.32/67.30 = 0.5843.
    "6242L": {
        "Netflix": 159_232_000.0,
        "R1": 111_876_000.0,
        "R2": 124_369_000.0,
        "MovieLens-20m": 146_580_000.0,
    },
}


def table4_rate(processor_name: str, dataset_name: str) -> float | None:
    """Measured updates/s from Table 4, or None if the paper has no cell.

    R1* shares R1's locality profile (same matrix, 73% more entries).
    """
    base = dataset_name.split("@")[0]  # scaled specs are "Name@nnz"
    if base == "R1*":
        base = "R1"
    return _TABLE4.get(processor_name, {}).get(base)


# ---------------------------------------------------------------------------
# Locality fallback for datasets the paper did not measure
# ---------------------------------------------------------------------------
def dataset_footprint_gb(dataset: DatasetSpec, k: int = REFERENCE_K) -> float:
    """Resident bytes a worker needs: COO training data + both factors.

    Entries are 12 bytes (two int32 indices + one fp32 value, CuMF's
    layout); features are ``4k(m+n)`` bytes of FP32.
    """
    return (12.0 * dataset.nnz + 4.0 * k * (dataset.m + dataset.n)) / 1e9


def locality_factor(
    kind_is_gpu: bool,
    dataset: DatasetSpec,
    memory_gb: float = 8.0,
) -> float:
    """Throughput multiplier (~1 for Netflix-like data) for unmeasured cells.

    Two effects, fitted to the ordering of Table 4's per-dataset spread
    (exact cells always take priority via :func:`table4_rate`):

    * **feature reuse** — below Netflix's ~200 updates per feature row
      per epoch, cache hit rates fall; CPUs (small LLC) suffer more than
      GPUs (Table 4: R1 costs the 6242 ~45% but the GPUs only ~12%).
    * **device-memory pressure** (GPUs) — when the resident footprint
      approaches the device memory, throughput collapses (Table 4: R2's
      ~4.6 GB of entries throttle the 8 GB GPUs to ~35%).
    """
    reuse = dataset.reuse_ratio  # nnz/(m+n); Netflix ~ 199
    if kind_is_gpu:
        reuse_pen = min(1.0, (reuse / 199.0) ** 0.10)
        pressure = 1.0
        if memory_gb > 0:
            fill = dataset_footprint_gb(dataset) / memory_gb
            if fill > 0.45:
                # linear collapse beyond ~45% occupancy, floor at 0.3;
                # slope fitted to Table 4's R2 column (~0.35 at 65% fill)
                pressure = max(0.3, 1.0 - 3.3 * (fill - 0.45))
        return max(0.2, reuse_pen * pressure)
    reuse_pen = min(1.0, (reuse / 199.0) ** 0.30)
    return max(0.4, reuse_pen)


def dataset_rate(
    processor_name: str,
    kind_is_gpu: bool,
    base_rate_k128: float,
    dataset: DatasetSpec,
    memory_gb: float = 8.0,
) -> float:
    """Updates/s at k=128 for a processor on a dataset.

    Prefers the paper's measured Table 4 cell; otherwise applies the
    locality heuristic to the processor's Netflix-calibrated base rate.
    """
    measured = table4_rate(processor_name, dataset.name)
    if measured is not None:
        return measured
    netflix_cell = table4_rate(processor_name, "Netflix")
    anchor = netflix_cell if netflix_cell is not None else base_rate_k128
    return anchor * locality_factor(kind_is_gpu, dataset, memory_gb)
