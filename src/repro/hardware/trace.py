"""Chrome trace-event export/import for execution timelines.

Converts a :class:`~repro.hardware.timeline.Timeline` into the Trace
Event JSON format that ``chrome://tracing`` / Perfetto render — the
interactive counterpart of the ASCII Gantt, with one track per worker
and color-coded pull/compute/push/sync phases (the tooling equivalent
of the paper's Nsight Systems screenshots).  Works for both planes:
modeled timelines from the cost model and *real* timelines assembled
by the telemetry plane (:mod:`repro.obs`).

The importer (:func:`timeline_from_trace_events`) inverts the export,
so traces written by instrumented runs can be re-loaded for offline
analysis (``repro obs-report``).
"""

from __future__ import annotations

import json
import os

from repro.hardware.timeline import Phase, Timeline

#: chrome trace colour names per phase; span kinds the table does not
#: know (new recorder phases, ad-hoc lanes) fall back to _DEFAULT_COLOR
_COLORS = {
    Phase.PULL: "thread_state_iowait",
    Phase.COMPUTE: "thread_state_running",
    Phase.PUSH: "thread_state_runnable",
    Phase.SYNC: "terrible",
    Phase.BARRIER: "thread_state_sleeping",
    Phase.EVAL: "grey",
}

_DEFAULT_COLOR = "generic_work"

#: trace timestamps are microseconds
_US = 1e6


def _phase_name(phase) -> str:
    """Span-kind label for any phase-like value (enum or plain string)."""
    return phase.value if isinstance(phase, Phase) else str(phase)


def timeline_to_trace_events(timeline: Timeline, time_unit: float = 1.0) -> list[dict]:
    """Convert spans to complete ('X') trace events.

    ``time_unit`` scales span times to seconds (pass 1e-3 if the
    timeline was built in milliseconds).  Unknown phases render with a
    default colour instead of raising, so new span kinds from the real
    recorder always export.
    """
    if time_unit <= 0:
        raise ValueError("time_unit must be positive")
    workers = timeline.workers()
    tids = {name: i + 1 for i, name in enumerate(workers)}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }
        for name, tid in tids.items()
    ]
    for span in timeline.spans:
        events.append(
            {
                "name": _phase_name(span.phase),
                "cat": f"epoch-{span.epoch}",
                "ph": "X",
                "pid": 1,
                "tid": tids[span.worker],
                "ts": span.start * time_unit * _US,
                "dur": span.duration * time_unit * _US,
                "cname": _COLORS.get(span.phase, _DEFAULT_COLOR),
                "args": {"epoch": span.epoch, "attempt": span.attempt},
            }
        )
    return events


def export_chrome_trace(
    timeline: Timeline,
    path: str | os.PathLike,
    time_unit: float = 1.0,
) -> int:
    """Write a chrome://tracing JSON file; returns the event count."""
    events = timeline_to_trace_events(timeline, time_unit)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


# ---------------------------------------------------------------------------
# import (the inverse; obs-report reads traces back)
# ---------------------------------------------------------------------------
_PHASE_BY_VALUE = {phase.value: phase for phase in Phase}


def timeline_from_trace_events(events: list[dict]) -> Timeline:
    """Rebuild a Timeline from exported trace events.

    Thread-name metadata maps tids back to worker lanes; 'X' events
    whose name is not a known phase are skipped (foreign traces may
    carry arbitrary slices).  Timestamps come back in seconds.
    """
    names: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event["tid"]] = event.get("args", {}).get("name", str(event["tid"]))
    timeline = Timeline()
    for event in events:
        if event.get("ph") != "X":
            continue
        phase = _PHASE_BY_VALUE.get(event.get("name"))
        if phase is None:
            continue
        tid = event.get("tid")
        start = float(event.get("ts", 0.0)) / _US
        duration = float(event.get("dur", 0.0)) / _US
        args = event.get("args", {})
        timeline.add(
            names.get(tid, f"tid-{tid}"),
            phase,
            start,
            start + duration,
            epoch=int(args.get("epoch", 0)),
            attempt=int(args.get("attempt", 0)),
        )
    return timeline


def import_chrome_trace(path: str | os.PathLike) -> Timeline:
    """Load a Chrome-trace JSON file written by :func:`export_chrome_trace`."""
    with open(path) as fh:
        payload = json.load(fh)
    events = payload.get("traceEvents", payload if isinstance(payload, list) else [])
    return timeline_from_trace_events(events)
