"""Chrome trace-event export for execution timelines.

Converts a :class:`~repro.hardware.timeline.Timeline` into the Trace
Event JSON format that ``chrome://tracing`` / Perfetto render — the
interactive counterpart of the ASCII Gantt, with one track per worker
and color-coded pull/compute/push/sync phases (the tooling equivalent
of the paper's Nsight Systems screenshots).
"""

from __future__ import annotations

import json
import os

from repro.hardware.timeline import Phase, Timeline

#: chrome trace colour names per phase
_COLORS = {
    Phase.PULL: "thread_state_iowait",
    Phase.COMPUTE: "thread_state_running",
    Phase.PUSH: "thread_state_runnable",
    Phase.SYNC: "terrible",
}

#: trace timestamps are microseconds
_US = 1e6


def timeline_to_trace_events(timeline: Timeline, time_unit: float = 1.0) -> list[dict]:
    """Convert spans to complete ('X') trace events.

    ``time_unit`` scales span times to seconds (pass 1e-3 if the
    timeline was built in milliseconds).
    """
    if time_unit <= 0:
        raise ValueError("time_unit must be positive")
    workers = timeline.workers()
    tids = {name: i + 1 for i, name in enumerate(workers)}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        }
        for name, tid in tids.items()
    ]
    for span in timeline.spans:
        events.append(
            {
                "name": span.phase.value,
                "cat": f"epoch-{span.epoch}",
                "ph": "X",
                "pid": 1,
                "tid": tids[span.worker],
                "ts": span.start * time_unit * _US,
                "dur": span.duration * time_unit * _US,
                "cname": _COLORS[span.phase],
                "args": {"epoch": span.epoch},
            }
        )
    return events


def export_chrome_trace(
    timeline: Timeline,
    path: str | os.PathLike,
    time_unit: float = 1.0,
) -> int:
    """Write a chrome://tracing JSON file; returns the event count."""
    events = timeline_to_trace_events(timeline, time_unit)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)
