"""Multi-CPU/GPU platform substrate (simulated).

The paper's testbed is a workstation with two Xeon Gold 6242 CPUs, one
RTX 2080 and one RTX 2080 Super, wired by PCI-E 3.0 x16 and Intel UPI
(section 4.1).  No such hardware is available here, so this subpackage
implements the platform as a *calibrated analytical model*: the paper's
own time-cost analysis (Eq. 2-4) says SGD-MF compute is
memory-bandwidth-bound and communication is bus-bandwidth-bound, and we
implement exactly that machinery, with throughput constants calibrated
to the paper's measurements (Table 2 bandwidths, Table 4 update rates).

See DESIGN.md section 2 for the substitution rationale and section 5
for the calibration details.
"""

from repro.hardware.specs import (
    ProcessorKind,
    ProcessorSpec,
    BusSpec,
    BusKind,
    XEON_6242,
    XEON_6242L_10T,
    RTX_2080,
    RTX_2080S,
    TESLA_V100,
    PCIE3_X16,
    UPI,
    QPI,
    SHARED_MEMORY,
    PROCESSOR_CATALOG,
    BUS_CATALOG,
)
from repro.hardware.calibration import (
    table2_bandwidth,
    table4_rate,
    locality_factor,
    REFERENCE_K,
)
from repro.hardware.processor import Processor
from repro.hardware.topology import Platform, paper_workstation, single_processor
from repro.hardware.timeline import Phase, Span, Timeline
from repro.hardware.streams import pipeline_schedule, PipelineResult
from repro.hardware.profiler import measure_copy_bandwidth_gbs, measure_update_rate
from repro.hardware.trace import export_chrome_trace, timeline_to_trace_events
from repro.hardware.energy import EnergyReport, processor_energy, run_energy, IDLE_POWER_FRACTION

__all__ = [
    "ProcessorKind",
    "ProcessorSpec",
    "BusSpec",
    "BusKind",
    "XEON_6242",
    "XEON_6242L_10T",
    "RTX_2080",
    "RTX_2080S",
    "TESLA_V100",
    "PCIE3_X16",
    "UPI",
    "QPI",
    "SHARED_MEMORY",
    "PROCESSOR_CATALOG",
    "BUS_CATALOG",
    "table2_bandwidth",
    "table4_rate",
    "locality_factor",
    "REFERENCE_K",
    "Processor",
    "Platform",
    "paper_workstation",
    "single_processor",
    "Phase",
    "Span",
    "Timeline",
    "pipeline_schedule",
    "PipelineResult",
    "measure_copy_bandwidth_gbs",
    "measure_update_rate",
    "export_chrome_trace",
    "timeline_to_trace_events",
    "EnergyReport",
    "processor_energy",
    "run_energy",
    "IDLE_POWER_FRACTION",
]
