"""Runtime profiling probes (the Intel PCM / Nsight Systems stand-in).

The paper uses Intel PCM and NVIDIA Nsight to measure each worker's
*runtime* memory bandwidth, which feeds DP1's compensation loop
(Algorithm 1 re-measures computing times after each re-partition).
On this substrate the equivalents are wall-clock probes of the NumPy
kernels: effective copy bandwidth and achieved SGD update rate.

Each probe has two forms: ``probe_*`` returns a :class:`ProbeResult`
(value plus how it was measured — repeats, elapsed) that can feed the
telemetry metrics registry, and the original ``measure_*`` wrappers
keep returning bare floats for existing callers (DP1 tuning, benches).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_epoch
from repro.mf.model import MFModel


@dataclass(frozen=True)
class ProbeResult:
    """One probe measurement: the value plus its provenance.

    ``value`` is in ``unit``; ``repeats`` is how many timed runs were
    taken; ``elapsed_seconds`` is total probe wall-clock (what the
    probe itself cost, so instrumented runs can account for it).
    """

    value: float
    unit: str
    repeats: int
    elapsed_seconds: float

    def record_to(self, registry, name: str) -> None:
        """Feed this measurement into a metrics registry.

        ``registry`` is a :class:`repro.obs.registry.MetricsRegistry`
        (duck-typed so this module never imports :mod:`repro.obs`).
        """
        registry.gauge(name, f"probe measurement ({self.unit})").set(
            self.value, unit=self.unit
        )
        registry.event(
            "probe", name=name, value=self.value, unit=self.unit,
            repeats=self.repeats, elapsed_seconds=self.elapsed_seconds,
        )


def probe_copy_bandwidth(
    nbytes: int = 64 * 1024 * 1024, repeats: int = 3
) -> ProbeResult:
    """Measured host memory copy bandwidth (GB/s) with provenance.

    Copies a buffer of ``nbytes`` ``repeats`` times and reports the
    best rate (read + write traffic counted once, matching how PCM's
    numbers are usually quoted).
    """
    if nbytes <= 0 or repeats <= 0:
        raise ValueError("nbytes and repeats must be positive")
    src = np.ones(nbytes // 8, dtype=np.float64)
    dst = np.empty_like(src)
    best = float("inf")
    probe_t0 = time.perf_counter()
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.copyto(dst, src)
        best = min(best, time.perf_counter() - t0)
    return ProbeResult(
        value=nbytes / best / 1e9,
        unit="GB/s",
        repeats=repeats,
        elapsed_seconds=time.perf_counter() - probe_t0,
    )


def probe_update_rate(
    ratings: RatingMatrix,
    k: int = 32,
    batch_size: int = 4096,
    policy: ConflictPolicy = ConflictPolicy.ATOMIC,
    seed: int = 0,
) -> ProbeResult:
    """Achieved SGD updates/s of the local NumPy kernel, with provenance.

    One timed epoch over ``ratings``; used by the wall-clock executor
    path, by DP1 when running against real (not simulated) workers, and
    by the drift report's Eq. 2 compute prediction.
    """
    model = MFModel.init_for(ratings, k, seed=seed)
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    sgd_epoch(model, ratings, lr=0.005, reg=0.01, batch_size=batch_size, policy=policy, rng=rng)
    elapsed = time.perf_counter() - t0
    if elapsed <= 0:  # pragma: no cover - clock resolution guard
        rate = float("inf")
    else:
        rate = ratings.nnz / elapsed
    return ProbeResult(
        value=rate, unit="updates/s", repeats=1, elapsed_seconds=elapsed
    )


# ---------------------------------------------------------------------------
# float-returning compatibility wrappers
# ---------------------------------------------------------------------------
def measure_copy_bandwidth_gbs(nbytes: int = 64 * 1024 * 1024, repeats: int = 3) -> float:
    """Measured host memory copy bandwidth in GB/s (bare float)."""
    return probe_copy_bandwidth(nbytes=nbytes, repeats=repeats).value


def measure_update_rate(
    ratings: RatingMatrix,
    k: int = 32,
    batch_size: int = 4096,
    policy: ConflictPolicy = ConflictPolicy.ATOMIC,
    seed: int = 0,
) -> float:
    """Achieved SGD updates/s of the local NumPy kernel (bare float)."""
    return probe_update_rate(
        ratings, k=k, batch_size=batch_size, policy=policy, seed=seed
    ).value
