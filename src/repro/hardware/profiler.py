"""Runtime profiling probes (the Intel PCM / Nsight Systems stand-in).

The paper uses Intel PCM and NVIDIA Nsight to measure each worker's
*runtime* memory bandwidth, which feeds DP1's compensation loop
(Algorithm 1 re-measures computing times after each re-partition).
On this substrate the equivalents are wall-clock probes of the NumPy
kernels: effective copy bandwidth and achieved SGD update rate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_epoch
from repro.mf.model import MFModel


def measure_copy_bandwidth_gbs(nbytes: int = 64 * 1024 * 1024, repeats: int = 3) -> float:
    """Measured host memory copy bandwidth in GB/s.

    Copies a buffer of ``nbytes`` ``repeats`` times and reports the
    best rate (read + write traffic counted once, matching how PCM's
    numbers are usually quoted).
    """
    if nbytes <= 0 or repeats <= 0:
        raise ValueError("nbytes and repeats must be positive")
    src = np.ones(nbytes // 8, dtype=np.float64)
    dst = np.empty_like(src)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.copyto(dst, src)
        best = min(best, time.perf_counter() - t0)
    return nbytes / best / 1e9


def measure_update_rate(
    ratings: RatingMatrix,
    k: int = 32,
    batch_size: int = 4096,
    policy: ConflictPolicy = ConflictPolicy.ATOMIC,
    seed: int = 0,
) -> float:
    """Achieved SGD updates/s of the local NumPy kernel on this host.

    One timed epoch over ``ratings``; used by the wall-clock executor
    path and by DP1 when running against real (not simulated) workers.
    """
    model = MFModel.init_for(ratings, k, seed=seed)
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    sgd_epoch(model, ratings, lr=0.005, reg=0.01, batch_size=batch_size, policy=policy, rng=rng)
    elapsed = time.perf_counter() - t0
    if elapsed <= 0:  # pragma: no cover - clock resolution guard
        return float("inf")
    return ratings.nnz / elapsed
