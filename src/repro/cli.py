"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the Table 3 dataset registry with shape statistics.
``platforms``
    Describe the canonical platform configurations.
``train``
    Run one HCC-MF training (numeric + timing planes) and print the
    convergence curve, partition, and utilization.
``autotune``
    Search the strategy space (transmit x FP16 x streams) for a dataset
    and report the predicted-fastest stack plus advice.
``analyze``
    Profile a dataset's structure (reuse, skew, conflict probability)
    and print the recommended strategy stack.
``reproduce``
    Regenerate paper tables/figures (all, or selected ids).
``ablate``
    Run the ablation sweeps (all, or selected ids).
``lint``
    Run hcclint, the domain static analyzer, over source paths.
``obs-report``
    Summarize an instrumented run offline from its ``--trace`` /
    ``--metrics`` / ``--hotpaths`` artifacts (ASCII Gantt, phase
    totals, metric values, stage-attributed hotpath table).
``bench``
    Run perf suites from the extensible suite registry (pinned train
    sections kernel/epoch/wire by default; registered extensions like
    ``serving`` via ``--suites``), emit a schema-versioned
    ``BENCH_train.json``, compare against an older document with
    noise-aware regression verdicts (exit code 3 on regression), or
    profile a run per engine stage (``--profile``).
``serve-bench``
    Run the serving plane's load-generation suite (batched top-k over a
    checkpoint snapshot) and emit ``BENCH_serving.json`` with p50/p99
    latency and QPS; optionally check a declared SLO (exit 1 on
    violation) and ``--compare`` against an older serving document
    (exit 3 on regression), using the same schema + compare machinery
    as ``bench``.
``race-check``
    Prove the P-row ownership and one-copy buffer invariants with the
    dynamic race detector (DP0/DP1/DP2 plans, optional injected bug).
``engine-parity``
    Run the same tiny workload through the sim and process backends of
    the epoch engine and fail if their stage sequences or per-epoch
    update counts diverge (the planes-unified gate of scripts/check.sh).
``chaos-parity``
    Run the seeded fault matrix through both planes and hold them to
    the differential contract (identical recovery decisions and final
    fractions, RMSE within tolerance, degraded-cost drift within
    bound), plus a randomized sim-only invariant sweep.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.data.datasets import DATASETS
    from repro.experiments.tables import render_table

    rows = [
        [s.name, s.m, s.n, s.nnz, s.reg, f"{s.rating_min:g}-{s.rating_max:g}",
         f"{s.reuse_ratio:,.0f}"]
        for s in DATASETS.values()
    ]
    print(render_table(
        ["dataset", "m", "n", "nnz", "reg", "scale", "nnz/(m+n)"],
        rows, title="Table 3 dataset registry",
    ))
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.experiments.platforms import (
        hetero_platform,
        overall_platform,
        workers_platform,
    )

    for label, platform in (
        ("overall performance (CPU_0 @ 16T)", overall_platform()),
        ("heterogeneity (CPU_0 @ 10T)", hetero_platform()),
        ("3-worker scaling config", workers_platform(3)),
    ):
        print(f"== {label} ==")
        print(platform.describe())
        print(f"hardware cost: ${platform.total_price():,.0f}\n")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.executor == "process":
        return _train_process(args)
    return _train_model(args)


def _train_model(args: argparse.Namespace) -> int:
    """The default executor: timing plane + in-process numeric plane."""
    from repro.core.config import CommConfig, HCCConfig, PartitionStrategy, TransmitMode
    from repro.core.framework import HCCMF
    from repro.data.datasets import get_dataset
    from repro.experiments.platforms import overall_platform

    spec = get_dataset(args.dataset)
    ratings = None
    if not args.timing_only:
        ratings = spec.scaled(args.nnz).generate(seed=args.seed)
    config = HCCConfig(
        k=args.k,
        epochs=args.epochs,
        learning_rate=args.lr,
        seed=args.seed,
        partition=PartitionStrategy(args.partition),
        comm=CommConfig(
            transmit=TransmitMode(args.transmit),
            fp16=args.fp16,
            streams=args.streams,
        ),
    )
    hcc = HCCMF(overall_platform(), spec, config, ratings=ratings)
    telemetry = None
    if (args.metrics or args.drift) and ratings is not None:
        from repro.obs import Telemetry

        telemetry = Telemetry()
    result = hcc.train(telemetry=telemetry)

    print(f"dataset: {spec.name}  partition: {result.plan.strategy} "
          f"({result.regime.value})")
    for worker, frac in zip(hcc.platform.workers, result.plan.fractions):
        print(f"  {worker.name:18s} {frac:6.1%}")
    if result.rmse_history:
        print("rmse:", " ".join(f"{r:.4f}" for r in result.rmse_history))
    print(f"modeled time: {result.total_time:.3f}s for {result.epochs} epochs "
          f"({result.utilization:.0%} of ideal computing power)")
    if args.trace:
        from repro.hardware.trace import export_chrome_trace

        n = export_chrome_trace(result.timeline, args.trace)
        print(f"wrote {n} trace events to {args.trace} (open in chrome://tracing)")
    if telemetry is not None and args.metrics:
        n = telemetry.write_metrics_jsonl(args.metrics)
        print(f"wrote {n} metric lines to {args.metrics}")
    if args.drift:
        if telemetry is None:
            print("--drift needs the numeric plane (drop --timing-only)",
                  file=sys.stderr)
            return 2
        # the model executor's reference is its own analytic epoch cost;
        # measured wall-clock spans are joined against Eq. 1-5 output
        report = _model_drift(telemetry, result)
        print(report.render())
    return 0


def _model_drift(telemetry, result):
    from repro.obs import compare, predictions_from_epoch_cost

    predictions = predictions_from_epoch_cost(result.epoch_cost)
    # simulated-plane lanes are worker-<id>; map analytic worker names
    lanes = {wc.name: f"worker-{i}" for i, wc in enumerate(result.epoch_cost.workers)}
    predictions = {
        (lanes.get(worker, worker), phase): t
        for (worker, phase), t in predictions.items()
    }
    return compare(telemetry.timeline, predictions, result.epochs)


def _train_process(args: argparse.Namespace) -> int:
    """The wall-clock executor: real worker processes over shared memory."""
    from repro.core.config import CommConfig, TransmitMode
    from repro.data.datasets import get_dataset
    from repro.engine import channel_for
    from repro.obs import Telemetry
    from repro.parallel.executor import SharedMemoryTrainer

    if args.timing_only:
        print("--executor process always trains numerically "
              "(drop --timing-only)", file=sys.stderr)
        return 2
    if args.transmit == "pq":
        print("--executor process is Strategy-1 by construction (P lives in "
              "shared memory); --transmit pq only applies to --executor model",
              file=sys.stderr)
        return 2
    if args.transmit == "q-rotate":
        print("--transmit q-rotate has no pull/push/sync stages for the "
              "process engine to drive; use --executor model", file=sys.stderr)
        return 2
    if args.partition == "dp2":
        print("--partition dp2 staggers against *modeled* sync costs; the "
              "wall-clock plane supports even/dp0/dp1 (use --executor model)",
              file=sys.stderr)
        return 2
    spec = get_dataset(args.dataset)
    ratings = spec.scaled(args.nnz).generate(seed=args.seed)
    channel = channel_for(
        CommConfig(transmit=TransmitMode(args.transmit), fp16=args.fp16,
                   streams=args.streams),
        ratings.m, ratings.n,
    )
    partition = None
    if args.partition in ("dp0", "dp1"):
        from repro.parallel.tuning import measure_partition

        measured = measure_partition(
            ratings, args.workers, k=args.k,
            refine=args.partition == "dp1", seed=args.seed,
        )
        partition = measured.plan
        fracs = " ".join(f"{f:.1%}" for f in partition.fractions)
        print(f"measured {args.partition} partition: {fracs} "
              f"(calibration {measured.calibration_seconds:.2f}s)")
    instrumented = bool(args.trace or args.metrics or args.drift)
    telemetry = Telemetry() if instrumented else None
    trainer = SharedMemoryTrainer(
        ratings,
        k=args.k,
        n_workers=args.workers,
        lr=args.lr,
        seed=args.seed,
        partition=partition,
        channel=channel,
        telemetry=telemetry,
    )
    result = trainer.train(args.epochs)
    print(f"dataset: {spec.name}  executor: process x{args.workers}  "
          f"channel: {channel.describe()}")
    print("rmse:", " ".join(f"{r:.4f}" for r in result.rmse_history))
    print(f"wall-clock: {result.elapsed_seconds:.3f}s for {result.epochs} epochs "
          f"({result.updates_per_second:,.0f} updates/s)")
    if telemetry is not None:
        if args.trace:
            n = telemetry.export_chrome_trace(args.trace)
            print(f"wrote {n} trace events to {args.trace} (open in Perfetto)")
        if args.metrics:
            n = telemetry.write_metrics_jsonl(args.metrics)
            print(f"wrote {n} metric lines to {args.metrics}")
        if args.drift:
            print(telemetry.drift_report().render())
    return 0


def _cmd_engine_parity(args: argparse.Namespace) -> int:
    """Diff the two planes' executed pipelines through the epoch engine.

    Runs one identical workload (same ratings, channel stack, even
    partition) through :class:`SimBackend` and :class:`ProcessBackend`
    and compares the engine's stage trace: the executed ``(epoch,
    stage)`` sequence and the per-epoch per-worker SGD update counts.
    Any divergence means the planes no longer run the same pipeline.
    """
    from repro.data.datasets import get_dataset
    from repro.engine import EpochEngine, ProcessBackend, QOnlyChannel, SimBackend
    from repro.experiments.platforms import workers_platform

    spec = get_dataset(args.dataset)
    ratings = spec.scaled(args.nnz).generate(seed=args.seed)

    sim_backend = SimBackend(
        workers_platform(args.workers),
        ratings=ratings,
        eval_data=ratings,
        k=args.k,
        lr=args.lr,
        reg=0.02,
        batch_size=2048,
        seed=args.seed,
    )
    sim = EpochEngine(sim_backend, channel=QOnlyChannel()).run(args.epochs)

    proc_backend = ProcessBackend(
        ratings,
        k=args.k,
        n_workers=args.workers,
        lr=args.lr,
        reg=0.02,
        batch_size=2048,
        seed=args.seed,
    )
    proc = EpochEngine(proc_backend, channel=QOnlyChannel()).run(args.epochs)

    ok = True
    if sim.stage_sequence() != proc.stage_sequence():
        ok = False
        print("FAIL: stage sequences diverge")
        print(f"  sim ({sim.backend}):     {sim.stage_sequence()}")
        print(f"  process ({proc.backend}): {proc.stage_sequence()}")
    else:
        print(f"stage sequence: identical — {len(sim.stage_trace)} stages "
              f"over {args.epochs} epochs "
              f"({' -> '.join(s for _, s in sim.stage_sequence()[:4])} per epoch)")
    sim_updates, proc_updates = sim.epoch_updates(), proc.epoch_updates()
    if sim_updates != proc_updates:
        ok = False
        print("FAIL: per-epoch update counts diverge")
        for epoch in sorted(set(sim_updates) | set(proc_updates)):
            print(f"  epoch {epoch}: sim {sim_updates.get(epoch)} "
                  f"vs process {proc_updates.get(epoch)}")
    else:
        print(f"update counts: identical — {sim.updates_applied:,} SGD "
              f"updates per plane across {args.workers} workers")
    print(f"parity: {'OK' if ok else 'FAILED'} "
          f"(dataset {spec.name}, nnz {ratings.nnz}, k {args.k})")
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """The pinned perf suite: run / compare / profile."""
    from repro.obs.bench import (
        EXIT_REGRESSION,
        BenchConfig,
        BenchValidationError,
        available_suites,
        compare_docs,
        load_bench,
        run_suite,
        write_bench,
    )

    suites = tuple(s for s in args.suites.split(",") if s)
    unknown = set(suites) - set(available_suites())
    if unknown:
        print(f"unknown suite(s) {sorted(unknown)}; "
              f"available: {list(available_suites())}", file=sys.stderr)
        return 2

    if args.compare and args.against:
        # pure file-vs-file compare: no suite run
        try:
            old = load_bench(args.compare)
            new = load_bench(args.against)
        except (OSError, ValueError) as exc:
            print(f"cannot load bench document: {exc}", file=sys.stderr)
            return 2
        report = compare_docs(old, new, threshold_pct=args.threshold)
        print(report.render())
        return 0 if report.ok else EXIT_REGRESSION

    if args.profile:
        return _bench_profile(args)

    overrides = {}
    if args.nnz is not None:
        overrides["nnz"] = args.nnz
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    config = (
        BenchConfig.quick_config(**overrides)
        if args.quick
        else BenchConfig(**overrides)
    )
    doc = run_suite(config, suites=suites, log=print)
    try:
        write_bench(doc, args.out)
    except BenchValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"wrote {args.out} ({len(doc['metrics'])} metrics, "
          f"git {doc['provenance']['git_sha'][:12]})")
    if args.compare:
        try:
            old = load_bench(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load bench document: {exc}", file=sys.stderr)
            return 2
        report = compare_docs(old, doc, threshold_pct=args.threshold)
        print(report.render())
        return 0 if report.ok else EXIT_REGRESSION
    return 0


def _bench_profile(args: argparse.Namespace) -> int:
    """One stage-profiled process-plane run + the hotpath report."""
    from repro.obs.bench import BenchConfig, kernel_workload
    from repro.obs.profile import StageProfiler
    from repro.parallel.executor import SharedMemoryTrainer

    config = BenchConfig.quick_config() if args.quick else BenchConfig()
    if args.nnz is not None:
        config = BenchConfig(**{**config.__dict__, "nnz": args.nnz})
    ratings = kernel_workload(config.nnz, config.seed)
    profiler = StageProfiler()
    try:
        SharedMemoryTrainer(
            ratings, k=config.k, n_workers=config.workers,
            seed=config.seed, batch_size=config.batch_size,
            profile=profiler,
        ).train(config.epochs)
        report = profiler.report()
    finally:
        profiler.cleanup()
    print(report.render(top_n=args.top))
    if args.profile_out:
        report.save(args.profile_out)
        print(f"wrote {args.profile_out}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Offline view of an instrumented run's artifacts."""
    from repro.hardware.trace import import_chrome_trace
    from repro.obs import read_metrics_jsonl

    shown = False
    if getattr(args, "hotpaths", None):
        from repro.obs.profile import StageProfileReport

        try:
            report = StageProfileReport.load(args.hotpaths)
        except (OSError, ValueError) as exc:
            print(f"cannot read hotpaths: {exc}", file=sys.stderr)
            return 2
        print(f"hotpaths: {args.hotpaths}")
        print(report.render(top_n=getattr(args, "top", 10)))
        shown = True
    if args.trace:
        try:
            timeline = import_chrome_trace(args.trace)
        except OSError as exc:
            print(f"cannot read trace: {exc}", file=sys.stderr)
            return 2
        if len(timeline):
            print(f"trace: {args.trace}  ({len(timeline)} spans, "
                  f"makespan {timeline.makespan():.4f}s)")
            print(timeline.ascii_gantt(width=64))
            for worker in timeline.workers():
                totals = ", ".join(
                    f"{phase.value} {total:.4f}s"
                    for phase, total in timeline.phase_totals(worker).items()
                    if total > 0
                )
                print(f"  {worker:12s} {totals}")
        else:
            print(f"trace: {args.trace}  (no spans)")
        shown = True
    if args.metrics:
        try:
            events, samples = read_metrics_jsonl(args.metrics)
        except OSError as exc:
            print(f"cannot read metrics: {exc}", file=sys.stderr)
            return 2
        print(f"metrics: {args.metrics}  ({len(events)} events, "
              f"{len(samples)} samples)")
        for line in samples:
            labels = ",".join(f"{k}={v}" for k, v in sorted(line["labels"].items()))
            print(f"  {line['name']}{{{labels}}} = {line['value']:g}")
        shown = True
    if not shown:
        print("nothing to report: pass --trace, --metrics and/or --hotpaths",
              file=sys.stderr)
        return 2
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from repro.core.autotune import autotune
    from repro.data.datasets import get_dataset
    from repro.experiments.platforms import overall_platform
    from repro.experiments.tables import render_table

    spec = get_dataset(args.dataset)
    report = autotune(
        overall_platform(), spec, k=args.k, epochs=args.epochs,
        include_rotation=not args.no_rotation,
    )
    rows = [
        [t.label, t.total_time, t.epoch_time * 1e3, f"{t.utilization_proxy:.1%}"]
        for t in report.ranking
    ]
    print(render_table(
        ["strategy stack", "total_s", "epoch_ms", "busy"],
        rows, title=f"auto-tuning {spec.name} ({args.epochs} epochs, k={args.k})",
    ))
    print(f"\nbest: {report.best.label}")
    print(f"advice: {report.advice}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.data.analysis import profile, render_profile
    from repro.data.datasets import get_dataset
    from repro.data.io import load_movielens_csv, load_npz, load_text

    if args.file:
        path = args.file
        if path.endswith(".npz"):
            ratings = load_npz(path)
        elif path.endswith(".csv"):
            ratings, _, _ = load_movielens_csv(path)
        else:
            ratings = load_text(path)
        print(f"file: {path}")
    else:
        spec = get_dataset(args.dataset).scaled(args.nnz)
        ratings = spec.generate(seed=args.seed)
        print(f"synthetic: {spec.name}")
    print(render_profile(profile(ratings)))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ALL_EXPERIMENTS

    ids = args.ids or list(ALL_EXPERIMENTS)
    unknown = set(ids) - set(ALL_EXPERIMENTS)
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}", file=sys.stderr)
        print(f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for exp_id in ids:
        print(ALL_EXPERIMENTS[exp_id]().render())
        print()
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import ALL_ABLATIONS

    ids = args.ids or list(ALL_ABLATIONS)
    unknown = set(ids) - set(ALL_ABLATIONS)
    if unknown:
        print(f"unknown ablation ids: {sorted(unknown)}", file=sys.stderr)
        print(f"available: {sorted(ALL_ABLATIONS)}", file=sys.stderr)
        return 2
    for ab_id in ids:
        print(ALL_ABLATIONS[ab_id]().render())
        print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.baseline import Baseline, BaselineError
    from repro.analysis.lint import (
        Severity,
        all_rules,
        filter_rules,
        flow_rules,
        lint_paths,
    )
    from repro.analysis.reporters import (
        render_json,
        render_rules,
        render_sarif,
        render_text,
    )

    ast_rules = all_rules()
    hcc2xx = flow_rules()
    if args.rules:
        print(render_rules(ast_rules + hcc2xx))
        return 0
    # flow rules are opt-in (--flow), but an explicit --select naming
    # them (e.g. --select HCC2) enables exactly what it names
    try:
        chosen = filter_rules(ast_rules + hcc2xx, args.select, args.ignore)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not args.flow and not args.select:
        flow_ids = {r.rule_id for r in hcc2xx}
        chosen = [r for r in chosen if r.rule_id not in flow_ids]
    paths = args.paths or ["src"]
    threshold = Severity.parse(args.min_severity)
    try:
        issues = lint_paths(paths, rules=chosen)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            fh.write(Baseline.from_issues(issues).to_json() + "\n")
        print(
            f"wrote baseline with {len(issues)} finding(s) to {args.write_baseline}"
        )
        return 0

    baselined: list = []
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (FileNotFoundError, BaselineError) as exc:
            print(f"cannot use baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        issues, baselined = baseline.apply(issues)

    fmt = args.format or ("json" if args.json else "text")
    if fmt == "json":
        print(render_json(issues))
    elif fmt == "sarif":
        print(render_sarif(issues, rules=chosen))
    else:
        print(render_text(issues))
        if baselined:
            print(
                f"(+ {len(baselined)} baselined finding(s) "
                f"suppressed by {args.baseline})"
            )
    return 1 if any(i.severity >= threshold for i in issues) else 0


def _cmd_fault_smoke(args: argparse.Namespace) -> int:
    """End-to-end resilience smoke: kill a worker mid-run, recover, compare.

    Trains the same synthetic workload twice on the process plane — once
    fault-free, once with a worker killed by an injected fault and a
    recovery policy active — and requires the recovered run to finish
    every epoch with a final RMSE within ``--tolerance`` of the
    fault-free baseline, having redistributed the dead worker's shard.
    """
    from repro.core.config import RecoveryPolicy
    from repro.data.datasets import get_dataset
    from repro.parallel.executor import SharedMemoryTrainer
    from repro.resilience import FaultPlan

    if args.workers < 2:
        print("fault-smoke needs at least 2 workers (one dies)", file=sys.stderr)
        return 2
    spec = get_dataset(args.dataset)
    ratings = spec.scaled(args.nnz).generate(seed=args.seed)

    baseline = SharedMemoryTrainer(
        ratings, k=args.k, n_workers=args.workers, seed=args.seed
    ).train(epochs=args.epochs)

    victim = args.workers - 1
    kill_epoch = min(1, args.epochs - 1)
    faulted = SharedMemoryTrainer(
        ratings,
        k=args.k,
        n_workers=args.workers,
        seed=args.seed,
        fault_plan=FaultPlan().kill(victim, epoch=kill_epoch),
        recovery=RecoveryPolicy(),
        barrier_timeout_s=args.barrier_timeout,
    ).train(epochs=args.epochs)

    summary = faulted.resilience
    rel = abs(faulted.rmse_history[-1] - baseline.rmse_history[-1]) / abs(
        baseline.rmse_history[-1]
    )
    print(f"baseline: rmse {baseline.rmse_history[-1]:.6f} over "
          f"{args.epochs} epochs, {args.workers} workers")
    print(f"faulted:  rmse {faulted.rmse_history[-1]:.6f}, "
          f"worker-{victim} killed at epoch {kill_epoch}")
    print(f"recovery: {summary.describe()}")
    for line in summary.failures:
        print(f"  {line}")
    ok = True
    if len(faulted.rmse_history) != args.epochs:
        ok = False
        print(f"FAIL: faulted run finished only "
              f"{len(faulted.rmse_history)}/{args.epochs} epochs")
    if summary.redistributions < 1:
        ok = False
        print("FAIL: dead worker's shard was never redistributed")
    if faulted.n_workers != args.workers - 1:
        ok = False
        print(f"FAIL: expected {args.workers - 1} surviving workers, "
              f"got {faulted.n_workers}")
    if rel > args.tolerance:
        ok = False
        print(f"FAIL: final RMSE diverged {rel:.2%} from baseline "
              f"(tolerance {args.tolerance:.2%})")
    else:
        print(f"final RMSE within {rel:.2%} of baseline "
              f"(tolerance {args.tolerance:.2%})")
    print(f"fault-smoke: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_chaos_parity(args: argparse.Namespace) -> int:
    """Differential chaos gate: both planes, same faults, same story.

    Runs the named default matrix: the first ``--process-scenarios``
    scenarios go through *both* backends and are held to the parity
    contract; the remainder run sim-only against the safety invariants.
    Then sweeps ``--sim-scenarios`` seeded randomized scenarios
    (sim-only, fast) for the same invariants.  Any violation prints the
    reproducing seed.
    """
    from repro.testing import (
        check_invariants,
        check_parity,
        default_matrix,
        generate_scenarios,
        run_scenario,
    )

    matrix = default_matrix(args.seed)
    n_both = len(matrix) if args.process_scenarios < 0 else args.process_scenarios
    ok = True
    for i, scenario in enumerate(matrix):
        if i < n_both:
            sim = run_scenario(scenario, "sim")
            process = run_scenario(scenario, "process")
            report = check_parity(
                sim, process,
                rmse_rel_tol=args.rmse_tol,
                drift_bound=args.drift_bound,
            )
            print(report.describe())
            if not report.ok:
                ok = False
                print(f"  reproduce: {scenario.describe()}")
            for plane, outcome in (("sim", sim), ("process", process)):
                for problem in check_invariants(scenario, outcome):
                    ok = False
                    print(f"  INVARIANT [{plane}] {problem} "
                          f"({scenario.describe()})")
        else:
            outcome = run_scenario(scenario, "sim")
            problems = check_invariants(scenario, outcome)
            status = "ok" if not problems else "FAIL"
            print(f"scenario {scenario.name} (sim only): {status}")
            for problem in problems:
                ok = False
                print(f"  INVARIANT {problem} ({scenario.describe()})")
    if args.sim_scenarios > 0:
        clean = 0
        for scenario in generate_scenarios(args.seed, args.sim_scenarios):
            outcome = run_scenario(scenario, "sim")
            problems = check_invariants(scenario, outcome)
            if problems:
                ok = False
                for problem in problems:
                    print(f"  INVARIANT {problem} ({scenario.describe()})")
            else:
                clean += 1
        print(f"randomized sweep: {clean}/{args.sim_scenarios} scenarios clean")
    print(f"chaos-parity: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """The serving perf suite: load-generate, SLO-check, compare."""
    from repro.obs.bench import (
        EXIT_REGRESSION,
        BenchConfig,
        BenchValidationError,
        compare_docs,
        load_bench,
        write_bench,
    )
    from repro.serving.bench import ServingBenchConfig, run_serving_suite
    from repro.serving.loadgen import SLO

    if args.compare and args.against:
        # pure file-vs-file compare: no suite run
        try:
            old = load_bench(args.compare)
            new = load_bench(args.against)
        except (OSError, ValueError) as exc:
            print(f"cannot load bench document: {exc}", file=sys.stderr)
            return 2
        report = compare_docs(old, new, threshold_pct=args.threshold)
        print(report.render())
        return 0 if report.ok else EXIT_REGRESSION

    overrides = {}
    if args.nnz is not None:
        overrides["nnz"] = args.nnz
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    config = (
        BenchConfig.quick_config(**overrides)
        if args.quick
        else BenchConfig(**overrides)
    )
    base = ServingBenchConfig.from_bench(config)
    try:
        serving = ServingBenchConfig(
            requests=args.requests if args.requests is not None else base.requests,
            batch_size=args.batch if args.batch is not None else base.batch_size,
            topk=args.topk if args.topk is not None else base.topk,
            mode=args.mode if args.mode is not None else base.mode,
            concurrency=(
                args.concurrency if args.concurrency is not None
                else base.concurrency
            ),
            rate_qps=args.rate if args.rate is not None else base.rate_qps,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    slo = SLO(p50_ms=args.slo_p50_ms, p99_ms=args.slo_p99_ms,
              min_qps=args.slo_min_qps)

    doc = run_serving_suite(config, serving=serving, slo=slo, log=print)
    try:
        write_bench(doc, args.out)
    except BenchValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"wrote {args.out} ({len(doc['metrics'])} metrics, "
          f"git {doc['provenance']['git_sha'][:12]})")
    for metric in doc["metrics"]:
        print(f"  {metric['name']:28s} {metric['mean']:>12.4f} {metric['unit']}")

    slo_failed = False
    if "slo" in doc:
        if doc["slo"]["ok"]:
            print("SLO: all declared targets met")
        else:
            slo_failed = True
            for violation in doc["slo"]["violations"]:
                print(f"SLO VIOLATED: {violation}")

    if args.compare:
        try:
            old = load_bench(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load bench document: {exc}", file=sys.stderr)
            return 2
        report = compare_docs(old, doc, threshold_pct=args.threshold)
        print(report.render())
        if not report.ok:
            return EXIT_REGRESSION
    return 1 if slo_failed else 0


def _cmd_race_check(args: argparse.Namespace) -> int:
    from repro.analysis.race import race_check

    if args.inject_overlap and args.workers < 2:
        print(
            "note: --inject-overlap needs at least 2 workers; "
            "skipping the detector self-test",
            file=sys.stderr,
        )
    result = race_check(
        n_workers=args.workers,
        nnz=args.nnz,
        epochs=args.epochs,
        seed=args.seed,
        with_injected_overlap=args.inject_overlap,
    )
    if args.format == "sarif":
        from repro.analysis.reporters import render_race_sarif

        print(render_race_sarif(result))
    else:
        print(result.render())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HCC-MF: multi-CPU/GPU collaborative SGD-based matrix factorization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 3 dataset registry")
    sub.add_parser("platforms", help="describe the canonical platforms")

    train = sub.add_parser("train", help="run one HCC-MF training")
    train.add_argument("--dataset", default="Netflix", help="Table 3 name")
    train.add_argument("--nnz", type=int, default=50_000,
                       help="scaled dataset size for the numeric plane")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--k", type=int, default=16, help="latent dimension")
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--partition", default="auto",
                       choices=["auto", "even", "dp0", "dp1", "dp2"])
    train.add_argument("--transmit", default="auto",
                       choices=["auto", "pq", "q", "q-rotate"])
    train.add_argument("--fp16", action="store_true", help="FP16 wire (Strategy 2)")
    train.add_argument("--streams", type=int, default=1,
                       help="async streams (Strategy 3)")
    train.add_argument("--timing-only", action="store_true",
                       help="skip the numeric plane")
    train.add_argument("--trace", metavar="FILE",
                       help="write a chrome://tracing JSON of the timeline")
    train.add_argument("--metrics", metavar="FILE",
                       help="write the run's metrics as JSONL (numeric plane)")
    train.add_argument("--executor", default="model",
                       choices=["model", "process"],
                       help="'model' = cost-model planes (default); 'process' "
                            "= real worker processes over shared memory")
    train.add_argument("--workers", type=int, default=2,
                       help="worker process count for --executor process")
    train.add_argument("--drift", action="store_true",
                       help="print the cost-model drift report")

    an = sub.add_parser("analyze", help="profile a dataset's structure")
    an.add_argument("--dataset", default="Netflix", help="Table 3 name (synthetic)")
    an.add_argument("--nnz", type=int, default=50_000, help="synthetic scale")
    an.add_argument("--seed", type=int, default=0)
    an.add_argument("--file", help="rating file (.txt triples, .csv MovieLens, .npz)")

    tune = sub.add_parser("autotune", help="search the strategy space for a dataset")
    tune.add_argument("--dataset", default="Netflix", help="Table 3 name")
    tune.add_argument("--k", type=int, default=128)
    tune.add_argument("--epochs", type=int, default=20)
    tune.add_argument("--no-rotation", action="store_true",
                      help="exclude the future-work Q-rotate mode")

    rep = sub.add_parser("reproduce", help="regenerate paper tables/figures")
    rep.add_argument("ids", nargs="*", help="experiment ids (default: all)")

    abl = sub.add_parser("ablate", help="run ablation sweeps")
    abl.add_argument("ids", nargs="*", help="ablation ids (default: all)")

    lint = sub.add_parser("lint", help="run the hcclint domain static analyzer")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable output (alias for --format json)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      help="output format (default: text)")
    lint.add_argument("--rules", action="store_true",
                      help="list the rule catalogue and exit")
    lint.add_argument("--min-severity", default="warning",
                      choices=["info", "warning", "error"],
                      help="lowest severity that fails the run (default: warning)")
    lint.add_argument("--flow", action="store_true",
                      help="also run the flow-sensitive HCC2xx rules "
                           "(CFG + dataflow; slower)")
    lint.add_argument("--select", metavar="RULES",
                      help="only run these rules: comma-separated ids, id "
                           "prefixes or slugs (e.g. HCC2,shm-lifecycle)")
    lint.add_argument("--ignore", metavar="RULES",
                      help="skip these rules (same syntax as --select)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="subtract known findings recorded in FILE; only "
                           "new findings fail the run")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record the current findings to FILE and exit")

    obs = sub.add_parser(
        "obs-report",
        help="summarize an instrumented run's trace/metrics files offline",
    )
    obs.add_argument("--trace", metavar="FILE",
                     help="chrome-trace JSON written by train --trace")
    obs.add_argument("--metrics", metavar="FILE",
                     help="metrics JSONL written by train --metrics")
    obs.add_argument("--hotpaths", metavar="FILE",
                     help="hotpath JSON written by bench --profile-out")
    obs.add_argument("--top", type=int, default=10,
                     help="hotpath entries to show (default: 10)")

    bench = sub.add_parser(
        "bench",
        help="run the pinned perf suite / compare BENCH documents",
    )
    bench.add_argument("--out", default="BENCH_train.json", metavar="FILE",
                       help="where to write the bench document "
                            "(default: BENCH_train.json)")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke sizes: tiny nnz, one repeat "
                            "(numbers are not cross-PR comparable)")
    bench.add_argument("--suites", default=",".join(
                           ("kernel", "epoch", "wire")),
                       help="comma-separated suite sections to run "
                            "(default: kernel,epoch,wire; the registry is "
                            "extensible — registered extensions such as "
                            "'serving' also work here)")
    bench.add_argument("--nnz", type=int, default=None,
                       help="override the workload nnz")
    bench.add_argument("--repeats", type=int, default=None,
                       help="override the per-metric repeat count")
    bench.add_argument("--compare", metavar="OLD",
                       help="compare against an older bench document from "
                            "any registered suite (train, serving, ...); "
                            "exit 3 on a regression verdict")
    bench.add_argument("--against", metavar="NEW",
                       help="with --compare: diff OLD against NEW "
                            "without running the suite")
    bench.add_argument("--threshold", type=float, default=5.0,
                       help="regression threshold in percent "
                            "(default: 5.0; the noise margin may widen it)")
    bench.add_argument("--profile", action="store_true",
                       help="run one stage-profiled process-plane "
                            "training and print the hotpath report")
    bench.add_argument("--profile-out", metavar="FILE",
                       help="with --profile: also write the hotpath "
                            "report as JSON (obs-report --hotpaths)")
    bench.add_argument("--top", type=int, default=10,
                       help="hotpath entries to show (default: 10)")

    serve = sub.add_parser(
        "serve-bench",
        help="run the serving load-generation suite / compare "
             "BENCH_serving documents",
    )
    serve.add_argument("--out", default="BENCH_serving.json", metavar="FILE",
                       help="where to write the serving bench document "
                            "(default: BENCH_serving.json)")
    serve.add_argument("--quick", action="store_true",
                       help="CI smoke sizes: tiny model, few requests "
                            "(numbers are not cross-PR comparable)")
    serve.add_argument("--nnz", type=int, default=None,
                       help="override the fixture workload nnz")
    serve.add_argument("--repeats", type=int, default=None,
                       help="override the per-metric repeat count")
    serve.add_argument("--requests", type=int, default=None,
                       help="requests per load-generation run")
    serve.add_argument("--batch", type=int, default=None,
                       help="users per request batch")
    serve.add_argument("--topk", type=int, default=None,
                       help="items returned per user (default: 10)")
    serve.add_argument("--mode", choices=["closed", "poisson"], default=None,
                       help="arrival process (default: closed)")
    serve.add_argument("--concurrency", type=int, default=None,
                       help="closed-mode concurrent clients")
    serve.add_argument("--rate", type=float, default=None,
                       help="poisson-mode mean arrival rate in qps")
    serve.add_argument("--slo-p50-ms", type=float, default=None,
                       help="declared p50 latency target; exit 1 if exceeded")
    serve.add_argument("--slo-p99-ms", type=float, default=None,
                       help="declared p99 latency target; exit 1 if exceeded")
    serve.add_argument("--slo-min-qps", type=float, default=None,
                       help="declared throughput floor; exit 1 if missed")
    serve.add_argument("--compare", metavar="OLD",
                       help="compare against an older serving document; "
                            "exit 3 on a regression verdict")
    serve.add_argument("--against", metavar="NEW",
                       help="with --compare: diff OLD against NEW "
                            "without running the suite")
    serve.add_argument("--threshold", type=float, default=5.0,
                       help="regression threshold in percent "
                            "(default: 5.0; the noise margin may widen it)")

    parity = sub.add_parser(
        "engine-parity",
        help="diff the sim and process planes' executed pipelines",
    )
    parity.add_argument("--dataset", default="Netflix", help="Table 3 name")
    parity.add_argument("--nnz", type=int, default=4000, help="synthetic scale")
    parity.add_argument("--epochs", type=int, default=2)
    parity.add_argument("--k", type=int, default=8)
    parity.add_argument("--lr", type=float, default=0.01)
    parity.add_argument("--seed", type=int, default=0)
    parity.add_argument("--workers", type=int, default=2,
                        help="worker count in both planes (1..4)")

    smoke = sub.add_parser(
        "fault-smoke",
        help="kill a worker mid-run and prove recovery converges",
    )
    smoke.add_argument("--dataset", default="Netflix", help="Table 3 name")
    smoke.add_argument("--nnz", type=int, default=4000, help="synthetic scale")
    smoke.add_argument("--epochs", type=int, default=4)
    smoke.add_argument("--k", type=int, default=8)
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument("--workers", type=int, default=3,
                       help="worker process count (one gets killed)")
    smoke.add_argument("--barrier-timeout", type=float, default=5.0,
                       help="server rendezvous timeout (straggler detection "
                            "bound; dead workers are detected immediately)")
    smoke.add_argument("--tolerance", type=float, default=0.05,
                       help="max relative final-RMSE divergence vs baseline")

    chaos = sub.add_parser(
        "chaos-parity",
        help="run the seeded fault matrix through both planes and "
             "require identical recovery stories",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="matrix seed (offsets data/model seeds too)")
    chaos.add_argument("--process-scenarios", type=int, default=-1,
                       help="how many default-matrix scenarios to run on "
                            "both planes (-1 = all; the rest run sim-only)")
    chaos.add_argument("--sim-scenarios", type=int, default=8,
                       help="randomized sim-only invariant scenarios to sweep")
    chaos.add_argument("--rmse-tol", type=float, default=0.08,
                       help="max relative final-RMSE divergence across planes")
    chaos.add_argument("--drift-bound", type=float, default=1.0,
                       help="max relative degraded-cost ratio drift between "
                            "the sim's analytic and the process plane's "
                            "measured slowdown")

    race = sub.add_parser(
        "race-check",
        help="prove P-row ownership + one-copy discipline dynamically",
    )
    race.add_argument("--workers", type=int, default=3)
    race.add_argument("--nnz", type=int, default=2000, help="synthetic scale")
    race.add_argument("--epochs", type=int, default=2)
    race.add_argument("--seed", type=int, default=0)
    race.add_argument("--inject-overlap", action="store_true",
                      help="also run a deliberately corrupted plan and "
                           "require the detector to catch it")
    race.add_argument("--format", choices=["text", "sarif"], default="text",
                      help="output format (default: text)")

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "platforms": _cmd_platforms,
    "train": _cmd_train,
    "autotune": _cmd_autotune,
    "analyze": _cmd_analyze,
    "reproduce": _cmd_reproduce,
    "ablate": _cmd_ablate,
    "lint": _cmd_lint,
    "obs-report": _cmd_obs_report,
    "bench": _cmd_bench,
    "serve-bench": _cmd_serve_bench,
    "race-check": _cmd_race_check,
    "engine-parity": _cmd_engine_parity,
    "fault-smoke": _cmd_fault_smoke,
    "chaos-parity": _cmd_chaos_parity,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
