"""HCC-MF core: the paper's primary contribution.

Orchestrates heterogeneous CPU/GPU collaborative SGD-based matrix
factorization in the "asynchronous + synchronous" parameter-server mode
of paper Figure 4: a server CPU manages data distribution and
synchronization while worker CPUs/GPUs compute asynchronously on their
row-grid assignments.

Public entry point: :class:`repro.core.framework.HCCMF`.
"""

from repro.core.config import (
    HCCConfig,
    CommConfig,
    PartitionStrategy,
    CommBackendKind,
    TransmitMode,
)
from repro.core.compression import (
    compress_fp16,
    decompress_fp16,
    roundtrip_error,
    FP16_RELATIVE_ERROR_BOUND,
)
from repro.core.comm import CommModel, CommPlan, PullBuffer, PushBuffer
from repro.core.cost_model import TimeCostModel, EpochCost, WorkerCost, Regime
from repro.core.partition import (
    PartitionPlan,
    dp0,
    dp1,
    dp2,
    even_partition,
    exposed_sync_time,
)
from repro.core.server import ParameterServer
from repro.core.worker import WorkerRuntime
from repro.core.framework import HCCMF, TrainResult
from repro.core.autotune import autotune, tuned_config, TunedConfig, TuningReport
from repro.core.checkpoint import (
    Checkpoint,
    CheckpointVersionError,
    save_checkpoint,
    load_checkpoint,
    read_checkpoint_meta,
    resume_hogwild,
)
from repro.core.adaptive import AdaptiveRepartitioner, SlowdownEvent, simulate_adaptive_run, AdaptiveRunResult
from repro.core.convergence import epochs_to_target, time_to_target, speedup_at_target, fit_exponential, ExponentialFit
from repro.core.theorem import equalizing_partition, makespan, verify_theorem1, Theorem1Report
from repro.core.metrics import computing_power, ideal_computing_power, utilization, speedup

__all__ = [
    "HCCConfig",
    "CommConfig",
    "PartitionStrategy",
    "CommBackendKind",
    "TransmitMode",
    "compress_fp16",
    "decompress_fp16",
    "roundtrip_error",
    "FP16_RELATIVE_ERROR_BOUND",
    "CommModel",
    "CommPlan",
    "PullBuffer",
    "PushBuffer",
    "TimeCostModel",
    "EpochCost",
    "WorkerCost",
    "Regime",
    "PartitionPlan",
    "dp0",
    "dp1",
    "dp2",
    "even_partition",
    "exposed_sync_time",
    "ParameterServer",
    "WorkerRuntime",
    "HCCMF",
    "TrainResult",
    "autotune",
    "tuned_config",
    "TunedConfig",
    "TuningReport",
    "Checkpoint",
    "CheckpointVersionError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "resume_hogwild",
    "AdaptiveRepartitioner",
    "SlowdownEvent",
    "simulate_adaptive_run",
    "AdaptiveRunResult",
    "epochs_to_target",
    "time_to_target",
    "speedup_at_target",
    "fit_exponential",
    "ExponentialFit",
    "equalizing_partition",
    "makespan",
    "verify_theorem1",
    "Theorem1Report",
    "computing_power",
    "ideal_computing_power",
    "utilization",
    "speedup",
]
