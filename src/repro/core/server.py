"""The parameter server: global feature matrices and sync (paper 3.1/3.5).

The server owns the global P and Q.  Each epoch it deposits the
pull-side feature matrix into the shared pull buffer (one copy), and
after every worker push it merges the worker's local result into the
global matrix — the "Sync" thread of Figure 4.

Merging uses a weighted delta update:

    Q_global += w_i * (Q_i_local - Q_epoch_base)

where ``Q_epoch_base`` is the global Q snapshot the workers pulled.
This is the multiply-add merge the cost model charges three memory
operations for (Eq. 3) and it resolves the write-after-write races
row-grid partitioning cannot avoid on Q.  HCC-MF uses ``w_i = 1``:
row-grid workers train on *disjoint* samples, so their deltas are
distinct SGD steps that all apply (summing, not averaging — averaging
would under-apply the epoch's updates); fractional weights remain
available for entry-level partitions whose shards overlap.

With a row grid the P rows are worker-exclusive, so workers write them
in place ("transmit Q only", Strategy 1): the server never merges P.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.comm import PullBuffer, PushBuffer
from repro.mf.model import MFModel


class ParameterServer:
    """Numeric server for the in-process executor."""

    def __init__(
        self,
        model: MFModel,
        n_workers: int,
        fp16_wire: bool = False,
        metrics=None,
        channel=None,
    ):
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        self.model = model
        self.n_workers = n_workers
        #: optional repro.engine channel stack (duck-typed — core never
        #: imports repro.engine); it owns the wire codec when present
        self.channel = channel
        self.fp16_wire = (
            bool(channel.wire_is_fp16) if channel is not None else fp16_wire
        )
        self.pull_buffer = PullBuffer(
            model.Q.shape, fp16=self.fp16_wire, channel=channel
        )
        self.push_buffers = [
            PushBuffer(model.Q.shape, fp16=self.fp16_wire, worker_id=i,
                       channel=channel)
            for i in range(n_workers)
        ]
        self._q_base: np.ndarray | None = None
        self.sync_count = 0
        self.epochs_started = 0
        #: optional repro.obs MetricsRegistry (duck-typed — core never
        #: imports repro.obs; None keeps every path untimed)
        self.metrics = metrics
        #: perf_counter interval of the most recent merge (metrics only);
        #: lets an orchestrator place the SYNC span on its timeline
        self.last_merge_interval: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    def begin_epoch(self) -> None:
        """Publish Q to the pull buffer (one copy) and snapshot the base.

        The merge base is decoded *off the wire* — the exact (possibly
        quantized) matrix workers will pull — so wire-format error on
        the pull side cancels out of the delta merge.
        """
        self.pull_buffer.deposit(self.model.Q)
        self._q_base = self.pull_buffer.epoch_base()
        self.epochs_started += 1

    def pull(self, worker: int | None = None) -> np.ndarray:
        """A worker's pull: the epoch-base global Q (FP32).

        When the wire is FP16 the returned matrix has gone through the
        compress/decompress round-trip, exactly what a worker would see.
        ``worker`` attributes the read when the buffer is instrumented
        (see :func:`repro.analysis.race.attach_to_server`).
        """
        if self._q_base is None:
            raise RuntimeError("pull before begin_epoch")
        out = self.pull_buffer.read(worker=worker)
        if self.metrics is not None:
            # wire-accurate accounting: the buffer's footprint is what
            # actually crossed, so FP16 stacks report half the bytes
            self.metrics.counter(
                "bytes_pulled_total", "bytes pulled per worker"
            ).inc(
                self.pull_buffer.nbytes,
                worker=f"worker-{worker}" if worker is not None else "all",
            )
        return out

    def push(self, worker_id: int, q_local: np.ndarray) -> None:
        """A worker's push: deposit into its own push buffer (one copy)."""
        if self._q_base is None:
            raise RuntimeError("push before begin_epoch")
        if not (0 <= worker_id < self.n_workers):
            raise IndexError(f"worker_id {worker_id} out of range")
        buf = self.push_buffers[worker_id]
        buf.deposit(q_local)
        if self.metrics is not None:
            self.metrics.counter(
                "bytes_pushed_total", "bytes pushed per worker"
            ).inc(buf.nbytes, worker=f"worker-{worker_id}")

    def sync(self, worker_id: int, weight: float = 1.0) -> None:
        """The server's merge of one worker's pushed result."""
        if self._q_base is None:
            raise RuntimeError("sync before begin_epoch")
        if not (0.0 <= weight <= 1.0):
            raise ValueError("weight must be in [0, 1]")
        if not (0 <= worker_id < self.n_workers):
            raise IndexError(f"worker_id {worker_id} out of range")
        received = self.push_buffers[worker_id].consume()
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        # three memory ops + multiply-add per value, as Eq. 3 charges:
        # read global, read delta, write global
        delta = received.astype(np.float32) - self._q_base
        self.model.Q += np.float32(weight) * delta
        self.sync_count += 1
        if self.metrics is not None:
            t1 = time.perf_counter()
            self.last_merge_interval = (t0, t1)
            self.metrics.histogram(
                "merge_seconds", "server delta-merge time per sync"
            ).observe(t1 - t0)

    def push_and_sync(self, worker_id: int, q_local: np.ndarray, weight: float) -> None:
        """A worker's push followed immediately by the server's merge.

        The engine drives :meth:`push` and :meth:`sync` as separate
        pipeline stages; this combined form serves callers that want
        the classic interleaved step.
        """
        if self._q_base is None:
            raise RuntimeError("push before begin_epoch")
        if not (0.0 <= weight <= 1.0):
            raise ValueError("weight must be in [0, 1]")
        self.push(worker_id, q_local)
        self.sync(worker_id, weight)

    # ------------------------------------------------------------------
    @property
    def q_base(self) -> np.ndarray:
        if self._q_base is None:
            raise RuntimeError("no epoch in progress")
        return self._q_base
