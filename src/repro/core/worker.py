"""Worker runtime: one processor's asynchronous SGD task (paper 3.5).

Each worker owns a row-grid assignment of the rating matrix.  Per
epoch it pulls the global Q, trains asynchronously on its local data
(updating its exclusive P rows *in place* in the global P — the row
grid guarantees no other worker touches them), and pushes its local Q
back for the server's merge.

The update semantics differ by processor class, matching the paper's
task kernels:

* CPU workers run the FPSGD-style kernel: moderate batches with
  atomic-accumulation conflict handling (an FPSGD block scheduler never
  lets two threads share a feature row, which atomic accumulation
  dominates);
* GPU workers run the CuMF-style kernel: large thread-wave batches with
  lock-free last-write-wins conflicts, over block-sorted data.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.grid import GridAssignment, block_sort
from repro.data.ratings import RatingMatrix
from repro.hardware.processor import Processor
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel


class WorkerRuntime:
    """Numeric executor for one worker's assignment."""

    def __init__(
        self,
        worker_id: int,
        processor: Processor,
        assignment: GridAssignment,
        ratings: RatingMatrix,
        batch_size: int = 4096,
        seed: int = 0,
        metrics=None,
    ):
        self.worker_id = worker_id
        self.processor = processor
        self.assignment = assignment
        # block sorting by row: the cache-locality preprocessing the
        # authors added to CuMF_SGD; harmless for the CPU kernel.
        self.data = block_sort(ratings, assignment)
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed + worker_id)
        self.policy = (
            ConflictPolicy.LAST_WRITE if processor.is_gpu else ConflictPolicy.ATOMIC
        )
        self.updates_applied = 0
        #: optional repro.obs MetricsRegistry (duck-typed; this module
        #: never imports repro.obs so the numeric plane stays light)
        self.metrics = metrics

    @property
    def nnz(self) -> int:
        return self.data.nnz

    def run_epoch(
        self,
        p_global: np.ndarray,
        q_local: np.ndarray,
        lr: float,
        reg: float,
    ) -> tuple[np.ndarray, float]:
        """Train one epoch on the local shard.

        ``p_global`` is the shared user matrix — this worker only ever
        touches its exclusive rows, so in-place updates are safe.
        ``q_local`` is the worker's pulled copy of Q, updated locally
        and returned for the push.  Returns ``(q_local, mean_sq_err)``.
        """
        if p_global.dtype != np.float32 or q_local.dtype != np.float32:
            raise TypeError("feature matrices must be float32")
        if self.data.nnz == 0:
            return q_local, 0.0
        # MFModel wraps without copying: both arrays are already
        # C-contiguous float32, so P updates land in the shared matrix.
        model = MFModel(p_global, q_local)
        if model.P is not p_global:  # pragma: no cover - contiguity guard
            raise RuntimeError("P was copied; in-place row updates would be lost")

        t0 = time.perf_counter() if self.metrics is not None else 0.0
        order = self.rng.permutation(self.data.nnz)
        shuffled = self.data.take(order)
        total_sq = 0.0
        for rows, cols, vals in shuffled.batches(self.batch_size):
            mse = sgd_batch_update(model, rows, cols, vals, lr, reg, self.policy)
            total_sq += mse * len(rows)
            self.updates_applied += len(rows)
        if self.metrics is not None:
            worker = f"worker-{self.worker_id}"
            self.metrics.counter("updates_total", "SGD updates applied").inc(
                self.data.nnz, worker=worker
            )
            self.metrics.histogram(
                "worker_epoch_seconds", "wall-clock of one worker epoch"
            ).observe(time.perf_counter() - t0, worker=worker)
        return model.Q, total_sq / self.data.nnz

    # ------------------------------------------------------------------
    # ring-rotation mode (TransmitMode.Q_ROTATE, the future-work fix)
    # ------------------------------------------------------------------
    def prepare_column_blocks(self, edges: np.ndarray) -> None:
        """Index the shard's entries by Q column block for rotation steps."""
        edges = np.asarray(edges, dtype=np.int64)
        if len(edges) < 2 or edges[0] != 0:
            raise ValueError("edges must start at 0 and define >= 1 block")
        cols = self.data.cols
        self._block_entries = [
            np.flatnonzero((cols >= lo) & (cols < hi))
            for lo, hi in zip(edges, edges[1:])
        ]

    def run_rotation_step(self, model: MFModel, block: int, lr: float, reg: float) -> float:
        """Train this worker's entries whose columns lie in one owned block.

        Column-block ownership is disjoint across workers within a
        rotation step, so updating the *global* Q in place is race-free
        — no pull/push/sync needed (the whole point of Q_ROTATE).
        """
        if not hasattr(self, "_block_entries"):
            raise RuntimeError("prepare_column_blocks() first")
        idx = self._block_entries[block]
        if len(idx) == 0:
            return 0.0
        idx = idx[self.rng.permutation(len(idx))]
        total_sq = 0.0
        for lo in range(0, len(idx), self.batch_size):
            sel = idx[lo : lo + self.batch_size]
            mse = sgd_batch_update(
                model,
                self.data.rows[sel],
                self.data.cols[sel],
                self.data.vals[sel],
                lr,
                reg,
                self.policy,
            )
            total_sq += mse * len(sel)
            self.updates_applied += len(sel)
        return total_sq / len(idx)
