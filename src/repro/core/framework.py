"""HCC-MF: the collaborative training framework (paper Figure 4).

Ties everything together:

1. **Preprocess** (steps 1-3): shuffle the rating matrix, pick the grid
   orientation, derive the data partition (DP0 -> DP1 -> DP2 per the
   cost-model regime), and build per-worker assignments.
2. **Train** (steps 4-7): per epoch, workers pull the feature matrix,
   compute asynchronous SGD on their shards, push results; the server
   synchronizes with the weighted multiply-add merge.

Two execution planes run side by side:

* the **numeric plane** — real SGD on (scaled) rating data, producing
  the RMSE convergence curves of Figure 7;
* the **timing plane** — the calibrated cost model at the full-scale
  dataset shape, producing epoch times, phase breakdowns (Figure 8),
  communication totals (Table 5) and computing-power utilization
  (Table 4 / Figure 9).

Pass ``ratings=None`` to run the timing plane alone (used by the
benchmark harness when convergence is not under study).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.comm import CommPlan
from repro.core.config import HCCConfig, TransmitMode
from repro.core.cost_model import EpochCost, Regime, TimeCostModel
from repro.core.metrics import computing_power, ideal_computing_power, utilization
from repro.core.partition import PartitionPlan
from repro.core.worker import WorkerRuntime
from repro.data.datasets import DatasetSpec
from repro.data.grid import GridKind, choose_grid, partition_rows
from repro.data.ratings import RatingMatrix
from repro.hardware.timeline import Phase, Timeline
from repro.hardware.topology import Platform
from repro.mf.model import MFModel


@dataclass
class TrainResult:
    """Everything a training run produced (simulated time + numerics)."""

    dataset: DatasetSpec
    epochs: int
    plan: PartitionPlan
    regime: Regime
    epoch_cost: EpochCost
    total_time: float                       # simulated seconds, full run
    comm_time: float                        # cumulative pull+push, all workers
    pull_time: float
    push_time: float
    sync_time_total: float
    phase_totals: dict[str, dict[str, float]]
    power: float
    ideal_power: float
    utilization: float
    worker_powers: dict[str, float]
    timeline: Timeline = field(repr=False)
    rmse_history: list[float] = field(default_factory=list)
    model: MFModel | None = field(default=None, repr=False)

    @property
    def final_rmse(self) -> float:
        if not self.rmse_history:
            raise ValueError("run had no numeric plane")
        return self.rmse_history[-1]

    def time_axis(self) -> list[float]:
        """Simulated cumulative time at the end of each epoch (Fig. 7d-f).

        Derived from the timeline's per-epoch spans, so staggered
        schedules (DP2's hidden synchronization) report the instant the
        server really finishes each epoch rather than a uniform
        ``total_time / epochs`` smear.  Epochs beyond the timeline's
        rendered window extend at the analytic steady-state epoch cost;
        Strategy 1's once-at-the-end P push lands on the final epoch
        only, not spread across all of them.
        """
        span_ends: dict[int, float] = {}
        for span in self.timeline.spans:
            prev = span_ends.get(span.epoch, 0.0)
            span_ends[span.epoch] = max(prev, span.end)
        steady = self.epoch_cost.total
        axis: list[float] = []
        prev_end = 0.0
        for epoch in range(self.epochs):
            end = span_ends.get(epoch, prev_end + steady)
            if end <= prev_end:  # degenerate timeline: keep monotone
                end = prev_end + steady
            axis.append(end)
            prev_end = end
        final_extra = self.total_time - self.epochs * steady
        if final_extra > 0:
            axis[-1] += final_extra
        return axis


class HCCMF:
    """The heterogeneous collaborative computing framework."""

    def __init__(
        self,
        platform: Platform,
        dataset: DatasetSpec,
        config: HCCConfig | None = None,
        ratings: RatingMatrix | None = None,
    ):
        self.config = config if config is not None else HCCConfig()
        self.dataset = dataset
        self.ratings = ratings
        # Strategy 3 stops the server CPU from time-sharing as a worker
        # (paper 3.4): drop time-shared workers when streams are active.
        self.platform = (
            _without_time_shared(platform) if self.config.comm.uses_async else platform
        )
        if self.platform.n_workers == 0:
            raise ValueError("platform has no workers after stream filtering")
        self.cost_model = TimeCostModel(
            self.platform,
            dataset,
            k=self.config.k,
            comm=self.config.comm,
            lambda_threshold=self.config.lambda_threshold,
        )
        self.lr = (
            self.config.learning_rate
            if self.config.learning_rate is not None
            else dataset.learning_rate
        )
        self.reg = self.config.reg if self.config.reg is not None else dataset.reg
        self.plan: PartitionPlan | None = None
        self._grid_kind: GridKind | None = None

    # ------------------------------------------------------------------
    # preprocessing (steps 1-3)
    # ------------------------------------------------------------------
    def prepare(self) -> PartitionPlan:
        """Shuffle, choose grid, derive the data partition."""
        self.plan = self.cost_model.derive_partition(self.config.partition)
        self._grid_kind = choose_grid(self.dataset.m, self.dataset.n)
        if self.ratings is not None:
            data = self.ratings
            if choose_grid(data.m, data.n) is GridKind.COLUMN:
                # column-grid problems are handled by transposition:
                # "the strategy can also be switched to transmitting P
                # only" — transposing makes Q the recurring matrix again.
                data = data.transpose()
            self._numeric_data = data.shuffle(self.config.seed)
            self._assignments = partition_rows(
                self._numeric_data, self.plan.fractions, GridKind.ROW
            )
        return self.plan

    # ------------------------------------------------------------------
    # training (steps 4-7)
    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int | None = None,
        eval_data: RatingMatrix | None = None,
        telemetry=None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        resume_from=None,
    ) -> TrainResult:
        """Run the simulated-time plane and (if ratings) the numeric plane.

        ``telemetry`` (a :class:`repro.obs.Telemetry`, duck-typed) opts
        the numeric plane into runtime instrumentation: wall-clock
        pull/compute/push spans per worker, sync/eval spans for the
        server, per-epoch RMSE gauges and structured events.  ``None``
        (the default) keeps every numeric path untimed.

        ``checkpoint_every=``/``checkpoint_path=`` write an atomic model
        checkpoint at epoch boundaries of the numeric plane, and
        ``resume_from=`` warm-starts it from a saved checkpoint with the
        workers' RNG streams advanced past the completed epochs, so the
        resumed factors match the straight-through run bit for bit (see
        docs/resilience.md).  The Q_ROTATE future-work mode has no
        engine loop to hang these off and rejects them.
        """
        if self.plan is None:
            self.prepare()
        epochs = epochs if epochs is not None else self.config.epochs
        if epochs <= 0:
            raise ValueError("epochs must be positive")

        epoch_cost = self.cost_model.epoch_cost(self.plan.fractions)
        timeline = self._build_timeline(epoch_cost, shown_epochs=min(epochs, 3))

        # final P push under "transmit Q only": each worker pushes its
        # exclusive P rows over its own channel, in parallel
        final_extra = self._final_push_time()
        total_time = epochs * epoch_cost.total + final_extra

        workers = self.platform.workers
        pull_total = epochs * sum(w.pull for w in epoch_cost.workers)
        push_total = epochs * sum(w.push for w in epoch_cost.workers) + final_extra
        sync_total = epochs * epoch_cost.sync_time_each * len(workers)

        phase_totals: dict[str, dict[str, float]] = {}
        for wc in epoch_cost.workers:
            phase_totals[wc.name] = {
                "pull": epochs * wc.pull,
                "computing": epochs * wc.compute,
                # Figure 8 lumps push and sync into one "push" bar
                "push": epochs * (wc.push + epoch_cost.sync_time_each),
                "total": epochs * epoch_cost.total,
            }

        nnz = self.dataset.nnz
        power = computing_power(nnz, epochs, total_time)
        ideal = ideal_computing_power(self.platform, self.dataset, self.config.k)
        worker_powers = {
            wc.name: wc.fraction * nnz * epochs / total_time for wc in epoch_cost.workers
        }

        rmse_history: list[float] = []
        model: MFModel | None = None
        if self.ratings is not None:
            model, rmse_history = self._train_numeric(
                epochs, eval_data, telemetry,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
            )
        elif checkpoint_every or resume_from is not None:
            raise ValueError(
                "checkpointing needs a numeric plane: construct HCCMF "
                "with ratings= to use checkpoint_every=/resume_from="
            )

        return TrainResult(
            dataset=self.dataset,
            epochs=epochs,
            plan=self.plan,
            regime=epoch_cost.regime,
            epoch_cost=epoch_cost,
            total_time=total_time,
            comm_time=pull_total + push_total,
            pull_time=pull_total,
            push_time=push_total,
            sync_time_total=sync_total,
            phase_totals=phase_totals,
            power=power,
            ideal_power=ideal,
            utilization=utilization(power, ideal),
            worker_powers=worker_powers,
            timeline=timeline,
            rmse_history=rmse_history,
            model=model,
        )

    # ------------------------------------------------------------------
    def _train_numeric(
        self,
        epochs: int,
        eval_data: RatingMatrix | None,
        telemetry=None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        resume_from=None,
    ) -> tuple[MFModel, list[float]]:
        """Numeric plane: delegate the epoch loop to the EpochEngine.

        The engine runs the pull/compute/push/sync stage pipeline over a
        :class:`~repro.engine.backends.SimBackend`; the channel stack is
        built from this run's CommConfig, so Strategy 1/2/3 knobs act on
        the same object the cost model's byte accounting uses.  The
        rotation mode keeps its own loop (ownership rotation has no
        pull/push/sync stages).
        """
        data = self._numeric_data
        eval_set = eval_data if eval_data is not None else data
        mode = self.config.comm.resolve_transmit(self.dataset.m, self.dataset.n)
        if mode is TransmitMode.Q_ROTATE:
            if checkpoint_every or resume_from is not None:
                raise ValueError(
                    "Q_ROTATE has no engine loop: checkpoint_every=/"
                    "resume_from= are not supported in rotation mode"
                )
            registry = telemetry.registry if telemetry is not None else None
            model = MFModel.init_for(data, self.config.k, seed=self.config.seed)
            runtimes = [
                WorkerRuntime(
                    i,
                    proc,
                    assignment,
                    data,
                    batch_size=self.config.batch_size,
                    seed=self.config.seed,
                    metrics=registry,
                )
                for i, (proc, assignment) in enumerate(
                    zip(self.platform.workers, self._assignments)
                )
            ]
            return self._train_numeric_rotate(epochs, eval_set, model, runtimes)

        # imported lazily: core stays importable without the engine layer
        from repro.engine import EpochEngine, SimBackend, channel_for

        backend = SimBackend(
            self.platform,
            ratings=data,
            eval_data=eval_set,
            k=self.config.k,
            lr=self.lr,
            reg=self.reg,
            batch_size=self.config.batch_size,
            seed=self.config.seed,
            cost_model=self.cost_model,
        )
        engine = EpochEngine(
            backend,
            channel=channel_for(self.config.comm, data.m, data.n),
            partitions=self.plan,
            telemetry=telemetry,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
        )
        result = engine.run(epochs)
        return backend.model, result.rmse_history

    def _train_numeric_rotate(
        self,
        epochs: int,
        eval_set: RatingMatrix,
        model: MFModel,
        runtimes: list[WorkerRuntime],
    ) -> tuple[MFModel, list[float]]:
        """Ring-rotation training (Q_ROTATE, the future-work mode).

        Q's columns are split into one block per worker; in rotation
        step s, worker i owns block (i + s) mod p.  Ownership is
        disjoint within a step, so every worker updates the global P
        (its exclusive rows) and Q (its owned columns) in place: no
        pull/push copies, no server merge.
        """
        p = len(runtimes)
        data = self._numeric_data
        edges = np.linspace(0, data.n, p + 1).astype(np.int64)
        for rt in runtimes:
            rt.prepare_column_blocks(edges)
        history: list[float] = []
        # sanctioned non-pipeline loop: rotation has no pull/push/sync
        # stages for EpochEngine to drive
        for _ in range(epochs):  # hcclint: disable=epoch-loop
            for step in range(p):
                for i, rt in enumerate(runtimes):
                    rt.run_rotation_step(model, (i + step) % p, self.lr, self.reg)
            history.append(model.rmse(eval_set))
        return model, history

    def _final_push_time(self) -> float:
        """Time for the once-at-the-end P push (Strategy 1's epilogue)."""
        plan: CommPlan = self.cost_model.plan
        if plan.final_push_extra == 0:
            return 0.0
        times = []
        for proc, x in zip(self.platform.workers, self.plan.fractions):
            nbytes = plan.final_push_extra * x
            times.append(
                self.cost_model.comm_model.transfer_time(self.platform.bus(proc), nbytes)
            )
        return max(times) if times else 0.0

    def _build_timeline(self, epoch_cost: EpochCost, shown_epochs: int) -> Timeline:
        timeline = Timeline()
        for e in range(shown_epochs):
            offset = e * epoch_cost.total
            finishes = []
            for wc in epoch_cost.workers:
                finishes.append((offset + wc.finish, wc.name))
                for s in wc.spans:
                    timeline.add(s.worker, s.phase, offset + s.start, offset + s.end, epoch=e)
            # server sync lane: serial merges in arrival order
            server_free = 0.0
            for finish, _name in sorted(finishes):
                start = max(finish, server_free)
                end = start + epoch_cost.sync_time_each
                timeline.add("server", Phase.SYNC, start, end, epoch=e)
                server_free = end
        return timeline


def _without_time_shared(platform: Platform) -> Platform:
    """A copy of the platform with time-shared (special) workers removed."""
    filtered = Platform(server=platform.server)
    for w in platform.workers:
        if w.time_share < 1.0:
            continue
        filtered.add_worker(w, platform.bus(w), channel=platform.channel_of(w))
    return filtered
