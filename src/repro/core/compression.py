"""FP32 <-> FP16 feature compression (Strategy 2, paper 3.4).

Rating values have coarse, finite scales (5-point, 10-point, 100-point
systems), so the feature matrices tolerate half-precision on the wire:
convert to IEEE-754 binary16 before transmission, back to binary32 on
receipt.  The paper implements the conversion with AVX on CPUs and CUDA
intrinsics on GPUs; NumPy's ``float16`` dtype is the same IEEE format.

Traffic halves; the induced error is bounded by FP16's unit roundoff
(2^-11 relative) plus overflow/underflow at the format's range limits,
which the tests characterize.
"""

from __future__ import annotations

import numpy as np

#: IEEE-754 binary16 unit roundoff: values within the normal range are
#: represented with relative error at most 2**-11.
FP16_RELATIVE_ERROR_BOUND = 2.0 ** -11

#: largest finite binary16 value; inputs beyond it saturate to inf.
FP16_MAX = 65504.0


def compress_fp16(arr: np.ndarray) -> np.ndarray:
    """Convert an FP32 array to FP16 for transmission.

    Values whose magnitude exceeds the FP16 range are clamped to the
    largest finite half-precision value rather than becoming inf — a
    transmitted inf would destroy the receiving feature matrix.
    """
    arr = np.asarray(arr, dtype=np.float32)
    clipped = np.clip(arr, -FP16_MAX, FP16_MAX)
    return clipped.astype(np.float16)


def decompress_fp16(arr: np.ndarray) -> np.ndarray:
    """Convert a received FP16 buffer back to FP32."""
    arr = np.asarray(arr)
    if arr.dtype != np.float16:
        raise TypeError(f"expected float16 buffer, got {arr.dtype}")
    return arr.astype(np.float32)


def roundtrip_error(arr: np.ndarray) -> float:
    """Max relative error introduced by one compress/decompress cycle."""
    arr = np.asarray(arr, dtype=np.float32)
    back = decompress_fp16(compress_fp16(arr))
    denom = np.maximum(np.abs(arr), 1e-30)
    return float(np.max(np.abs(back - arr) / denom)) if arr.size else 0.0


def wire_bytes(n_values: int, fp16: bool) -> int:
    """Bytes on the wire for ``n_values`` feature parameters."""
    if n_values < 0:
        raise ValueError("n_values must be non-negative")
    return n_values * (2 if fp16 else 4)
