"""Configuration auto-tuning: the "transparent utilization" planner.

The paper promises that HCC-MF makes "both CPU and GPU transparent to
users" (section 3.5) — but its experiments still hand-pick the
communication strategies per dataset.  This module closes that gap: it
searches the strategy space (transmit mode x FP16 x stream count x
partition pipeline) with the calibrated cost model and returns the
configuration predicted fastest, plus the full ranking for inspection.

It also implements section 3.4's collaboration-worthiness analysis: a
dataset whose ``nnz/(m+n)`` ratio is too low cannot profit from more
processors (Table 6), and the planner says so instead of silently
producing a bad configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import (
    CommConfig,
    HCCConfig,
    PartitionStrategy,
    TransmitMode,
)
from repro.core.cost_model import TimeCostModel
from repro.data.datasets import DatasetSpec
from repro.hardware.topology import Platform

#: section 3.4's bound: below this reuse ratio, communication and
#: computation are of the same order and collaboration saturates
COLLABORATION_REUSE_BOUND = 1e3


@dataclass(frozen=True)
class TunedConfig:
    """One evaluated candidate configuration."""

    config: HCCConfig
    epoch_time: float
    total_time: float
    utilization_proxy: float  # compute_total / (p * epoch_time)

    @property
    def label(self) -> str:
        c = self.config.comm
        bits = [c.transmit.value]
        if c.fp16:
            bits.append("fp16")
        if c.streams > 1:
            bits.append(f"{c.streams}s")
        return "+".join(bits)


@dataclass(frozen=True)
class TuningReport:
    """Outcome of an auto-tuning search."""

    best: TunedConfig
    ranking: tuple[TunedConfig, ...]
    collaboration_worthwhile: bool
    reuse_ratio: float
    advice: str


def _candidates(epochs: int, k: int, stream_options: tuple[int, ...]) -> list[HCCConfig]:
    out = []
    for transmit in (TransmitMode.Q_ONLY, TransmitMode.Q_ROTATE, TransmitMode.P_AND_Q):
        for fp16 in (False, True):
            for streams in stream_options:
                out.append(
                    HCCConfig(
                        k=k,
                        epochs=epochs,
                        partition=PartitionStrategy.AUTO,
                        comm=CommConfig(transmit=transmit, fp16=fp16, streams=streams),
                    )
                )
    return out


def autotune(
    platform: Platform,
    dataset: DatasetSpec,
    k: int = 128,
    epochs: int = 20,
    stream_options: tuple[int, ...] = (1, 2, 4),
    include_rotation: bool = True,
) -> TuningReport:
    """Pick the fastest strategy combination for a platform/dataset pair.

    Every candidate is priced with the calibrated cost model (cheap:
    no numeric training); the AUTO partition pipeline runs inside each
    candidate so DP1/DP2 selection follows the regime that candidate
    creates.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    evaluated: list[TunedConfig] = []
    for config in _candidates(epochs, k, stream_options):
        if not include_rotation and config.comm.transmit is TransmitMode.Q_ROTATE:
            continue
        model = TimeCostModel(
            platform, dataset, k=k, comm=config.comm,
            lambda_threshold=config.lambda_threshold,
        )
        plan = model.derive_partition(config.partition)
        cost = model.epoch_cost(plan.fractions)
        total = epochs * cost.total
        busy = cost.compute_total / max(len(cost.workers) * cost.total, 1e-30)
        evaluated.append(
            TunedConfig(
                config=config,
                epoch_time=cost.total,
                total_time=total,
                utilization_proxy=busy,
            )
        )

    ranking = tuple(sorted(evaluated, key=lambda t: t.total_time))
    best = ranking[0]

    # the post-Strategy-1 reuse is what decides whether optimized
    # collaboration stays communication-bound (Netflix/R2 escape the raw
    # bound this way; R1/MovieLens do not — Table 4's utilization split)
    reuse = dataset.q_only_reuse
    worthwhile = reuse >= COLLABORATION_REUSE_BOUND / 10.0
    if reuse < 200.0:
        advice = (
            f"nnz/min(m,n) = {reuse:,.0f} is far below the ~1e3 bound "
            "(paper 3.4): even optimized communication rivals computation, "
            "so added processors saturate quickly — prefer Q-rotate and "
            "few, fast workers"
        )
    elif reuse < COLLABORATION_REUSE_BOUND:
        advice = (
            f"nnz/min(m,n) = {reuse:,.0f} is below the ~1e3 bound: "
            "collaboration helps but communication optimization is "
            "mandatory (Q-only/FP16/streams)"
        )
    else:
        advice = (
            f"nnz/min(m,n) = {reuse:,.0f} comfortably exceeds the bound: "
            "compute-bound regime, collaboration scales well"
        )
    return TuningReport(
        best=best,
        ranking=ranking,
        collaboration_worthwhile=worthwhile,
        reuse_ratio=reuse,
        advice=advice,
    )


def tuned_config(
    platform: Platform,
    dataset: DatasetSpec,
    k: int = 128,
    epochs: int = 20,
    **overrides,
) -> HCCConfig:
    """Shortcut: the winning HCCConfig, optionally with field overrides."""
    best = autotune(platform, dataset, k=k, epochs=epochs).best.config
    return replace(best, **overrides) if overrides else best
