"""The HCC-MF time-cost model (paper section 3.2, Eq. 1-5).

One training epoch costs

    T = max_i { T_i_pull + T_i_c + T_i_push } + T_sync          (Eq. 1)

with the worker term approximated (memory-bandwidth-bound compute,
Eq. 2) by

    T_i ~ x_i * nnz * (16k+4) / B_i  +  2k(m+n) / B_bus_i

and the server-side synchronization (three reads/writes plus one
multiply-add per feature value, Eq. 3) by

    T_sync ~ 3 t k (m+n) / B_server.

The model becomes the piecewise function of Eq. 5: when
``max{T_i}/T_sync >= lambda`` the sync term is ignored (compute-bound
regime, DP1 applies); otherwise it must be modeled (sync-bound regime,
DP2 applies).

This module also carries the section 3.4 communication analysis: the
comm/compute cost ratio ``~ B_i (m+n) / (8 x_i nnz B_bus_i)``, which
predicts when collaborative computing stops paying (Table 6's
MovieLens-20m limitation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.comm import CommModel, CommPlan
from repro.core.config import CommConfig, PartitionStrategy, TransmitMode
from repro.core.partition import (
    PartitionPlan,
    dp0,
    dp1,
    dp2,
    even_partition,
    exposed_sync_time,
)
from repro.data.datasets import DatasetSpec
from repro.hardware.processor import Processor
from repro.hardware.streams import pipeline_schedule
from repro.hardware.timeline import Phase, Span
from repro.hardware.topology import Platform


class Regime(enum.Enum):
    """Which branch of the piecewise cost function (Eq. 5) applies."""

    COMPUTE_BOUND = "compute-bound"  # max{T_i}/T_sync >= lambda: ignore sync
    SYNC_BOUND = "sync-bound"        # sync overhead shapes the epoch


@dataclass(frozen=True)
class WorkerCost:
    """One worker's modeled epoch (all times in seconds)."""

    name: str
    fraction: float
    pull: float
    compute: float
    push: float
    epoch_time: float     # includes pipeline overlap when streams > 1
    finish: float         # when the worker's last push lands at the server
    spans: tuple[Span, ...] = field(default=(), repr=False)

    @property
    def serial_time(self) -> float:
        """Unpipelined T_i = pull + compute + push (Eq. 2)."""
        return self.pull + self.compute + self.push


@dataclass(frozen=True)
class EpochCost:
    """The modeled cost of one full training epoch (Eq. 1)."""

    workers: tuple[WorkerCost, ...]
    sync_time_each: float
    exposed_sync: float
    total: float
    regime: Regime

    @property
    def max_worker_time(self) -> float:
        return max(w.epoch_time for w in self.workers)

    @property
    def compute_total(self) -> float:
        return sum(w.compute for w in self.workers)

    def spans(self) -> list[Span]:
        out: list[Span] = []
        for w in self.workers:
            out.extend(w.spans)
        return out


class TimeCostModel:
    """Analytical epoch-cost model for a platform/dataset/strategy triple."""

    def __init__(
        self,
        platform: Platform,
        dataset: DatasetSpec,
        k: int = 128,
        comm: CommConfig | None = None,
        lambda_threshold: float = 10.0,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if lambda_threshold <= 0:
            raise ValueError("lambda_threshold must be positive")
        self.platform = platform
        self.dataset = dataset
        self.k = k
        self.comm_config = comm if comm is not None else CommConfig()
        self.comm_model = CommModel(self.comm_config.backend)
        self.plan = CommPlan.for_dataset(dataset, k, self.comm_config)
        self.lambda_threshold = lambda_threshold

    # ------------------------------------------------------------------
    # primitive terms
    # ------------------------------------------------------------------
    def independent_time(self, worker: Processor) -> float:
        """T_i_e: worker processes the whole dataset alone (Table 1)."""
        return worker.compute_time(
            self.dataset.nnz, self.k, self.dataset, partition_frac=1.0, corun=False
        )

    def compute_time(self, worker: Processor, fraction: float) -> float:
        """Runtime compute time for a fraction of the data (co-running)."""
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        if fraction == 0.0:
            return 0.0
        return worker.compute_time(
            fraction * self.dataset.nnz,
            self.k,
            self.dataset,
            partition_frac=fraction,
            corun=True,
        )

    def pull_time(self, worker: Processor) -> float:
        """Per-epoch pull time, including physical-channel contention.

        Workers sharing one physical link split its bandwidth when they
        transfer concurrently (they all pull at epoch start), which the
        model expresses as an effective byte multiplier.
        """
        sharing = self.platform.channel_sharing(worker)
        return self.comm_model.transfer_time(
            self.platform.bus(worker), self.plan.epoch_pull * sharing
        )

    def push_time(self, worker: Processor) -> float:
        sharing = self.platform.channel_sharing(worker)
        return self.comm_model.transfer_time(
            self.platform.bus(worker), self.plan.epoch_push * sharing
        )

    def sync_time(self) -> float:
        """Per-worker-sync server time (Eq. 3's summand).

        Three memory operations on each synchronized feature value (4
        bytes each) at the server's bandwidth; the multiply-add term
        ``k(m+n)/P_server`` is negligible (P_server >> B_server).
        """
        server_bw = self.platform.server.effective_bandwidth(1.0) * 1e9
        return 3.0 * 4.0 * self.plan.sync_values / server_bw

    def comm_compute_ratio(self, worker: Processor, fraction: float) -> float:
        """Section 3.4's communication/computation cost ratio for a worker."""
        if fraction <= 0:
            return float("inf")
        comm = self.pull_time(worker) + self.push_time(worker)
        comp = self.compute_time(worker, fraction)
        return comm / comp if comp > 0 else float("inf")

    # ------------------------------------------------------------------
    # epoch assembly (Eq. 1 + Figure 5 timing sequences)
    # ------------------------------------------------------------------
    def epoch_cost(
        self,
        fractions,
        streams: int | None = None,
        epoch: int = 0,
        workers: "list[Processor] | None" = None,
    ) -> EpochCost:
        """Model one epoch under a partition vector.

        All workers pull in parallel over their own channels at t=0
        (Figure 2's independent-channel property), compute, then push;
        the server merges pushes serially in arrival order.  With
        ``streams > 1`` each worker with copy engines runs the Strategy-3
        pipeline instead of the serial pull->compute->push.

        ``workers`` overrides the platform's worker list — the degraded
        costing path prices an epoch over the surviving subset without
        rebuilding the platform.
        """
        fractions = np.asarray(fractions, dtype=np.float64)
        if workers is None:
            workers = self.platform.workers
        if len(fractions) != len(workers):
            raise ValueError(
                f"{len(fractions)} fractions for {len(workers)} workers"
            )
        if streams is None:
            streams = self.comm_config.streams

        tsync = self.sync_time()
        # ring rotation (the future-work mode) inherently chunks each
        # worker's communication into one hop per rotation step
        rotate = (
            self.comm_config.resolve_transmit(self.dataset.m, self.dataset.n)
            is TransmitMode.Q_ROTATE
        )
        costs: list[WorkerCost] = []
        sync_events: list[tuple[float, float]] = []  # (push landing, merge cost)
        for proc, x in zip(workers, fractions):
            pull = self.pull_time(proc)
            compute = self.compute_time(proc, float(x))
            push = self.push_time(proc)
            want_streams = max(streams, len(workers)) if rotate else streams
            n_streams = (
                want_streams
                if (want_streams > 1 and proc.spec.copy_engines >= 1)
                else 1
            )
            result = pipeline_schedule(
                pull,
                compute,
                push,
                streams=n_streams,
                copy_engines=max(1, min(2, proc.spec.copy_engines or 1)),
                worker=proc.name,
                epoch=epoch,
            )
            push_ends = [s.end for s in result.spans if s.phase is Phase.PUSH]
            if push_ends:
                # one merge per pushed chunk: a pipelined worker's syncs
                # land mid-epoch and each costs T_sync / streams
                for end in push_ends:
                    sync_events.append((end, tsync / len(push_ends)))
            else:
                sync_events.append((result.epoch_time, tsync))
            costs.append(
                WorkerCost(
                    name=proc.name,
                    fraction=float(x),
                    pull=pull,
                    compute=compute,
                    push=push,
                    epoch_time=result.epoch_time,
                    finish=result.epoch_time,
                    spans=result.spans,
                )
            )

        exposed = exposed_sync_time(
            [t for t, _ in sync_events], [d for _, d in sync_events]
        )
        max_time = max(c.epoch_time for c in costs) if costs else 0.0
        total = max_time + exposed
        regime = self.sync_regime([c.epoch_time for c in costs], len(workers))
        return EpochCost(
            workers=tuple(costs),
            sync_time_each=tsync,
            exposed_sync=exposed,
            total=total,
            regime=regime,
        )

    def degraded_epoch_cost(
        self,
        fractions,
        dead_ranks: "tuple[int, ...] | list[int] | set[int]",
        streams: int | None = None,
        epoch: int = 0,
    ) -> EpochCost:
        """Model an epoch after worker deaths (the Eq. 1-5 failure path).

        ``fractions`` is the *healthy* partition vector; the dead
        workers' ``x_i`` are reassigned across the survivors with
        :func:`~repro.resilience.policy.redistribute`'s rate-proportional
        renormalization — exactly the plan the recovery engine continues
        with — and the epoch is then priced over the surviving subset of
        the platform: ``T = max_{i in survivors}{...} + T_sync`` with one
        fewer merge per dead worker.
        """
        # local import: resilience.policy imports core modules
        from repro.resilience.policy import redistribute

        fractions = np.asarray(fractions, dtype=np.float64)
        workers = self.platform.workers
        if len(fractions) != len(workers):
            raise ValueError(
                f"{len(fractions)} fractions for {len(workers)} workers"
            )
        plan = PartitionPlan("healthy", tuple(map(float, fractions)))
        degraded = redistribute(plan, dead_ranks)
        dead = set(dead_ranks)
        survivors = [w for r, w in enumerate(workers) if r not in dead]
        return self.epoch_cost(
            degraded.fractions, streams=streams, epoch=epoch, workers=survivors
        )

    def sync_regime(self, worker_times, n_workers: int | None = None) -> Regime:
        """Eq. 5's branch test: max{T_i} / T_sync against lambda."""
        if n_workers is None:
            n_workers = self.platform.n_workers
        tsync_total = self.sync_time() * n_workers
        if tsync_total <= 0:
            return Regime.COMPUTE_BOUND
        ratio = max(worker_times) / tsync_total
        return Regime.COMPUTE_BOUND if ratio >= self.lambda_threshold else Regime.SYNC_BOUND

    # ------------------------------------------------------------------
    # partition derivation (the DataManager's strategy pipeline)
    # ------------------------------------------------------------------
    def derive_partition(self, strategy: PartitionStrategy) -> PartitionPlan:
        """Produce the partition a given strategy yields on this model.

        AUTO follows the paper: DP0 -> DP1, then DP2 iff the DP1 solution
        is in the sync-bound regime.
        """
        workers = self.platform.workers
        if not workers:
            raise ValueError("platform has no workers")
        if strategy is PartitionStrategy.EVEN:
            return even_partition(len(workers))

        base = dp0([self.independent_time(w) for w in workers])
        if strategy is PartitionStrategy.DP0:
            # report runtime times under DP0 so imbalance is visible
            times = [self.compute_time(w, x) for w, x in zip(workers, base.fractions)]
            return PartitionPlan("dp0", base.fractions, tuple(times))

        def measure(x):
            return [self.compute_time(w, xi) for w, xi in zip(workers, x)]

        refined = dp1(
            base,
            measure,
            [w.is_gpu for w in workers],
        )
        if strategy is PartitionStrategy.DP1:
            return refined

        overheads = [self.pull_time(w) + self.push_time(w) for w in workers]
        if strategy is PartitionStrategy.DP2:
            return dp2(refined, self.sync_time(), overheads=overheads)

        # AUTO: Eq. 5's regime decides
        if self.sync_regime(list(refined.predicted_times)) is Regime.SYNC_BOUND:
            return dp2(refined, self.sync_time(), overheads=overheads)
        return refined
