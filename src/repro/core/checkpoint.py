"""Model checkpointing: save, load, and resume MF training.

Long MF runs on big platforms want durable state: the factor matrices,
the training hyper-parameters, and enough history to resume.  The
format is a single NPZ (exact FP32 round-trip) plus a JSON sidecar of
metadata, which keeps checkpoints greppable and forward-compatible.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.mf.model import MFModel

#: bump when the on-disk layout changes
CHECKPOINT_VERSION = 1


class CheckpointVersionError(ValueError):
    """A checkpoint was written by an incompatible format version.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    recovery paths keep working; the serving plane catches this type to
    classify a failed hot-swap as ``version-mismatch`` rather than a
    generic corrupt file.
    """

    def __init__(self, path: Path, found: object):
        self.path = path
        self.found = found
        super().__init__(
            f"checkpoint at {path} was written as format version {found}, "
            f"but this build reads version {CHECKPOINT_VERSION}"
        )


@dataclass
class Checkpoint:
    """A saved training state."""

    model: MFModel
    epoch: int
    rmse_history: list[float] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")


def _paths(path: str | os.PathLike) -> tuple[Path, Path]:
    base = Path(path)
    if base.suffix == ".npz":
        base = base.with_suffix("")
    return base.with_suffix(".npz"), base.with_suffix(".json")


def _atomic_write(target: Path, write_body) -> None:
    """Write ``target`` via temp-file + fsync + rename (crash-atomic).

    A checkpoint overwritten in place can be torn by a crash mid-write —
    precisely the moment checkpoints exist for — so all writes land in a
    temp file in the *same directory* (rename must not cross
    filesystems), are flushed to disk, and are installed with
    :func:`os.replace`.  Readers only ever see the old file or the new.
    """
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            write_body(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        tmp.unlink(missing_ok=True)


def save_checkpoint(ckpt: Checkpoint, path: str | os.PathLike) -> None:
    """Atomically write ``<path>.npz`` (factors) and ``<path>.json`` (metadata)."""
    npz_path, json_path = _paths(path)
    _atomic_write(
        npz_path,
        lambda fh: np.savez_compressed(fh, P=ckpt.model.P, Q=ckpt.model.Q),
    )
    meta = {
        "version": ckpt.version,
        "epoch": ckpt.epoch,
        "rmse_history": [float(r) for r in ckpt.rmse_history],
        "config": ckpt.config,
        "shape": {"m": ckpt.model.m, "n": ckpt.model.n, "k": ckpt.model.k},
    }
    _atomic_write(
        json_path, lambda fh: fh.write(json.dumps(meta, indent=2).encode())
    )


def read_checkpoint_meta(path: str | os.PathLike) -> dict:
    """Read only the JSON sidecar: a cheap version/shape peek.

    The serving plane polls candidate checkpoints before committing to a
    full factor load, so the read side needs a way to reject a
    wrong-version or incomplete checkpoint without touching the NPZ.
    Raises :class:`FileNotFoundError` on a missing pair and
    :class:`CheckpointVersionError` on a format-version mismatch.
    """
    npz_path, json_path = _paths(path)
    if not npz_path.exists() or not json_path.exists():
        raise FileNotFoundError(f"incomplete checkpoint at {npz_path.with_suffix('')}")
    meta = json.loads(json_path.read_text())
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointVersionError(json_path, meta.get("version"))
    return meta


def load_checkpoint(path: str | os.PathLike, readonly: bool = False) -> Checkpoint:
    """Read a checkpoint pair back; validates version and shapes.

    With ``readonly=True`` the loaded factor matrices are frozen
    (``writeable=False``) — the read side's aliasing guarantee for the
    serving plane, where one snapshot is shared by many reader threads
    and a stray in-place write would tear every concurrent response.
    """
    npz_path, json_path = _paths(path)
    meta = read_checkpoint_meta(path)
    with np.load(npz_path) as data:
        model = MFModel(data["P"], data["Q"])
    shape = meta.get("shape", {})
    if shape and (model.m, model.n, model.k) != (shape["m"], shape["n"], shape["k"]):
        raise ValueError("checkpoint metadata disagrees with stored factors")
    if readonly:
        model.P.flags.writeable = False
        model.Q.flags.writeable = False
    return Checkpoint(
        model=model,
        epoch=int(meta["epoch"]),
        rmse_history=[float(r) for r in meta.get("rmse_history", [])],
        config=meta.get("config", {}),
        version=int(meta["version"]),
    )


def resume_hogwild(
    ckpt: Checkpoint,
    ratings,
    extra_epochs: int,
    lr: float | None = None,
    reg: float | None = None,
    seed: int | None = None,
):
    """Continue Hogwild training from a checkpoint.

    Returns an updated :class:`Checkpoint` whose history appends the new
    epochs'.  Hyper-parameters default to the checkpoint's stored config.
    """
    from repro.mf.kernels import sgd_epoch

    if extra_epochs <= 0:
        raise ValueError("extra_epochs must be positive")
    cfg = ckpt.config
    lr = lr if lr is not None else float(cfg.get("lr", 0.005))
    reg = reg if reg is not None else float(cfg.get("reg", 0.01))
    seed = seed if seed is not None else int(cfg.get("seed", 0))
    batch = int(cfg.get("batch_size", 4096))

    rng = np.random.default_rng(seed + ckpt.epoch)  # new stream per resume
    history = list(ckpt.rmse_history)
    for _ in range(extra_epochs):
        sgd_epoch(ckpt.model, ratings, lr, reg, batch_size=batch, rng=rng)
        history.append(ckpt.model.rmse(ratings))
    return Checkpoint(
        model=ckpt.model,
        epoch=ckpt.epoch + extra_epochs,
        rmse_history=history,
        config={**cfg, "lr": lr, "reg": reg, "seed": seed, "batch_size": batch},
    )
