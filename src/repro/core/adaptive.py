"""Online re-partitioning: Algorithm 1 as a runtime controller.

The paper runs DP1's compensation loop once, before training.  Real
heterogeneous machines drift *during* training — thermal throttling,
co-tenant jobs, power caps — and a partition that was balanced at epoch
0 develops a straggler.  Since Algorithm 1 only needs measured per-epoch
compute times, it works just as well as an online controller:

* :class:`AdaptiveRepartitioner` watches per-worker epoch times and,
  when the spread exceeds a threshold, solves for new fractions from
  the *observed* rates (one exact Eq. 6 step on fresh measurements,
  which is what Algorithm 1's loop converges to).
* :func:`simulate_adaptive_run` demonstrates it on the cost model with
  injected slowdown events, comparing adaptive vs static runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import PartitionStrategy
from repro.core.cost_model import TimeCostModel
from repro.core.partition import PartitionPlan, exposed_sync_time
from repro.data.datasets import DatasetSpec
from repro.hardware.topology import Platform


class AdaptiveRepartitioner:
    """Re-balances the data partition when measured epoch times drift."""

    def __init__(
        self,
        fractions: Sequence[float],
        imbalance_threshold: float = 0.15,
        cooldown_epochs: int = 1,
    ):
        if not (0.0 < imbalance_threshold):
            raise ValueError("imbalance_threshold must be positive")
        if cooldown_epochs < 0:
            raise ValueError("cooldown_epochs must be non-negative")
        self.fractions = np.asarray(fractions, dtype=np.float64)
        if abs(self.fractions.sum() - 1.0) > 1e-6:
            raise ValueError("fractions must sum to 1")
        self.imbalance_threshold = imbalance_threshold
        self.cooldown_epochs = cooldown_epochs
        self._cooldown = 0
        self.repartitions = 0

    def observe(self, compute_times: Sequence[float]) -> np.ndarray | None:
        """Feed one epoch's measured compute times.

        Returns the new fraction vector when a re-partition fires,
        otherwise None.  Rates are inferred from the observation
        (``rate_i = x_i / t_i`` in data-per-second units) and Eq. 6
        re-balances against them.
        """
        t = np.asarray(list(compute_times), dtype=np.float64)
        if len(t) != len(self.fractions):
            raise ValueError("one time per worker required")
        if np.any(t <= 0):
            raise ValueError("compute times must be positive")
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        imbalance = (t.max() - t.min()) / t.min()
        if imbalance <= self.imbalance_threshold:
            return None
        rates = self.fractions / t
        new_fractions = rates / rates.sum()
        self.fractions = new_fractions
        self.repartitions += 1
        self._cooldown = self.cooldown_epochs
        return new_fractions.copy()


@dataclass(frozen=True)
class SlowdownEvent:
    """From ``epoch`` on, worker ``worker_index`` runs at ``factor`` speed."""

    worker_index: int
    epoch: int
    factor: float

    def __post_init__(self) -> None:
        if not (0.0 < self.factor <= 1.0):
            raise ValueError("factor must be in (0, 1]")
        if self.epoch < 0 or self.worker_index < 0:
            raise ValueError("epoch and worker_index must be non-negative")


@dataclass
class AdaptiveRunResult:
    """Per-epoch outcome of a (possibly adaptive) simulated run."""

    epoch_totals: list[float] = field(default_factory=list)
    repartition_epochs: list[int] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return float(sum(self.epoch_totals))


def simulate_adaptive_run(
    platform: Platform,
    dataset: DatasetSpec,
    events: Sequence[SlowdownEvent],
    epochs: int = 20,
    k: int = 128,
    adaptive: bool = True,
    imbalance_threshold: float = 0.15,
) -> AdaptiveRunResult:
    """Run the timing plane with injected slowdowns, optionally adapting.

    Each epoch prices pull + (perturbed) compute + push per worker and
    the server's merge queue; with ``adaptive`` the controller observes
    the perturbed compute times and re-balances.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    model = TimeCostModel(platform, dataset, k=k)
    plan: PartitionPlan = model.derive_partition(PartitionStrategy.DP1)
    fractions = np.asarray(plan.fractions, dtype=np.float64)
    controller = AdaptiveRepartitioner(fractions, imbalance_threshold)
    workers = platform.workers
    tsync = model.sync_time()

    result = AdaptiveRunResult()
    for epoch in range(epochs):
        factors = np.ones(len(workers))
        for ev in events:
            if epoch >= ev.epoch:
                if not (0 <= ev.worker_index < len(workers)):
                    raise IndexError("slowdown event worker out of range")
                factors[ev.worker_index] = min(factors[ev.worker_index], ev.factor)

        compute = np.array([
            model.compute_time(w, float(x)) / f
            for w, x, f in zip(workers, controller.fractions, factors)
        ])
        finishes = [
            model.pull_time(w) + c + model.push_time(w)
            for w, c in zip(workers, compute)
        ]
        total = max(finishes) + exposed_sync_time(finishes, tsync)
        result.epoch_totals.append(float(total))

        if adaptive:
            if controller.observe(compute) is not None:
                result.repartition_epochs.append(epoch)
    return result
