"""The COMM module: pull/push transfer accounting and buffers (paper 3.5).

Two responsibilities:

* **Cost accounting** — :class:`CommPlan` computes how many bytes each
  worker moves per epoch under the active strategies (Q-only, FP16),
  and :class:`CommModel` turns bytes into seconds for either backend:

  - ``COMM``: HCC-MF's shared-pinned-memory module.  The pull buffer is
    mapped into every worker and the push buffers into the server, so a
    transfer is one copy at full channel bandwidth.
  - ``COMM_P``: the ps-lite-based baseline of Table 5.  Parameter-server
    messaging serializes key/value pairs, crosses the kernel, and makes
    temporary copies; calibrated to Table 5's measured ~7x slowdown.

* **Buffer discipline** — :class:`PullBuffer` / :class:`PushBuffer` are
  the actual shared buffers the in-process executor uses.  They count
  copies so tests can assert the paper's "data copy usually happens only
  once in one epoch" property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.compression import compress_fp16, decompress_fp16
from repro.core.config import CommBackendKind, CommConfig, TransmitMode
from repro.data.datasets import DatasetSpec
from repro.hardware.specs import BusSpec

#: COMM-P calibration (Table 5): ps-lite-style messaging achieves about
#: 1/7 of the raw channel bandwidth (extra serialization copies + kernel
#: crossings) and pays a per-message software overhead.
COMM_P_BANDWIDTH_FACTOR = 1.0 / 6.8
COMM_P_MESSAGE_OVERHEAD_S = 250e-6


@dataclass(frozen=True)
class CommPlan:
    """Per-epoch wire traffic of one worker under a strategy set.

    All quantities in bytes.  ``epoch_pull``/``epoch_push`` recur every
    epoch; ``final_push_extra`` is paid once at the end of training
    (the P matrix under "transmit Q only").
    """

    epoch_pull: int
    epoch_push: int
    final_push_extra: int
    sync_values: int  # feature values the server merges per worker sync

    @classmethod
    def for_dataset(cls, spec: DatasetSpec, k: int, comm: CommConfig) -> "CommPlan":
        """Traffic plan from the dataset shape and strategy switches.

        With a row grid and Q-only transmission only the ``k x n`` item
        matrix travels each epoch and the server merges only Q; the
        ``m x k`` user matrix is pushed once after the last epoch.
        The AUTO transmit mode resolves against the *grid-major* side:
        HCC-MF transposes column-grid problems, so the recurring matrix
        is whichever side is smaller.

        The strategy byte math itself lives in one place — the channel
        middlewares of :mod:`repro.engine.channels` — and this method
        simply materializes the stack the config describes and asks it
        (imported lazily: core stays import-independent of the engine).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        from repro.engine.channels import channel_for

        return channel_for(comm, spec.m, spec.n).comm_plan(spec, k)

    def total_bytes(self, epochs: int) -> int:
        """All bytes one worker moves over a full training run."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        return epochs * (self.epoch_pull + self.epoch_push) + self.final_push_extra


class CommModel:
    """Transfer-time model for a communication backend."""

    def __init__(self, backend: CommBackendKind = CommBackendKind.COMM):
        self.backend = backend

    def transfer_time(self, bus: BusSpec, nbytes: float) -> float:
        """Seconds to move ``nbytes`` between a worker and the server."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        if self.backend is CommBackendKind.COMM:
            # shared pinned memory: one copy at channel bandwidth
            return bus.transfer_time(nbytes)
        # ps-lite path: reduced effective bandwidth + per-message overhead
        return (
            COMM_P_MESSAGE_OVERHEAD_S
            + bus.latency_us * 1e-6
            + nbytes / (bus.bandwidth_gbs * 1e9 * COMM_P_BANDWIDTH_FACTOR)
        )

    def pull_time(self, bus: BusSpec, plan: CommPlan) -> float:
        return self.transfer_time(bus, plan.epoch_pull)

    def push_time(self, bus: BusSpec, plan: CommPlan) -> float:
        return self.transfer_time(bus, plan.epoch_push)


# ---------------------------------------------------------------------------
# real buffers (used by the in-process and shared-memory executors)
# ---------------------------------------------------------------------------
#: Observer signature for buffer instrumentation: ``(op, worker)`` where
#: ``op`` is "deposit" / "read" / "consume" and ``worker`` is the acting
#: worker id when known (None means the server side).  The race detector
#: (:mod:`repro.analysis.race`) attaches observers to prove the one-copy
#: discipline at test time; ``None`` (the default) costs nothing.
BufferObserver = Callable[[str, "int | None"], None]


class PullBuffer:
    """Server-side buffer that workers map and read (one copy to fill).

    The server deposits the current global Q (optionally FP16) once per
    epoch; every worker reads the same buffer, so the per-epoch copy
    count on the server side is exactly one.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        fp16: bool = False,
        observer: BufferObserver | None = None,
        channel=None,
    ):
        #: optional repro.engine channel stack owning the wire codec
        #: (duck-typed — comm never imports repro.engine); when absent
        #: the legacy fp16 flag selects the built-in codec
        self.channel = channel
        self.fp16 = bool(channel.wire_is_fp16) if channel is not None else fp16
        dtype = (
            np.dtype(channel.wire_dtype)
            if channel is not None
            else (np.float16 if self.fp16 else np.float32)
        )
        self._buf = np.zeros(shape, dtype=dtype)
        self.copies_in = 0
        self.reads = 0
        self.observer = observer

    @property
    def nbytes(self) -> int:
        return self._buf.nbytes

    def deposit(self, values: np.ndarray) -> None:
        """Server -> buffer (the single per-epoch copy)."""
        if values.shape != self._buf.shape:
            raise ValueError(f"shape mismatch: {values.shape} vs {self._buf.shape}")
        if self.channel is not None:
            self.channel.encode(values, self._buf)
        elif self.fp16:
            np.copyto(self._buf, compress_fp16(values))
        else:
            np.copyto(self._buf, values.astype(np.float32, copy=False))
        self.copies_in += 1
        if self.observer is not None:
            self.observer("deposit", None)

    def _decode(self) -> np.ndarray:
        if self.channel is not None:
            return self.channel.decode(self._buf)
        if self.fp16:
            return decompress_fp16(self._buf)
        return self._buf.copy()

    def read(self, worker: int | None = None) -> np.ndarray:
        """Worker view of the buffer contents, decompressed to FP32."""
        self.reads += 1
        if self.observer is not None:
            self.observer("read", worker)
        return self._decode()

    def epoch_base(self) -> np.ndarray:
        """The wire-accurate merge base: what workers will decode.

        A server-side bookkeeping view — deliberately *not* counted as a
        worker read, so the one-copy accounting the race detector checks
        stays exact.
        """
        return self._decode()


class PushBuffer:
    """Per-worker buffer mapped into the server's address space.

    The worker deposits its updated local Q once; the server consumes
    it in place during sync (no further copy).
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        fp16: bool = False,
        worker_id: int | None = None,
        observer: BufferObserver | None = None,
        channel=None,
    ):
        #: optional repro.engine channel stack (see PullBuffer.channel)
        self.channel = channel
        self.fp16 = bool(channel.wire_is_fp16) if channel is not None else fp16
        dtype = (
            np.dtype(channel.wire_dtype)
            if channel is not None
            else (np.float16 if self.fp16 else np.float32)
        )
        self._buf = np.zeros(shape, dtype=dtype)
        self.copies_in = 0
        self.consumed = 0
        self.worker_id = worker_id
        self.observer = observer

    @property
    def nbytes(self) -> int:
        return self._buf.nbytes

    def deposit(self, values: np.ndarray) -> None:
        if values.shape != self._buf.shape:
            raise ValueError(f"shape mismatch: {values.shape} vs {self._buf.shape}")
        if self.channel is not None:
            self.channel.encode(values, self._buf)
        elif self.fp16:
            np.copyto(self._buf, compress_fp16(values))
        else:
            np.copyto(self._buf, values.astype(np.float32, copy=False))
        self.copies_in += 1
        if self.observer is not None:
            self.observer("deposit", self.worker_id)

    def consume(self) -> np.ndarray:
        """Server-side view for the sync merge (FP32)."""
        self.consumed += 1
        if self.observer is not None:
            self.observer("consume", None)
        if self._buf.dtype == np.float32:
            return self._buf  # in-place consumption: zero-copy
        if self.channel is not None:
            return self.channel.decode(self._buf)
        return decompress_fp16(self._buf)
