"""Configuration types for HCC-MF training runs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class PartitionStrategy(enum.Enum):
    """Which data-partition strategy the DataManager applies (paper 3.3).

    * ``EVEN`` — equal nnz per worker regardless of speed (the DSGD-style
      baseline; produces Figure 3(a)'s "Unbalanced data" bar on a
      heterogeneous platform).
    * ``DP0`` — proportional to independently-measured worker throughput
      (Eq. 6).
    * ``DP1`` — DP0 followed by the heterogeneous-load-balance
      compensation loop (Algorithm 1).
    * ``DP2`` — DP1 followed by hidden-synchronization staggering (Eq. 7).
    * ``AUTO`` — the paper's default: DP1 when synchronization is
      negligible (``max{T_i}/T_sync >= lambda``), else DP2 (Eq. 5).
    """

    EVEN = "even"
    DP0 = "dp0"
    DP1 = "dp1"
    DP2 = "dp2"
    AUTO = "auto"


class TransmitMode(enum.Enum):
    """Which feature matrices travel each epoch (paper 3.4, Strategy 1).

    ``Q_ROTATE`` is this reproduction's implementation of the paper's
    future work (section 6: "HCC-MF still has limitations in
    communication ... We will try to solve this problem in the future"):
    each worker *owns* one column block of Q and the blocks rotate
    around a worker ring.  Ownership makes the server's WAW-resolving
    sync unnecessary, and every transfer is a peer-to-peer hop of Q/p
    values that overlaps the rotation step's compute — so the *exposed*
    communication finally shrinks as workers are added, fixing the
    Table 6 limitation.
    """

    P_AND_Q = "pq"       # both matrices every epoch (unoptimized)
    Q_ONLY = "q"         # Q every epoch, P pushed once at the end
    Q_ROTATE = "q-rotate"  # ring-rotated Q ownership (future-work mode)
    AUTO = "auto"        # Q_ONLY when the row grid applies (m >= n)


class CommBackendKind(enum.Enum):
    """Which communication implementation carries pull/push traffic."""

    COMM = "comm"        # HCC-MF's shared-pinned-memory one-copy module
    COMM_P = "comm-p"    # the ps-lite-based baseline of Table 5


@dataclass(frozen=True)
class CommConfig:
    """Communication-optimization switches (paper 3.4).

    ``streams > 1`` enables Strategy 3 (asynchronous computing-
    transmission) on workers that have copy engines; ``fp16`` enables
    Strategy 2; ``transmit`` selects Strategy 1.
    """

    transmit: TransmitMode = TransmitMode.AUTO
    fp16: bool = False
    streams: int = 1
    backend: CommBackendKind = CommBackendKind.COMM

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("streams must be >= 1")

    @property
    def uses_async(self) -> bool:
        return self.streams > 1

    def resolve_transmit(self, m: int, n: int) -> TransmitMode:
        """Resolve AUTO: transmit only the smaller-side matrix.

        With a row grid (m >= n) local P rows never conflict, so only Q
        needs to travel; the symmetric case transmits P only, which this
        codebase realizes by transposing the problem, so the resolved
        mode is always expressed as Q_ONLY.
        """
        if self.transmit is not TransmitMode.AUTO:
            return self.transmit
        return TransmitMode.Q_ONLY


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the epoch engine reacts to worker failures (docs/resilience.md).

    The three escalation levels mirror the failure taxonomy: a
    *transient* failure (straggler, corrupted payload) retries the
    epoch with exponential backoff; a *dead* worker triggers a
    redistribution of its shard across the survivors (degraded-mode
    continuation); and repeated failure past ``max_retries`` — or a
    death that would leave fewer than ``min_workers`` survivors —
    checkpoints (when a checkpoint path is configured) and aborts with
    :class:`~repro.resilience.TrainingAborted`.
    """

    #: transient-failure retries of the same epoch before aborting
    max_retries: int = 2
    #: first retry waits this long; each further retry multiplies by
    #: ``backoff_factor`` (0.0 disables the wait, handy in tests)
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    #: on worker death, reassign the dead shard across survivors and
    #: continue degraded (False: any death aborts)
    redistribute: bool = True
    #: abort instead of degrading below this many surviving workers
    min_workers: int = 1
    #: write a final checkpoint before raising TrainingAborted (needs a
    #: checkpoint path on the run)
    checkpoint_on_abort: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")

    def backoff_s(self, retries_so_far: int) -> float:
        """Wait before retry number ``retries_so_far + 1``."""
        if retries_so_far < 0:
            raise ValueError("retries_so_far must be non-negative")
        return self.backoff_base_s * self.backoff_factor**retries_so_far


@dataclass(frozen=True)
class HCCConfig:
    """Full configuration of an HCC-MF training run."""

    k: int = 128
    epochs: int = 20
    learning_rate: float | None = None   # None: take the dataset's
    reg: float | None = None             # None: take the dataset's
    partition: PartitionStrategy = PartitionStrategy.AUTO
    comm: CommConfig = field(default_factory=CommConfig)
    lambda_threshold: float = 10.0       # Eq. 5's lambda (paper uses 10)
    batch_size: int = 4096
    seed: int = 0
    dp1_tolerance: float = 0.1           # Algorithm 1's 10% gap criterion
    dp1_max_rounds: int = 8
    #: ceiling on any cross-process rendezvous (barrier waits, process
    #: joins) in the process plane; a breach names the missing ranks
    barrier_timeout_s: float = 120.0
    #: opt-in fault tolerance: None (the default) preserves the classic
    #: fail-fast behaviour, a RecoveryPolicy turns on retry /
    #: redistribute / checkpoint-and-abort handling in the engine
    recovery: RecoveryPolicy | None = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.lambda_threshold <= 0:
            raise ValueError("lambda_threshold must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not (0 < self.dp1_tolerance < 1):
            raise ValueError("dp1_tolerance must be in (0, 1)")
        if self.barrier_timeout_s <= 0:
            raise ValueError("barrier_timeout_s must be positive")

    def with_comm(self, **kwargs) -> "HCCConfig":
        """Convenience: a copy with updated communication settings."""
        return replace(self, comm=replace(self.comm, **kwargs))
