"""Convergence diagnostics for RMSE curves.

Figure 7 compares methods by *when* they reach a target RMSE, not just
where they end up.  These helpers make that analysis a library feature:

* :func:`epochs_to_target` / :func:`time_to_target` — first crossing of
  a target RMSE (with linear interpolation between epochs);
* :func:`fit_exponential` — fit ``rmse(e) ~ floor + a * exp(-e/tau)``
  to a curve, yielding the convergence floor and time constant;
* :func:`speedup_at_target` — the Figure 7(d-f) metric: the ratio of
  two methods' times to a common target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def epochs_to_target(rmse: Sequence[float], target: float) -> float:
    """Fractional epoch index where the curve first reaches ``target``.

    Linear interpolation between the bracketing epochs; ``inf`` when the
    target is never reached.  Epochs are 1-based (epoch 1 = after the
    first pass), matching Figure 7's axes.
    """
    r = np.asarray(list(rmse), dtype=np.float64)
    if len(r) == 0:
        raise ValueError("empty rmse history")
    below = np.nonzero(r <= target)[0]
    if len(below) == 0:
        return float("inf")
    i = int(below[0])
    if i == 0:
        return 1.0
    prev, curr = r[i - 1], r[i]
    if prev == curr:
        return float(i + 1)
    frac = (prev - target) / (prev - curr)
    return float(i + frac)


def time_to_target(
    rmse: Sequence[float],
    epoch_time: float,
    target: float,
) -> float:
    """Seconds until the target RMSE, given a constant per-epoch time."""
    if epoch_time <= 0:
        raise ValueError("epoch_time must be positive")
    return epochs_to_target(rmse, target) * epoch_time


def speedup_at_target(
    rmse_a: Sequence[float],
    epoch_time_a: float,
    rmse_b: Sequence[float],
    epoch_time_b: float,
    target: float | None = None,
) -> float:
    """How much faster method A reaches the target than method B.

    Defaults the target to the worst of the two final RMSEs (the point
    both curves provably reach), which is how Figure 7(d-f)'s speedup
    arrows are read.
    """
    if target is None:
        target = max(rmse_a[-1], rmse_b[-1])
    ta = time_to_target(rmse_a, epoch_time_a, target)
    tb = time_to_target(rmse_b, epoch_time_b, target)
    if ta == float("inf") or tb == float("inf"):
        raise ValueError("one method never reaches the target")
    if ta <= 0:
        raise ValueError("degenerate time-to-target")
    return tb / ta


@dataclass(frozen=True)
class ExponentialFit:
    """rmse(e) ~ floor + amplitude * exp(-(e-1)/tau)."""

    floor: float
    amplitude: float
    tau: float
    residual: float

    def predict(self, epoch: float) -> float:
        return self.floor + self.amplitude * np.exp(-(epoch - 1.0) / self.tau)

    def epochs_to_within(self, margin: float) -> float:
        """Epochs until the curve is within ``margin`` of its floor."""
        if margin <= 0:
            raise ValueError("margin must be positive")
        if self.amplitude <= margin:
            return 1.0
        return float(1.0 + self.tau * np.log(self.amplitude / margin))


def fit_exponential(rmse: Sequence[float]) -> ExponentialFit:
    """Least-squares exponential fit of a convergence curve.

    Grid-searches the floor (the fit is linear in log space given the
    floor) — robust for the short, monotone curves MF training emits.
    """
    r = np.asarray(list(rmse), dtype=np.float64)
    if len(r) < 3:
        raise ValueError("need at least 3 epochs to fit")
    epochs = np.arange(1.0, len(r) + 1.0)

    def evaluate(floor: float) -> ExponentialFit | None:
        y = r - floor
        if np.any(y <= 0):
            return None
        logy = np.log(y)
        # weight by y: log-space residuals near the floor would otherwise
        # dominate the fit
        slope, intercept = np.polyfit(epochs - 1.0, logy, 1, w=y)
        if slope >= 0:
            return None
        tau = -1.0 / slope
        amplitude = float(np.exp(intercept))
        pred = floor + amplitude * np.exp(-(epochs - 1.0) / tau)
        residual = float(np.sqrt(np.mean((pred - r) ** 2)))
        return ExponentialFit(float(floor), amplitude, float(tau), residual)

    best: ExponentialFit | None = None
    lo, hi = 0.0, float(r.min()) * 0.999
    for _ in range(2):  # coarse grid, then refine around the winner
        step = (hi - lo) / 59 if hi > lo else 0.0
        for floor in np.linspace(lo, hi, 60):
            fit = evaluate(float(floor))
            if fit is not None and (best is None or fit.residual < best.residual):
                best = fit
        if best is None or step == 0.0:
            break
        lo = max(0.0, best.floor - step)
        hi = min(float(r.min()) * 0.999, best.floor + step)
    if best is None:
        raise ValueError("curve is not decreasing; cannot fit an exponential")
    return best
