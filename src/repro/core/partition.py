"""Data partition strategies DP0, DP1, DP2 (paper section 3.3).

``x_i`` is worker *i*'s fraction of the nnz training entries; all
strategies produce vectors on the unit simplex (sum to 1, entries >= 0).

* :func:`dp0` — Eq. 6: fractions proportional to the reciprocal of each
  worker's *independently measured* execution time (equivalently,
  proportional to throughput).  Optimal by Theorem 1 when the measured
  rates hold at runtime.
* :func:`dp1` — Algorithm 1: at runtime, memory bandwidth shifts with
  partition size and co-running interference, unbalancing CPU vs GPU
  compute times.  The compensation loop moves ``Delta T`` of work
  between the CPU class and the GPU class until the class-average
  compute times agree within 10%.
* :func:`dp2` — Eq. 7: when synchronization cannot be ignored, stagger
  worker finish times in steps of ``T_sync`` around the DP1 solution so
  each worker's sync is hidden under the next worker's compute.

:func:`exposed_sync_time` simulates the server's serial sync queue and
measures how much synchronization extends the epoch past the last
worker — the quantity DP2 minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class PartitionPlan:
    """Result of a partition strategy."""

    strategy: str
    fractions: tuple[float, ...]
    predicted_times: tuple[float, ...] = ()
    rounds: int = 0

    def __post_init__(self) -> None:
        fr = np.asarray(self.fractions, dtype=np.float64)
        if len(fr) == 0:
            raise ValueError("empty partition")
        if np.any(fr < -1e-12):
            raise ValueError("negative fraction")
        if not np.isclose(fr.sum(), 1.0, atol=1e-6):
            raise ValueError(f"fractions must sum to 1, got {fr.sum()}")

    @property
    def n_workers(self) -> int:
        return len(self.fractions)

    def imbalance(self) -> float:
        """Relative spread of predicted times: (max-min)/min."""
        if not self.predicted_times:
            return 0.0
        t = np.asarray(self.predicted_times)
        if t.min() <= 0:
            return float("inf")
        return float((t.max() - t.min()) / t.min())

    def materialize(self, ratings, kind=None):
        """Turn fractions into concrete per-worker grid assignments.

        Convenience bridge to :func:`repro.data.grid.partition_rows` so
        callers (the framework, the race detector) can go straight from
        a plan to the row ranges whose disjointness Strategy 1 needs.
        Returns one ``GridAssignment`` per worker.
        """
        from repro.data.grid import partition_rows

        return partition_rows(ratings, self.fractions, kind)


def _normalize(x: np.ndarray) -> np.ndarray:
    x = np.maximum(np.asarray(x, dtype=np.float64), 0.0)
    s = x.sum()
    if s <= 0:
        raise ValueError("all fractions vanished during partitioning")
    return x / s


def even_partition(n_workers: int) -> PartitionPlan:
    """Uniform split — the DSGD-style baseline that ignores heterogeneity.

    On a heterogeneous platform this is Figure 3(a)'s "Unbalanced data"
    configuration: the slowest processor drags the epoch (bucket
    effect).
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    return PartitionPlan("even", tuple([1.0 / n_workers] * n_workers))


def dp0(independent_times: Sequence[float]) -> PartitionPlan:
    """Eq. 6: x_i = (1/T_i_e) / sum_j (1/T_j_e).

    ``independent_times`` are each worker's measured times to process
    the *whole* dataset alone (``T_i_e`` in Table 1).  Faster workers
    receive proportionally more data; by Theorem 1 this equalizes
    ``a_i * x_i`` and minimizes ``max_i{T_i}`` under the measured rates.
    """
    t = np.asarray(independent_times, dtype=np.float64)
    if len(t) == 0:
        raise ValueError("need at least one worker")
    if np.any(t <= 0):
        raise ValueError("independent times must be positive")
    inv = 1.0 / t
    x = _normalize(inv)
    # predicted per-worker time under the measured rates: a_i x_i = t_i x_i
    pred = tuple(float(ti * xi) for ti, xi in zip(t, x))
    return PartitionPlan("dp0", tuple(map(float, x)), pred)


def dp1(
    start: PartitionPlan,
    measure: Callable[[Sequence[float]], Sequence[float]],
    is_gpu: Sequence[bool],
    tolerance: float = 0.1,
    max_rounds: int = 8,
) -> PartitionPlan:
    """Algorithm 1: heterogeneous load-balance compensation.

    ``measure(x)`` returns the *runtime* compute times of every worker
    under partition ``x`` (in the paper, one measured epoch; here either
    the cost model or a wall-clock probe).  Each round computes the gap
    between the CPU-class and GPU-class average compute times and shifts
    ``Delta T = gap / (c + g)`` worth of data from the slow class to the
    fast class, exactly as lines 2-13 of Algorithm 1.
    """
    gpu_mask = np.asarray(list(is_gpu), dtype=bool)
    if len(gpu_mask) != start.n_workers:
        raise ValueError("is_gpu length mismatch")
    if not (0 < tolerance < 1):
        raise ValueError("tolerance must be in (0, 1)")
    c = int(np.sum(~gpu_mask))
    g = int(np.sum(gpu_mask))

    x = np.asarray(start.fractions, dtype=np.float64)
    times = np.asarray(measure(x), dtype=np.float64)
    if len(times) != len(x):
        raise ValueError("measure() returned wrong number of times")

    if c == 0 or g == 0:
        # homogeneous class: DP0 already balanced it; nothing to compensate
        return PartitionPlan("dp1", tuple(map(float, x)), tuple(map(float, times)), rounds=0)

    rounds = 0
    while rounds < max_rounds:
        t_cpu = times[~gpu_mask].mean()
        t_gpu = times[gpu_mask].mean()
        gap = abs(t_cpu - t_gpu) / max(min(t_cpu, t_gpu), 1e-30)
        if gap <= tolerance:
            break
        l = 1.0 if t_cpu > t_gpu else -1.0
        delta = l * (t_cpu - t_gpu) / (c + g)
        new_x = x.copy()
        # CPUs shed (or gain) l*g*delta of time worth of data ...
        new_x[~gpu_mask] = x[~gpu_mask] * (times[~gpu_mask] - l * g * delta) / times[~gpu_mask]
        # ... which the GPUs absorb, l*c*delta each
        new_x[gpu_mask] = x[gpu_mask] * (times[gpu_mask] + l * c * delta) / times[gpu_mask]
        x = _normalize(new_x)
        times = np.asarray(measure(x), dtype=np.float64)
        rounds += 1

    return PartitionPlan("dp1", tuple(map(float, x)), tuple(map(float, times)), rounds=rounds)


def dp2(
    base: PartitionPlan,
    sync_time: float,
    order: Sequence[int] | None = None,
    overheads: Sequence[float] | None = None,
) -> PartitionPlan:
    """Eq. 7: stagger worker times by +-n*T_sync around the DP1 median.

    Workers are ranked (by ``order``, defaulting to ascending base
    time); the middle worker keeps its DP1 schedule and the others
    target ``T_median +- n * T_sync`` so worker i's synchronization on
    the server is hidden under worker i+1's remaining compute
    (right-hand diagram of Figure 5).  Fractions rescale linearly with
    the target/actual compute-time ratio (Algorithm 1 line 6 style) and
    are renormalized.

    ``overheads`` are per-worker pull+push times: what the server's
    queue sees is the *push landing* time (compute + comm), so the
    stagger must be applied to finish times, not bare compute times.
    Omitted overheads reduce to the bare Eq. 7 behaviour.
    """
    if sync_time < 0:
        raise ValueError("sync_time must be non-negative")
    if not base.predicted_times:
        raise ValueError("base plan must carry predicted times")
    times = np.asarray(base.predicted_times, dtype=np.float64)
    p = len(times)
    if overheads is None:
        over = np.zeros(p)
    else:
        over = np.asarray(list(overheads), dtype=np.float64)
        if len(over) != p or np.any(over < 0):
            raise ValueError("need one non-negative overhead per worker")
    finishes = times + over
    idx = np.asarray(order if order is not None else np.argsort(finishes))
    if sorted(idx.tolist()) != list(range(p)):
        raise ValueError("order must be a permutation of workers")

    center = float(np.median(finishes))
    x = np.asarray(base.fractions, dtype=np.float64).copy()
    targets = np.empty(p)
    for rank, worker in enumerate(idx):
        offset = (rank - (p - 1) / 2.0) * sync_time
        # target finish -> target compute, floored away from zero
        targets[worker] = max(center + offset - over[worker], 0.1 * times[worker])
    x = x * targets / np.maximum(times, 1e-30)
    x = _normalize(x)
    # predicted compute times scale the same way (rate is locally constant)
    pred = times * (x / np.maximum(np.asarray(base.fractions), 1e-30))
    return PartitionPlan("dp2", tuple(map(float, x)), tuple(map(float, pred)), rounds=base.rounds)


def exposed_sync_time(
    finish_times: Sequence[float],
    sync_time: float | Sequence[float],
) -> float:
    """Server sync queue simulation: how far sync extends the epoch.

    The server merges one push at a time (``T_i_sync`` each, Eq. 3), in
    arrival order.  The *exposed* synchronization is the interval
    between the last push landing and the server finishing the last
    merge — the quantity that adds to ``max{T_i}`` in Eq. 1.

    ``sync_time`` may be a scalar (every push costs the same merge) or a
    per-push sequence — Strategy 3's pipelined workers push one chunk
    per stream, each needing only ``T_sync / streams`` of merging, which
    is how asynchronous computing-transmission also hides sync under
    compute ("synchronization on the server will occur in the middle of
    the process", paper 3.4).
    """
    finishes = [float(f) for f in finish_times]
    if not finishes:
        return 0.0
    if np.isscalar(sync_time):
        durations = [float(sync_time)] * len(finishes)
    else:
        durations = [float(s) for s in sync_time]
        if len(durations) != len(finishes):
            raise ValueError("one sync duration per push required")
    if any(d < 0 for d in durations):
        raise ValueError("sync durations must be non-negative")
    events = sorted(zip(finishes, durations))
    server_free = 0.0
    for f, d in events:
        server_free = max(server_free, f) + d
    return max(0.0, server_free - events[-1][0])
