"""Numerical verification of the paper's Theorem 1.

Theorem 1 (section 3.3): with ``sum x_i = 1``, the partition minimizing
``T(x) = max_i (a_i x_i + b_i)`` is the one equalizing every
``a_i x_i + b_i``.  The paper proves it by exchange; this module checks
it *numerically* — solve the equalizing partition in closed form, then
show no random perturbation on the simplex does better — turning the
proof into a reproducible experiment (and a hypothesis-testable
property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def equalizing_partition(a: Sequence[float], b: Sequence[float]) -> np.ndarray:
    """The closed-form Theorem 1 solution.

    Solves ``a_i x_i + b_i = C`` with ``sum x_i = 1``:
    ``C = (1 + sum(b_j/a_j)) / sum(1/a_j)`` and ``x_i = (C - b_i)/a_i``.
    Raises when the equalizer would need a negative share (a worker
    whose fixed cost ``b_i`` already exceeds the common level cannot be
    equalized and should be excluded by the caller).
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if len(a) != len(b) or len(a) == 0:
        raise ValueError("a and b must be equal-length and non-empty")
    if np.any(a <= 0):
        raise ValueError("per-unit costs a_i must be positive")
    inv = 1.0 / a
    level = (1.0 + np.sum(b * inv)) / np.sum(inv)
    x = (level - b) * inv
    if np.any(x < -1e-12):
        raise ValueError(
            "no equalizing partition with non-negative shares exists "
            "(some b_i exceeds the common level)"
        )
    x = np.maximum(x, 0.0)
    return x / x.sum()


def makespan(a: Sequence[float], b: Sequence[float], x: Sequence[float]) -> float:
    """``T(x) = max_i (a_i x_i + b_i)``."""
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    x = np.asarray(list(x), dtype=np.float64)
    return float(np.max(a * x + b))


@dataclass(frozen=True)
class Theorem1Report:
    """Outcome of the random-perturbation optimality check."""

    x_star: tuple[float, ...]
    optimal_makespan: float
    best_perturbed_makespan: float
    trials: int

    @property
    def holds(self) -> bool:
        return self.best_perturbed_makespan >= self.optimal_makespan - 1e-9


def verify_theorem1(
    a: Sequence[float],
    b: Sequence[float],
    trials: int = 2000,
    scale: float = 0.2,
    seed: int = 0,
) -> Theorem1Report:
    """Check that no perturbed simplex point beats the equalizer.

    Draws ``trials`` random Dirichlet-ish perturbations around the
    closed-form solution (projected back onto the simplex) and records
    the best makespan found; Theorem 1 predicts it never undercuts the
    equalizer's.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not (0 < scale < 1):
        raise ValueError("scale must be in (0, 1)")
    x_star = equalizing_partition(a, b)
    optimum = makespan(a, b, x_star)
    rng = np.random.default_rng(seed)
    best = float("inf")
    n = len(x_star)
    for _ in range(trials):
        noise = rng.normal(0.0, scale, size=n)
        cand = np.maximum(x_star * (1.0 + noise), 1e-12)
        cand = cand / cand.sum()
        best = min(best, makespan(a, b, cand))
    # also try fully random simplex points (global, not just local)
    for _ in range(trials):
        cand = rng.dirichlet(np.ones(n))
        best = min(best, makespan(a, b, cand))
    return Theorem1Report(
        x_star=tuple(float(v) for v in x_star),
        optimal_makespan=optimum,
        best_perturbed_makespan=best,
        trials=2 * trials,
    )
