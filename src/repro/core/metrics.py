"""Performance metrics: "computing power" and its utilization (paper 4.2).

The paper argues peak FLOPS and raw speedup are poor measures for this
memory-bound workload and instead defines, for SGD-based MF,

    computing_power = nnz * epochs / cost_time          (Eq. 8)

(parameter updates per second), with the *ideal* power of a platform
being the sum of its processors' independently measured powers, and

    utilization = actual_power / ideal_power

the headline metric of Table 4 and Figure 9.
"""

from __future__ import annotations

from repro.data.datasets import DatasetSpec
from repro.hardware.topology import Platform


def computing_power(nnz: int, epochs: int, cost_time: float) -> float:
    """Eq. 8: rating-matrix elements updated per second."""
    if nnz <= 0 or epochs <= 0:
        raise ValueError("nnz and epochs must be positive")
    if cost_time <= 0:
        raise ValueError("cost_time must be positive")
    return nnz * epochs / cost_time


def ideal_computing_power(platform: Platform, dataset: DatasetSpec, k: int = 128) -> float:
    """Sum of the workers' independent computing powers (Table 4 "Ideal").

    Each worker's contribution is its update rate training the dataset
    alone at full duty — time-shared workers count at full share, since
    the ideal assumes the whole physical processor is available.
    """
    total = 0.0
    for w in platform.workers:
        full = w.with_time_share(1.0) if w.time_share < 1.0 else w
        total += full.update_rate(k, dataset, partition_frac=1.0, corun=False)
    return total


def utilization(actual_power: float, ideal_power: float) -> float:
    """Fraction of the platform's ideal computing power actually used."""
    if ideal_power <= 0:
        raise ValueError("ideal_power must be positive")
    if actual_power < 0:
        raise ValueError("actual_power must be non-negative")
    return actual_power / ideal_power


def speedup(baseline_time: float, new_time: float) -> float:
    """How many times faster ``new_time`` is than ``baseline_time``."""
    if baseline_time <= 0 or new_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / new_time
