"""ALS comparator — the other major MF solver family.

SGD's main competitor for matrix factorization is alternating least
squares (the cuMF project the paper builds on ships both cuMF_SGD and
cuMF_ALS).  ALS alternates closed-form ridge-regression solves: fix Q
and solve every user row exactly, then fix P and solve every item
column.  Each half-epoch is embarrassingly parallel and needs *no*
synchronization at all — at the price of O(k^2) memory traffic and an
O(k^3) solve per entity.

Including ALS lets the library answer the practical question the paper
leaves open: when is HCC-MF's SGD machinery (cost model, partition,
comm strategies) worth it versus just running ALS?  Short version: ALS
epochs cost ~k/3 times more compute per rating (Eq. 2's 16k bytes vs
ALS's ~4k^2+ per entity), so for the paper's k=128 SGD wins per epoch
while ALS wins per *iteration count* on ill-conditioned data.
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


class ALS:
    """Alternating least squares with per-entity ridge solves."""

    def __init__(self, k: int, reg: float = 0.05, seed: int = 0):
        if k <= 0:
            raise ValueError("k must be positive")
        if reg < 0:
            raise ValueError("reg must be non-negative")
        self.k = k
        self.reg = reg
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()

    # ------------------------------------------------------------------
    @staticmethod
    def _solve_side(
        fixed: np.ndarray,           # (k, count_other) — the fixed factor
        indices: np.ndarray,         # entity id per rating
        others: np.ndarray,          # other-side id per rating
        vals: np.ndarray,
        n_entities: int,
        k: int,
        reg: float,
    ) -> np.ndarray:
        """Solve every entity's ridge regression against the fixed side.

        Ratings are grouped by entity with one argsort; each group's
        normal equations ``(F F^T + reg*nnz_e*I) x = F r`` are solved
        exactly (the LIBMF/cuMF_ALS weighting of the penalty).
        """
        out = np.zeros((n_entities, k), dtype=np.float32)
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        sorted_other = others[order]
        sorted_vals = vals[order].astype(np.float64)
        if len(sorted_idx) == 0:
            return out
        starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_idx)) + 1))
        stops = np.concatenate((starts[1:], [len(sorted_idx)]))
        eye = np.eye(k)
        for a, b in zip(starts, stops):
            entity = int(sorted_idx[a])
            f = fixed[:, sorted_other[a:b]].astype(np.float64)  # (k, cnt)
            r = sorted_vals[a:b]
            gram = f @ f.T + reg * (b - a) * eye
            rhs = f @ r
            out[entity] = np.linalg.solve(gram, rhs).astype(np.float32)
        return out

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 10,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        for _ in range(epochs):
            # user step: fix Q, solve every P row
            self.model.P[...] = self._solve_side(
                self.model.Q, ratings.rows, ratings.cols, ratings.vals,
                ratings.m, self.k, self.reg,
            )
            # item step: fix P, solve every Q column
            q_rows = self._solve_side(
                self.model.P.T.copy(), ratings.cols, ratings.rows, ratings.vals,
                ratings.n, self.k, self.reg,
            )
            self.model.Q[...] = q_rows.T
            rmse = self.model.rmse(eval_data)
            self.history.record(rmse, rmse**2)
        return self.model


def als_flops_per_rating(k: int, avg_ratings_per_entity: float) -> float:
    """Approximate ALS cost per rating: Gram update + amortized solve.

    Each rating adds a rank-1 update to a k x k Gram matrix (~k^2 MACs);
    each entity's O(k^3) solve amortizes over its ratings.  Compare with
    SGD's ~7k FLOPs (the paper's per-update count) to see why large-k
    regimes favour SGD per epoch.
    """
    if k <= 0 or avg_ratings_per_entity <= 0:
        raise ValueError("k and avg_ratings_per_entity must be positive")
    return k * k + (k**3) / (3.0 * avg_ratings_per_entity)
