"""SGD-based matrix-factorization algorithms (the numeric substrate).

Implements the MF model and the three SGD algorithm families the paper
uses:

* :mod:`repro.mf.sgd` — serial SGD reference and Hogwild-style
  asynchronous SGD (the theoretical basis, Niu et al. 2011);
* :mod:`repro.mf.fpsgd` — FPSGD (Chin et al. 2015), the multi-core CPU
  baseline: a (t+1) x (t+1) block grid with a free-block scheduler;
* :mod:`repro.mf.cumf` — CuMF_SGD (Xie et al. 2017), the GPU baseline:
  batched lock-free updates, here with the authors' block-sorting
  modification.

All kernels are vectorized NumPy with explicit conflict policies so the
*semantics* (lost updates under asynchrony, block independence under
FPSGD) match the originals even though the instruction set differs.
"""

from repro.mf.model import MFModel
from repro.mf.loss import rmse, regularized_loss
from repro.mf.kernels import sgd_batch_update, sgd_epoch, conflict_stats, ConflictPolicy
from repro.mf.sgd import SerialSGD, HogwildSGD, TrainHistory
from repro.mf.fpsgd import FPSGD, BlockGrid, BlockScheduler
from repro.mf.cumf import CuMFSGD
from repro.mf.dsgd import DSGD, dsgd_epoch_time, stratum_schedule
from repro.mf.nomad import NOMAD
from repro.mf.hsgd import HSGD
from repro.mf.als import ALS, als_flops_per_rating
from repro.mf.biased import BiasedMF
from repro.mf.search import SearchSpace, SearchReport, SearchResult, grid_search
from repro.mf.ccd import CCDPlusPlus, fold_in_user
from repro.mf.schedules import ConstantLR, InverseTimeDecay, ExponentialDecay, BoldDriver
from repro.mf.evaluation import (
    mae,
    recommend_top_n,
    evaluate_ranking,
    candidate_ndcg,
    RankingReport,
)

__all__ = [
    "MFModel",
    "rmse",
    "regularized_loss",
    "sgd_batch_update",
    "sgd_epoch",
    "conflict_stats",
    "ConflictPolicy",
    "SerialSGD",
    "HogwildSGD",
    "TrainHistory",
    "FPSGD",
    "BlockGrid",
    "BlockScheduler",
    "CuMFSGD",
    "DSGD",
    "dsgd_epoch_time",
    "stratum_schedule",
    "NOMAD",
    "HSGD",
    "ALS",
    "als_flops_per_rating",
    "BiasedMF",
    "SearchSpace",
    "SearchReport",
    "SearchResult",
    "grid_search",
    "CCDPlusPlus",
    "fold_in_user",
    "ConstantLR",
    "InverseTimeDecay",
    "ExponentialDecay",
    "BoldDriver",
    "mae",
    "recommend_top_n",
    "evaluate_ranking",
    "candidate_ndcg",
    "RankingReport",
]
