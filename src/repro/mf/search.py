"""Hyper-parameter search for MF trainers.

The paper fixes (k, gamma, lambda) per dataset from prior work; a
library user tuning a new dataset needs the sweep.  This module runs a
grid (or random subset) of configurations against a held-out split with
early stopping, and reports the validation-best configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.sgd import HogwildSGD


@dataclass(frozen=True)
class SearchSpace:
    """Axes of the grid: every combination is a candidate."""

    k: Sequence[int] = (8, 16, 32)
    lr: Sequence[float] = (0.005, 0.01, 0.02)
    reg: Sequence[float] = (0.01, 0.05)

    def __post_init__(self) -> None:
        if not (self.k and self.lr and self.reg):
            raise ValueError("every axis needs at least one value")
        if any(v <= 0 for v in self.k):
            raise ValueError("k values must be positive")
        if any(v <= 0 for v in self.lr):
            raise ValueError("lr values must be positive")
        if any(v < 0 for v in self.reg):
            raise ValueError("reg values must be non-negative")

    def combinations(self) -> list[dict]:
        return [
            {"k": k, "lr": lr, "reg": reg}
            for k, lr, reg in itertools.product(self.k, self.lr, self.reg)
        ]


@dataclass
class SearchResult:
    """Outcome of one candidate evaluation."""

    params: dict
    val_rmse: float
    epochs_run: int
    history: list[float] = field(default_factory=list)


@dataclass
class SearchReport:
    """All candidates, best first."""

    results: list[SearchResult]

    @property
    def best(self) -> SearchResult:
        return self.results[0]

    def top(self, n: int = 5) -> list[SearchResult]:
        return self.results[:n]


def grid_search(
    ratings: RatingMatrix,
    space: SearchSpace | None = None,
    epochs: int = 15,
    val_fraction: float = 0.15,
    early_stop_tol: float = 1e-3,
    max_candidates: int | None = None,
    seed: int = 0,
) -> SearchReport:
    """Evaluate the grid against a held-out split.

    Candidates train on the train split with early stopping and are
    ranked by final validation RMSE.  ``max_candidates`` subsamples the
    grid uniformly at random (random search) when the full grid is too
    expensive.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    if not (0.0 < val_fraction < 1.0):
        raise ValueError("val_fraction must be in (0, 1)")
    space = space if space is not None else SearchSpace()
    train, val = ratings.split(test_fraction=val_fraction, seed=seed)
    if val.nnz == 0:
        raise ValueError("validation split is empty; dataset too small")

    candidates = space.combinations()
    if max_candidates is not None and len(candidates) > max_candidates:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(candidates), size=max_candidates, replace=False)
        candidates = [candidates[i] for i in sorted(idx)]

    results: list[SearchResult] = []
    for params in candidates:
        trainer = HogwildSGD(
            k=params["k"], lr=params["lr"], reg=params["reg"], seed=seed
        )
        trainer.fit(train, epochs=epochs, eval_data=val,
                    early_stop_tol=early_stop_tol)
        results.append(
            SearchResult(
                params=params,
                val_rmse=trainer.history.final_rmse,
                epochs_run=trainer.history.epochs,
                history=list(trainer.history.rmse),
            )
        )
    results.sort(key=lambda r: r.val_rmse)
    return SearchReport(results=results)
