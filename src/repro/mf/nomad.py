"""NOMAD baseline (Yun et al., VLDB 2014) — non-locking column passing.

NOMAD is asynchronous and lock-free: each *item column* (its q vector)
is owned by exactly one worker at a time.  A worker pops a column from
its queue, updates it against all of its local ratings for that column,
then passes the column to a randomly chosen worker.  Ownership makes
updates race-free without locks — at the price of continuous column
traffic.

The paper's critique (section 5): "a worker who finishes processing a
column will pass the column to other workers that will bring huge
communication overhead", and skewed rating distributions unbalance the
queues.  This implementation counts the column messages so the ablation
benchmark can put a number on that overhead, and exposes the queue
imbalance statistics.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


class NOMAD:
    """Asynchronous decentralized MF via column ownership passing."""

    def __init__(
        self,
        k: int,
        workers: int = 4,
        lr: float = 0.005,
        reg: float = 0.01,
        seed: int = 0,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.workers = workers
        self.lr = lr
        self.reg = reg
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()
        self.column_messages = 0       # section 5's communication overhead
        self.queue_peaks: list[int] = []

    # ------------------------------------------------------------------
    def _worker_column_entries(self, ratings: RatingMatrix) -> list[dict[int, np.ndarray]]:
        """Per-worker: column -> indices of its local entries."""
        shards = partition_rows(ratings, [1.0 / self.workers] * self.workers, GridKind.ROW)
        out: list[dict[int, np.ndarray]] = []
        for shard in shards:
            cols = ratings.cols[shard.entries]
            order = np.argsort(cols, kind="stable")
            sorted_cols = cols[order]
            sorted_entries = shard.entries[order]
            mapping: dict[int, np.ndarray] = {}
            if len(sorted_cols):
                starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_cols)) + 1))
                stops = np.concatenate((starts[1:], [len(sorted_cols)]))
                for a, b in zip(starts, stops):
                    mapping[int(sorted_cols[a])] = sorted_entries[a:b]
            out.append(mapping)
        return out

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        """One 'epoch' = every column circulated through every worker once."""
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        local = self._worker_column_entries(ratings)

        for _ in range(epochs):
            # columns start distributed round-robin (the diagonal init)
            queues: list[deque[int]] = [deque() for _ in range(self.workers)]
            for col in range(ratings.n):
                queues[col % self.workers].append(col)
            visits = np.zeros(ratings.n, dtype=np.int64)
            epoch_sq, count = 0.0, 0
            peak = 0

            active = sum(len(q) for q in queues)
            while active > 0:
                for w in range(self.workers):
                    if not queues[w]:
                        continue
                    col = queues[w].popleft()
                    entries = local[w].get(col)
                    if entries is not None and len(entries):
                        rows = ratings.rows[entries]
                        cols = ratings.cols[entries]
                        vals = ratings.vals[entries]
                        mse = sgd_batch_update(
                            self.model, rows, cols, vals, self.lr, self.reg,
                            policy=ConflictPolicy.ATOMIC,
                        )
                        epoch_sq += mse * len(entries)
                        count += len(entries)
                    visits[col] += 1
                    if visits[col] < self.workers:
                        # pass ownership to another worker (a message)
                        target = int(rng.integers(0, self.workers))
                        if target == w:
                            target = (target + 1) % self.workers
                        queues[target].append(col)
                        self.column_messages += 1
                peak = max(peak, max(len(q) for q in queues))
                active = sum(len(q) for q in queues)

            self.queue_peaks.append(peak)
            self.history.record(self.model.rmse(eval_data), epoch_sq / max(count, 1))
        return self.model

    # ------------------------------------------------------------------
    def message_bytes(self, epochs: int | None = None) -> int:
        """Wire bytes of column passing: one k-vector (FP32) per message."""
        msgs = self.column_messages
        return msgs * self.k * 4

    def queue_imbalance(self) -> float:
        """Peak queue length relative to the fair share n/workers."""
        if not self.queue_peaks or self.model is None:
            raise RuntimeError("fit() first")
        fair = self.model.n / self.workers
        return max(self.queue_peaks) / max(fair, 1.0)
