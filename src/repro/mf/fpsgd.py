"""FPSGD baseline (Chin et al., TIST 2015) — the multi-core CPU method.

FPSGD partitions the rating matrix into a grid of at least
``(threads + 1) x (threads + 1)`` blocks.  Each thread repeatedly asks a
scheduler for a *free* block — one whose row band and column band are
not currently held by any other thread — and applies SGD to all its
entries.  Independence of concurrent blocks means no feature row is ever
shared between running threads, so no locking is needed on P or Q.

Our implementation reproduces the block grid and the free-block
scheduler exactly; "threads" execute their blocks in simulated rounds
(the scheduling constraint makes concurrent blocks disjoint, so the
numeric result is identical to a real threaded run).  The paper's
authors accelerated the update kernel with AVX/AVX512 (footnote 1);
here the vectorized NumPy kernel plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


@dataclass(frozen=True)
class Block:
    """One grid cell: a row band x column band of the rating matrix."""

    row_band: int
    col_band: int
    entries: np.ndarray

    @property
    def nnz(self) -> int:
        return int(len(self.entries))


class BlockGrid:
    """An ``nb x nb`` block decomposition of a rating matrix."""

    def __init__(self, ratings: RatingMatrix, nb: int):
        if nb <= 0:
            raise ValueError("block count must be positive")
        self.ratings = ratings
        self.nb = nb
        row_edges = np.linspace(0, ratings.m, nb + 1).astype(np.int64)
        col_edges = np.linspace(0, ratings.n, nb + 1).astype(np.int64)
        rb = np.clip(np.searchsorted(row_edges, ratings.rows, side="right") - 1, 0, nb - 1)
        cb = np.clip(np.searchsorted(col_edges, ratings.cols, side="right") - 1, 0, nb - 1)
        keys = rb * nb + cb
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        starts = np.searchsorted(sorted_keys, np.arange(nb * nb), side="left")
        stops = np.searchsorted(sorted_keys, np.arange(nb * nb), side="right")
        self.blocks: list[Block] = [
            Block(i // nb, i % nb, order[starts[i]:stops[i]]) for i in range(nb * nb)
        ]

    def block(self, row_band: int, col_band: int) -> Block:
        return self.blocks[row_band * self.nb + col_band]

    def total_nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)


class BlockScheduler:
    """FPSGD's free-block scheduler.

    A block is *free* when neither its row band nor its column band is
    locked by a running thread.  Among free, unprocessed blocks the
    scheduler prefers the least-processed ones (FPSGD's fairness rule),
    breaking ties randomly.
    """

    def __init__(self, grid: BlockGrid, rng: np.random.Generator):
        self.grid = grid
        self.rng = rng
        self.processed = np.zeros(grid.nb * grid.nb, dtype=np.int64)

    def epoch_rounds(self, threads: int) -> list[list[Block]]:
        """Schedule one epoch: every block processed exactly once.

        Returns a list of rounds; blocks within a round are pairwise
        independent (disjoint row and column bands), i.e. they could run
        on ``threads`` real threads concurrently.
        """
        nb = self.grid.nb
        remaining = set(range(nb * nb))
        rounds: list[list[Block]] = []
        while remaining:
            locked_rows: set[int] = set()
            locked_cols: set[int] = set()
            this_round: list[Block] = []
            # least-processed-first with random tie-break
            candidates = sorted(
                remaining,
                key=lambda i: (self.processed[i], self.rng.random()),
            )
            for idx in candidates:
                if len(this_round) >= threads:
                    break
                rb, cb = idx // nb, idx % nb
                if rb in locked_rows or cb in locked_cols:
                    continue
                locked_rows.add(rb)
                locked_cols.add(cb)
                this_round.append(self.grid.blocks[idx])
                remaining.discard(idx)
                self.processed[idx] += 1
            if not this_round:  # pragma: no cover - cannot happen: some block is always free
                raise RuntimeError("scheduler deadlock")
            rounds.append(this_round)
        return rounds


class FPSGD:
    """Fast Parallel SGD for shared-memory multi-core CPUs."""

    def __init__(
        self,
        k: int,
        threads: int = 4,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
    ):
        if threads <= 0:
            raise ValueError("threads must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.threads = threads
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        nb = self.threads + 1
        grid = BlockGrid(ratings.shuffle(rng), nb)
        scheduler = BlockScheduler(grid, rng)
        for _ in range(epochs):
            epoch_sq, count = 0.0, 0
            for round_blocks in scheduler.epoch_rounds(self.threads):
                for block in round_blocks:
                    sub = grid.ratings.take(block.entries)
                    for rows, cols, vals in sub.batches(self.batch_size):
                        # blocks in a round are disjoint, so ATOMIC within a
                        # block is the exact FPSGD semantics
                        mse = sgd_batch_update(
                            self.model, rows, cols, vals, self.lr, self.reg,
                            policy=ConflictPolicy.ATOMIC,
                        )
                        epoch_sq += mse * len(rows)
                        count += len(rows)
            self.history.record(
                self.model.rmse(eval_data), epoch_sq / max(count, 1)
            )
        return self.model
