"""DSGD baseline (Gemulla et al., KDD 2011) — distributed block rotation.

DSGD partitions the rating matrix into a ``p x p`` block grid and runs
``p`` *strata* per epoch: in stratum s, worker i processes block
``(i, (i + s) mod p)``.  Blocks within a stratum are pairwise disjoint
in both rows and columns, so the stratum is embarrassingly parallel;
workers synchronize at every stratum boundary (the MapReduce barrier).

The paper's related-work critique (section 5) is that DSGD "equally
divide[s] the input data into rows, which does not consider the
difference in machine performance", so in a heterogeneous system the
fast processors stall at each barrier waiting for the slow ones.  The
:func:`dsgd_epoch_time` helper models exactly that bucket effect, which
the ablation benchmark compares against HCC-MF's DP partitions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.fpsgd import BlockGrid
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


def stratum_schedule(p: int) -> list[list[tuple[int, int]]]:
    """The p strata of DSGD's diagonal rotation.

    Stratum ``s`` assigns worker ``i`` the block ``(i, (i + s) % p)``;
    each stratum covers one block per worker with disjoint row and
    column bands, and the p strata together cover the whole grid.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    return [[(i, (i + s) % p) for i in range(p)] for s in range(p)]


class DSGD:
    """Synchronous stratified SGD over a p x p block grid."""

    def __init__(
        self,
        k: int,
        workers: int = 4,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.workers = workers
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()
        self.strata_run = 0

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        grid = BlockGrid(ratings.shuffle(rng), self.workers)
        schedule = stratum_schedule(self.workers)
        for _ in range(epochs):
            epoch_sq, count = 0.0, 0
            # strata run in random order each epoch (Gemulla's SSGD)
            for s in rng.permutation(len(schedule)):
                for i, j in schedule[s]:
                    block = grid.block(i, j)
                    if block.nnz == 0:
                        continue
                    sub = grid.ratings.take(block.entries)
                    for rows, cols, vals in sub.batches(self.batch_size):
                        mse = sgd_batch_update(
                            self.model, rows, cols, vals, self.lr, self.reg,
                            policy=ConflictPolicy.ATOMIC,
                        )
                        epoch_sq += mse * len(rows)
                        count += len(rows)
                self.strata_run += 1
            self.history.record(self.model.rmse(eval_data), epoch_sq / max(count, 1))
        return self.model


def dsgd_epoch_time(
    block_nnz: np.ndarray,
    worker_rates: Sequence[float],
    barrier_cost: float = 0.0,
) -> float:
    """Modeled DSGD epoch time on heterogeneous workers (the bucket effect).

    ``block_nnz[i, j]`` is the entry count of grid block (i, j);
    ``worker_rates[i]`` is worker i's updates/s.  Each stratum ends at a
    barrier, so its duration is the *slowest* worker's block time — an
    equal split leaves fast processors idle, which is precisely why
    HCC-MF partitions by measured throughput instead.
    """
    block_nnz = np.asarray(block_nnz, dtype=np.float64)
    rates = np.asarray(list(worker_rates), dtype=np.float64)
    p = len(rates)
    if block_nnz.shape != (p, p):
        raise ValueError(f"block grid must be {p}x{p}, got {block_nnz.shape}")
    if np.any(rates <= 0):
        raise ValueError("worker rates must be positive")
    if barrier_cost < 0:
        raise ValueError("barrier_cost must be non-negative")
    total = 0.0
    for s in range(p):
        stratum = [block_nnz[i, (i + s) % p] / rates[i] for i in range(p)]
        total += max(stratum) + barrier_cost
    return total
