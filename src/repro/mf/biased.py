"""Biased matrix factorization: mu + b_u + b_i + p.q.

Production recommenders (the Netflix-prize lineage the paper's Figure 1
descends from) add a global mean and per-user/per-item bias terms to
the factor model:

    r_hat_ij = mu + b_i^user + b_j^item + p_i . q_j

Biases absorb the "this user rates harshly / this item is popular"
signal, letting the factors spend their capacity on interactions, which
usually buys a few RMSE points over plain MF.  The SGD updates extend
the Figure 1 recurrence with bias gradients and run through the same
vectorized machinery (including the duplicate-averaging trick).
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import _scatter_add
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


class BiasedMF:
    """SGD-trained biased matrix factorization."""

    def __init__(
        self,
        k: int,
        lr: float = 0.005,
        reg: float = 0.02,
        bias_reg: float | None = None,
        batch_size: int = 4096,
        seed: int = 0,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.k = k
        self.lr = lr
        self.reg = reg
        self.bias_reg = bias_reg if bias_reg is not None else reg
        self.batch_size = batch_size
        self.seed = seed
        self.model: MFModel | None = None
        self.mu: float = 0.0
        self.user_bias: np.ndarray | None = None
        self.item_bias: np.ndarray | None = None
        self.history = TrainHistory()

    # ------------------------------------------------------------------
    def predict(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit() first")
        interaction = self.model.predict(rows, cols)
        return self.mu + self.user_bias[rows] + self.item_bias[cols] + interaction

    def rmse(self, ratings: RatingMatrix) -> float:
        err = ratings.vals - self.predict(ratings.rows, ratings.cols)
        return float(np.sqrt(np.mean(np.square(err, dtype=np.float64))))

    # ------------------------------------------------------------------
    def _batch_update(self, rows, cols, vals) -> None:
        P, Q = self.model.P, self.model.Q
        p = P[rows]
        q = Q[:, cols].T
        pred = (
            self.mu + self.user_bias[rows] + self.item_bias[cols]
            + np.einsum("ij,ij->i", p, q)
        )
        err = (vals - pred).astype(np.float32)

        lr, reg, breg = self.lr, self.reg, self.bias_reg
        dp = lr * (err[:, None] * q - reg * p)
        dq = lr * (err[:, None] * p - reg * q)
        dbu = lr * (err - breg * self.user_bias[rows])
        dbi = lr * (err - breg * self.item_bias[cols])

        # duplicate-averaged atomic accumulation, as in the plain kernel
        row_counts = np.bincount(rows, minlength=P.shape[0])[rows]
        col_counts = np.bincount(cols, minlength=Q.shape[1])[cols]
        _scatter_add(P, rows, (dp / row_counts[:, None]).astype(np.float32))
        _scatter_add(Q.T, cols, (dq / col_counts[:, None]).astype(np.float32))
        _scatter_add(self.user_bias, rows, (dbu / row_counts).astype(np.float32))
        _scatter_add(self.item_bias, cols, (dbi / col_counts).astype(np.float32))

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
    ) -> "BiasedMF":
        eval_data = eval_data if eval_data is not None else ratings
        self.mu = ratings.mean_rating()
        self.user_bias = np.zeros(ratings.m, dtype=np.float32)
        self.item_bias = np.zeros(ratings.n, dtype=np.float32)
        # interactions start near zero: biases explain the baseline
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(self.k)
        self.model = MFModel(
            (0.1 * scale * rng.standard_normal((ratings.m, self.k))).astype(np.float32),
            (0.1 * scale * rng.standard_normal((self.k, ratings.n))).astype(np.float32),
        )
        for _ in range(epochs):
            order = rng.permutation(ratings.nnz)
            data = ratings.take(order)
            for rows, cols, vals in data.batches(self.batch_size):
                self._batch_update(rows, cols, vals)
            self.history.record(self.rmse(eval_data), 0.0)
        return self
