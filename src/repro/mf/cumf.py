"""CuMF_SGD baseline (Xie et al., HPDC 2017) — the GPU method.

CuMF_SGD launches tens of thousands of GPU threads, each repeatedly
drawing a rating and applying a lock-free SGD update; warps cooperate on
one rating's k-dimensional vectors with coalesced memory access.  Two
properties matter for reproduction:

* **massive batch parallelism** — thousands of ratings update
  concurrently, so intra-batch conflicts are resolved by whichever
  write lands last (lost updates; Hogwild-style convergence);
* **block sorting by row** — the paper's authors added row-sorted
  blocks to CuMF_SGD's ``grid_problem`` to improve cache hit rate
  (footnote 1, item iii), which we reproduce via
  :func:`repro.data.ratings.RatingMatrix.sort_by_row` per batch slice.

The "batch" here models one wave of GPU threads: `batch_size` defaults
to the RTX 2080-class thread count the paper configures (~41k threads).
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


class CuMFSGD:
    """Batched lock-free SGD mimicking CuMF_SGD's update semantics."""

    def __init__(
        self,
        k: int,
        gpu_threads: int = 41_216,
        lr: float = 0.005,
        reg: float = 0.01,
        block_sorting: bool = True,
        seed: int = 0,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if gpu_threads <= 0:
            raise ValueError("gpu_threads must be positive")
        self.k = k
        self.gpu_threads = gpu_threads
        self.lr = lr
        self.reg = reg
        self.block_sorting = block_sorting
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()

    def _prepare(self, ratings: RatingMatrix, rng: np.random.Generator) -> RatingMatrix:
        """Shuffle globally, then row-sort inside each thread-wave slice.

        Global shuffle keeps waves statistically independent; per-wave
        row sorting is the cache-locality trick without changing which
        ratings share a wave.
        """
        data = ratings.shuffle(rng)
        if not self.block_sorting:
            return data
        pieces = []
        for start in range(0, data.nnz, self.gpu_threads):
            stop = min(start + self.gpu_threads, data.nnz)
            idx = np.arange(start, stop)
            chunk = data.take(idx).sort_by_row()
            pieces.append(chunk)
        return RatingMatrix(
            data.m,
            data.n,
            np.concatenate([p.rows for p in pieces]),
            np.concatenate([p.cols for p in pieces]),
            np.concatenate([p.vals for p in pieces]),
        )

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        for _ in range(epochs):
            data = self._prepare(ratings, rng)
            epoch_sq = 0.0
            for rows, cols, vals in data.batches(self.gpu_threads):
                # one wave of GPU threads: lock-free, last write wins
                mse = sgd_batch_update(
                    self.model, rows, cols, vals, self.lr, self.reg,
                    policy=ConflictPolicy.LAST_WRITE,
                )
                epoch_sq += mse * len(rows)
            self.history.record(self.model.rmse(eval_data), epoch_sq / max(data.nnz, 1))
        return self.model
