"""Serial SGD reference and Hogwild-style asynchronous SGD trainers.

``SerialSGD`` runs the exact sequential recurrence (standard SGD,
paper section 2.1).  ``HogwildSGD`` runs vectorized mini-batches with a
configurable conflict policy — the asynchronous shared-memory semantics
Recht's Hogwild! theorem covers, and the basis of every worker kernel in
HCC-MF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_epoch, sgd_epoch_serial
from repro.mf.model import MFModel


@dataclass
class TrainHistory:
    """Per-epoch convergence record (backs Figure 7's curves)."""

    rmse: list[float] = field(default_factory=list)
    train_mse: list[float] = field(default_factory=list)
    epochs: int = 0

    def record(self, rmse_value: float, train_mse: float) -> None:
        self.rmse.append(float(rmse_value))
        self.train_mse.append(float(train_mse))
        self.epochs += 1

    @property
    def final_rmse(self) -> float:
        if not self.rmse:
            raise ValueError("no epochs recorded")
        return self.rmse[-1]

    def converged(self, tol: float = 1e-3, window: int = 3) -> bool:
        """True when RMSE improvement over the last ``window`` epochs < tol."""
        if len(self.rmse) <= window:
            return False
        return abs(self.rmse[-1 - window] - self.rmse[-1]) < tol


class SerialSGD:
    """Exact sequential SGD (ground-truth semantics; tiny data only)."""

    def __init__(self, k: int, lr: float = 0.005, reg: float = 0.01, seed: int = 0):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.lr = lr
        self.reg = reg
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()

    def fit(self, ratings: RatingMatrix, epochs: int = 10, eval_data: RatingMatrix | None = None) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        for _ in range(epochs):
            shuffled = ratings.shuffle(rng)
            mse = sgd_epoch_serial(self.model, shuffled, self.lr, self.reg)
            self.history.record(self.model.rmse(eval_data), mse)
        return self.model


class HogwildSGD:
    """Asynchronous SGD with vectorized batches.

    ``policy=ATOMIC`` corresponds to element-wise-atomic Hogwild;
    ``policy=LAST_WRITE`` reproduces the lost-update behaviour of fully
    unsynchronized writers (the paper's asynchronous streams).
    """

    def __init__(
        self,
        k: int,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        policy: ConflictPolicy = ConflictPolicy.ATOMIC,
        seed: int = 0,
        lr_schedule=None,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.k = k
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.policy = policy
        self.seed = seed
        #: optional epoch -> learning-rate callable (repro.mf.schedules);
        #: adaptive schedules with an ``observe`` method get the epoch RMSE
        self.lr_schedule = lr_schedule
        self.model: MFModel | None = None
        self.history = TrainHistory()

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
        early_stop_tol: float = 0.0,
    ) -> MFModel:
        """Train for up to ``epochs`` epochs.

        ``early_stop_tol > 0`` stops when the RMSE improvement over a
        3-epoch window drops below the tolerance (the paper trains until
        "the objective function converges").
        """
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        for epoch in range(epochs):
            lr = self.lr_schedule(epoch) if self.lr_schedule is not None else self.lr
            mse = sgd_epoch(
                self.model, ratings, lr, self.reg,
                batch_size=self.batch_size, policy=self.policy, rng=rng,
            )
            rmse_value = self.model.rmse(eval_data)
            self.history.record(rmse_value, mse)
            observe = getattr(self.lr_schedule, "observe", None)
            if observe is not None:
                observe(rmse_value)
            if early_stop_tol > 0 and self.history.converged(early_stop_tol):
                break
        return self.model
