"""Loss functions for SGD-based MF (paper Figure 1).

The training objective is the regularized squared error

    sum_{(i,j) in R} (r_ij - p_i . q_j)^2
        + lambda1 ||P||^2 + lambda2 ||Q||^2

with lambda1 = lambda2 in all of the paper's experiments (Table 3).
RMSE over observed entries is the convergence metric of Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel


def rmse(model: MFModel, ratings: RatingMatrix) -> float:
    """Root-mean-square error over observed entries (Figure 7 metric)."""
    return model.rmse(ratings)


def regularized_loss(
    model: MFModel,
    ratings: RatingMatrix,
    reg_p: float,
    reg_q: float | None = None,
) -> float:
    """The full training objective (squared error + L2 penalties)."""
    if reg_q is None:
        reg_q = reg_p
    err = ratings.vals - model.predict(ratings.rows, ratings.cols)
    sq = float(np.sum(np.square(err, dtype=np.float64)))
    pen = reg_p * float(np.sum(np.square(model.P, dtype=np.float64)))
    pen += reg_q * float(np.sum(np.square(model.Q, dtype=np.float64)))
    return sq + pen


def per_entry_errors(model: MFModel, ratings: RatingMatrix) -> np.ndarray:
    """Signed prediction errors ``r_ij - p_i.q_j`` for each observed entry."""
    return ratings.vals - model.predict(ratings.rows, ratings.cols)
