"""Recommendation-quality evaluation for trained MF models.

The paper evaluates convergence with RMSE only (Figure 7); a downstream
user of an MF library also needs ranking metrics for the actual
recommendation task (Figure 1's "decide whether to recommend a product
to a user").  This module provides the standard set: error metrics
(RMSE/MAE), top-N generation, and ranked-list quality
(precision/recall@N, NDCG@N, catalog coverage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel


def mae(model: MFModel, ratings: RatingMatrix) -> float:
    """Mean absolute error over observed entries."""
    if ratings.nnz == 0:
        return 0.0
    err = ratings.vals - model.predict(ratings.rows, ratings.cols)
    return float(np.mean(np.abs(err)))


def recommend_top_n(
    model: MFModel,
    user: int,
    n: int = 10,
    exclude: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-N unseen items for one user: (item ids, predicted scores)."""
    if not (0 <= user < model.m):
        raise IndexError(f"user {user} out of range for m={model.m}")
    if n <= 0:
        raise ValueError("n must be positive")
    scores = model.P[user] @ model.Q
    if exclude is not None and len(exclude):
        scores = scores.copy()
        scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
    n = min(n, model.n)
    top = np.argpartition(scores, -n)[-n:]
    order = np.argsort(scores[top])[::-1]
    top = top[order]
    return top, scores[top]


@dataclass(frozen=True)
class RankingReport:
    """Aggregate ranked-list quality over a set of test users."""

    precision: float
    recall: float
    ndcg: float
    coverage: float        # fraction of the catalog ever recommended
    users_evaluated: int
    n: int


def candidate_ndcg(
    model: MFModel,
    test: RatingMatrix,
    max_users: int | None = None,
    seed: int = 0,
) -> float:
    """Mean per-user NDCG of ranking the user's *test items* by prediction.

    Candidate ranking sidesteps catalog-level top-N's popularity noise:
    each user's held-out items are ordered by predicted score, with
    graded relevance equal to the true rating.  1.0 means the model
    orders every user's test items perfectly.
    """
    if test.nnz == 0:
        raise ValueError("empty test set")
    by_user: dict[int, list[tuple[int, float]]] = {}
    for r, c, v in zip(test.rows.tolist(), test.cols.tolist(), test.vals.tolist()):
        by_user.setdefault(r, []).append((c, v))
    users = sorted(u for u, items in by_user.items() if len(items) >= 2)
    if not users:
        raise ValueError("no user has >= 2 held-out items to rank")
    if max_users is not None and len(users) > max_users:
        rng = np.random.default_rng(seed)
        users = sorted(rng.choice(users, size=max_users, replace=False).tolist())

    scores = []
    for user in users:
        items = by_user[user]
        cols = np.asarray([c for c, _ in items], dtype=np.int64)
        rels = np.asarray([v for _, v in items], dtype=np.float64)
        preds = model.predict(np.full(len(cols), user, dtype=np.int64), cols)
        order = np.argsort(preds)[::-1]
        dcg = _dcg(rels[order])
        idcg = _dcg(np.sort(rels)[::-1])
        if idcg > 0:
            scores.append(dcg / idcg)
    return float(np.mean(scores)) if scores else 0.0


def _dcg(relevances: np.ndarray) -> float:
    if len(relevances) == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, len(relevances) + 2))
    return float(np.sum(relevances * discounts))


def evaluate_ranking(
    model: MFModel,
    train: RatingMatrix,
    test: RatingMatrix,
    n: int = 10,
    relevant_threshold: float | None = None,
    max_users: int | None = None,
    seed: int = 0,
) -> RankingReport:
    """Precision/recall/NDCG@N against held-out ratings.

    A test item counts as *relevant* for its user when its rating is at
    or above ``relevant_threshold`` (default: the test-set mean).  Train
    items are excluded from each user's recommendations, as in standard
    leave-out evaluation.
    """
    if test.nnz == 0:
        raise ValueError("empty test set")
    if relevant_threshold is None:
        relevant_threshold = float(test.vals.mean())

    train_by_user: dict[int, list[int]] = {}
    for r, c in zip(train.rows.tolist(), train.cols.tolist()):
        train_by_user.setdefault(r, []).append(c)
    test_by_user: dict[int, dict[int, float]] = {}
    for r, c, v in zip(test.rows.tolist(), test.cols.tolist(), test.vals.tolist()):
        test_by_user.setdefault(r, {})[c] = v

    users = sorted(test_by_user)
    if max_users is not None and len(users) > max_users:
        rng = np.random.default_rng(seed)
        users = sorted(rng.choice(users, size=max_users, replace=False).tolist())

    precisions, recalls, ndcgs = [], [], []
    recommended_items: set[int] = set()
    for user in users:
        relevant = {
            item for item, v in test_by_user[user].items() if v >= relevant_threshold
        }
        if not relevant:
            continue
        exclude = np.asarray(train_by_user.get(user, []), dtype=np.int64)
        items, _ = recommend_top_n(model, user, n=n, exclude=exclude)
        recommended_items.update(items.tolist())
        hits = np.asarray([1.0 if int(i) in relevant else 0.0 for i in items])
        precisions.append(hits.sum() / len(items))
        recalls.append(hits.sum() / len(relevant))
        ideal = _dcg(np.ones(min(len(relevant), len(items))))
        ndcgs.append(_dcg(hits) / ideal if ideal > 0 else 0.0)

    if not precisions:
        raise ValueError("no test user had relevant held-out items")
    return RankingReport(
        precision=float(np.mean(precisions)),
        recall=float(np.mean(recalls)),
        ndcg=float(np.mean(ndcgs)),
        coverage=len(recommended_items) / model.n,
        users_evaluated=len(precisions),
        n=n,
    )
