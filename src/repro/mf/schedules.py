"""Learning-rate schedules for SGD-based MF.

The paper fixes gamma = 0.005, but production MF trainers decay the
step size — LIBMF/FPSGD ship inverse-time decay and cuMF uses a fixed
schedule with warm restarts.  These callables plug into the trainers'
``lr_schedule`` hooks: each maps an epoch index to a learning rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


class LRSchedule(Protocol):
    """Maps an epoch index (0-based) to a learning rate."""

    def __call__(self, epoch: int) -> float: ...


@dataclass(frozen=True)
class ConstantLR:
    """The paper's schedule: gamma throughout."""

    lr: float

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.lr


@dataclass(frozen=True)
class InverseTimeDecay:
    """LIBMF-style decay: lr0 / (1 + decay * epoch)."""

    lr0: float
    decay: float = 0.1

    def __post_init__(self) -> None:
        if self.lr0 <= 0:
            raise ValueError("lr0 must be positive")
        if self.decay < 0:
            raise ValueError("decay must be non-negative")

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.lr0 / (1.0 + self.decay * epoch)


@dataclass(frozen=True)
class ExponentialDecay:
    """lr0 * gamma^epoch, gamma in (0, 1]."""

    lr0: float
    gamma: float = 0.95

    def __post_init__(self) -> None:
        if self.lr0 <= 0:
            raise ValueError("lr0 must be positive")
        if not (0.0 < self.gamma <= 1.0):
            raise ValueError("gamma must be in (0, 1]")

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.lr0 * self.gamma**epoch


class BoldDriver:
    """Adaptive schedule: grow on improvement, cut sharply on regression.

    The classic heuristic MF trainers use when the loss plateaus:
    multiply the rate by ``grow`` after an epoch that improved the
    monitored loss, by ``shrink`` after one that worsened it.  Feed it
    the epoch losses via :meth:`observe`.
    """

    def __init__(self, lr0: float, grow: float = 1.05, shrink: float = 0.5):
        if lr0 <= 0:
            raise ValueError("lr0 must be positive")
        if grow < 1.0 or not (0.0 < shrink < 1.0):
            raise ValueError("need grow >= 1 and shrink in (0, 1)")
        self.lr = lr0
        self.grow = grow
        self.shrink = shrink
        self._last_loss: float | None = None

    def observe(self, loss: float) -> None:
        """Report the post-epoch loss; adjusts the rate for the next epoch."""
        if self._last_loss is not None:
            if loss < self._last_loss:
                self.lr *= self.grow
            else:
                self.lr *= self.shrink
        self._last_loss = loss

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.lr
