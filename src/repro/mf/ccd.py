"""CCD++ — cyclic coordinate descent MF (Yu et al., ICDM 2012).

The third major MF solver family next to SGD and ALS (LIBPMF's
algorithm; cuMF descends from this lineage too).  CCD++ sweeps the
latent dimensions one at a time: for feature f it peels u_f·v_f out of
the residual matrix, solves the two one-dimensional least-squares
problems in closed form (every user's scalar given v_f, then every
item's scalar given u_f), and folds the updated rank-1 term back in.

Per-rating work is O(1) per inner update — lighter than ALS's O(k²) —
while keeping closed-form stability; its weakness is the 2k residual
sweeps per outer iteration, which is why GPU implementations favour
SGD's single pass.  All updates here are vectorized with grouped
``bincount`` accumulations over the COO arrays.
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


class CCDPlusPlus:
    """Rank-1 cyclic coordinate descent for matrix factorization."""

    def __init__(self, k: int, reg: float = 0.05, inner_sweeps: int = 1, seed: int = 0):
        if k <= 0:
            raise ValueError("k must be positive")
        if reg < 0:
            raise ValueError("reg must be non-negative")
        if inner_sweeps <= 0:
            raise ValueError("inner_sweeps must be positive")
        self.k = k
        self.reg = reg
        self.inner_sweeps = inner_sweeps
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()

    # ------------------------------------------------------------------
    @staticmethod
    def _solve_axis(
        residual_plus: np.ndarray,   # residual with the rank-1 term added back
        own_idx: np.ndarray,         # entity index per rating (the side solved)
        other_vals: np.ndarray,      # other side's feature value per rating
        n_entities: int,
        reg: float,
    ) -> np.ndarray:
        """Closed-form 1-D ridge per entity: sum(r*v) / (reg*cnt + sum(v^2))."""
        num = np.bincount(own_idx, weights=residual_plus * other_vals,
                          minlength=n_entities)
        den = np.bincount(own_idx, weights=other_vals * other_vals,
                          minlength=n_entities)
        cnt = np.bincount(own_idx, minlength=n_entities)
        den = den + reg * cnt
        out = np.zeros(n_entities)
        nz = den > 0
        out[nz] = num[nz] / den[nz]
        return out

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 10,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rows, cols = ratings.rows, ratings.cols
        vals = ratings.vals.astype(np.float64)

        # residual r_ij = R_ij - p_i . q_j, maintained incrementally
        residual = vals - self.model.predict(rows, cols).astype(np.float64)

        for _ in range(epochs):
            for f in range(self.k):
                u_f = self.model.P[:, f].astype(np.float64)
                v_f = self.model.Q[f, :].astype(np.float64)
                # peel the rank-1 term out of the residual
                residual_plus = residual + u_f[rows] * v_f[cols]
                for _sweep in range(self.inner_sweeps):
                    u_f = self._solve_axis(residual_plus, rows, v_f[cols],
                                           ratings.m, self.reg)
                    v_f = self._solve_axis(residual_plus, cols, u_f[rows],
                                           ratings.n, self.reg)
                # fold the updated term back in
                residual = residual_plus - u_f[rows] * v_f[cols]
                self.model.P[:, f] = u_f.astype(np.float32)
                self.model.Q[f, :] = v_f.astype(np.float32)
            rmse = float(np.sqrt(np.mean(residual**2)))
            # eval on the requested set (the residual gives train RMSE free)
            self.history.record(self.model.rmse(eval_data), rmse**2)
        return self.model


def fold_in_user(
    model: MFModel,
    item_ids: np.ndarray,
    ratings: np.ndarray,
    reg: float = 0.05,
) -> np.ndarray:
    """Fold a *new* user into a trained model: solve their p vector.

    The classic cold-start-by-ridge trick: with Q fixed, the new user's
    factor is the closed-form ridge solution against their few known
    ratings — no retraining.  Returns the (k,) factor; score the catalog
    with ``p_new @ model.Q``.
    """
    item_ids = np.asarray(item_ids, dtype=np.int64)
    ratings = np.asarray(ratings, dtype=np.float64)
    if len(item_ids) == 0:
        raise ValueError("need at least one rating to fold in")
    if len(item_ids) != len(ratings):
        raise ValueError("item_ids and ratings must align")
    if item_ids.min() < 0 or item_ids.max() >= model.n:
        raise IndexError("item id out of range")
    q = model.Q[:, item_ids].astype(np.float64)      # (k, r)
    gram = q @ q.T + reg * len(item_ids) * np.eye(model.k)
    rhs = q @ ratings
    return np.linalg.solve(gram, rhs).astype(np.float32)
