"""HSGD baseline (Yu et al., 2020) — single CPU + single GPU hybrid.

The paper's introduction positions HSGD as the closest prior work:
it "combines FPSGD and CuMF_SGD" on one CPU-GPU pair.  HSGD statically
splits the rating matrix between the two processors — the CPU side runs
FPSGD's block-scheduled updates, the GPU side CuMF-style waves — and
merges the item factors after each epoch.

HSGD is the conceptual precursor of HCC-MF: it already mixes processor
kinds but supports exactly two workers, has no cost model to derive the
split (the user supplies ``gpu_fraction``), and no communication
optimization.  HCC-MF generalizes all three.
"""

from __future__ import annotations

import numpy as np

from repro.data.grid import GridKind, partition_rows
from repro.data.ratings import RatingMatrix
from repro.mf.kernels import ConflictPolicy, sgd_batch_update
from repro.mf.model import MFModel
from repro.mf.sgd import TrainHistory


class HSGD:
    """Hybrid single-CPU/single-GPU SGD-based MF."""

    def __init__(
        self,
        k: int,
        gpu_fraction: float = 0.75,
        cpu_threads: int = 4,
        gpu_threads: int = 4096,
        lr: float = 0.005,
        reg: float = 0.01,
        batch_size: int = 4096,
        seed: int = 0,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        if not (0.0 < gpu_fraction < 1.0):
            raise ValueError("gpu_fraction must be in (0, 1)")
        if cpu_threads <= 0 or gpu_threads <= 0:
            raise ValueError("thread counts must be positive")
        self.k = k
        self.gpu_fraction = gpu_fraction
        self.cpu_threads = cpu_threads
        self.gpu_threads = gpu_threads
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.seed = seed
        self.model: MFModel | None = None
        self.history = TrainHistory()

    def fit(
        self,
        ratings: RatingMatrix,
        epochs: int = 20,
        eval_data: RatingMatrix | None = None,
    ) -> MFModel:
        eval_data = eval_data if eval_data is not None else ratings
        self.model = MFModel.init_for(ratings, self.k, seed=self.seed)
        rng = np.random.default_rng(self.seed)
        data = ratings.shuffle(rng)
        # static row split: GPU gets gpu_fraction of the entries
        cpu_part, gpu_part = partition_rows(
            data, [1.0 - self.gpu_fraction, self.gpu_fraction], GridKind.ROW
        )
        cpu_data = cpu_part.extract(data)
        gpu_data = gpu_part.extract(data).sort_by_row()  # CuMF block sorting

        for _ in range(epochs):
            q_base = self.model.Q.copy()

            # CPU side: FPSGD-flavoured moderate batches, atomic conflicts
            cpu_model = MFModel(self.model.P, q_base.copy())
            order = rng.permutation(cpu_data.nnz)
            shuffled = cpu_data.take(order)
            for rows, cols, vals in shuffled.batches(self.batch_size):
                sgd_batch_update(
                    cpu_model, rows, cols, vals, self.lr, self.reg,
                    policy=ConflictPolicy.ATOMIC,
                )

            # GPU side: CuMF-flavoured thread waves, lock-free conflicts
            gpu_model = MFModel(self.model.P, q_base.copy())
            order = rng.permutation(gpu_data.nnz)
            shuffled = gpu_data.take(order)
            for rows, cols, vals in shuffled.batches(self.gpu_threads):
                sgd_batch_update(
                    gpu_model, rows, cols, vals, self.lr, self.reg,
                    policy=ConflictPolicy.LAST_WRITE,
                )

            # epoch-end merge: both sides trained disjoint rows, so P is
            # already consistent; Q deltas add (disjoint samples)
            self.model.Q[...] = (
                q_base + (cpu_model.Q - q_base) + (gpu_model.Q - q_base)
            )
            self.history.record(
                self.model.rmse(eval_data),
                float(self.model.rmse(data)) ** 2,
            )
        return self.model
