"""Vectorized SGD update kernels with explicit conflict policies.

One SGD step on a rating ``r_ij`` (paper Figure 1):

    e    = r_ij - p_i . q_j
    p_i += gamma * (e * q_j - lambda1 * p_i)
    q_j += gamma * (e * p_i - lambda2 * q_j)

A *batch* of samples is updated at once.  When two samples in a batch
share a user row or item column, real parallel hardware exhibits one of
two behaviours, which we expose as :class:`ConflictPolicy`:

* ``ATOMIC`` — both gradient contributions land (like atomic adds /
  Hogwild with element-wise atomics).  Implemented with ``np.add.at``.
* ``LAST_WRITE`` — one update overwrites the other (lost update), which
  is what CuMF_SGD's lock-free warps and HCC-MF's concurrent
  asynchronous streams do ("several asynchronous streams in a same
  worker may train the same row ... resulting in the coverage of the
  training results", paper section 4.2).

Hogwild! (Niu et al. 2011) proves both converge for sparse data; tests
verify the convergence and the lost-update semantics separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.mf.model import MFModel


class ConflictPolicy(enum.Enum):
    """How concurrent updates to the same feature row are resolved."""

    ATOMIC = "atomic"
    LAST_WRITE = "last_write"


@dataclass(frozen=True)
class BatchStats:
    """Collision statistics for one update batch."""

    size: int
    row_conflicts: int
    col_conflicts: int

    @property
    def conflict_fraction(self) -> float:
        if self.size == 0:
            return 0.0
        return (self.row_conflicts + self.col_conflicts) / (2.0 * self.size)


def conflict_stats(rows: np.ndarray, cols: np.ndarray) -> BatchStats:
    """Count batch entries whose row (column) appears more than once."""
    size = len(rows)
    _, row_counts = np.unique(rows, return_counts=True)
    _, col_counts = np.unique(cols, return_counts=True)
    return BatchStats(
        size=size,
        row_conflicts=int(np.sum(row_counts[row_counts > 1])),
        col_conflicts=int(np.sum(col_counts[col_counts > 1])),
    )


def _scatter_add(target: np.ndarray, idx: np.ndarray, updates: np.ndarray) -> None:
    """``target[idx] += updates`` with duplicate accumulation, fast.

    ``np.add.at`` is correct but unbuffered (one scattered write per
    element, ~20x slower here); grouping duplicates with a sort and
    ``np.add.reduceat`` keeps everything in buffered vector ops.
    """
    if len(idx) == 0:
        return
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(sorted_idx)) + 1))
    sums = np.add.reduceat(updates[order], starts, axis=0)
    target[sorted_idx[starts]] += sums


def sgd_batch_update(
    model: MFModel,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    lr: float,
    reg: float,
    policy: ConflictPolicy = ConflictPolicy.ATOMIC,
) -> float:
    """Apply one vectorized SGD step over a batch of samples.

    Returns the batch's mean squared error *before* the update (useful
    as a cheap running convergence signal).
    """
    P, Q = model.P, model.Q
    p = P[rows]                       # (b, k) gather
    q = Q[:, cols].T                  # (b, k) gather
    err = (vals - np.einsum("ij,ij->i", p, q)).astype(np.float32, copy=False)

    dp = lr * (err[:, None] * q - reg * p)
    dq = lr * (err[:, None] * p - reg * q)

    if policy is ConflictPolicy.ATOMIC:
        # A real Hogwild run interleaves reads and writes, so each
        # duplicate index sees a partially-updated vector.  Summing b
        # *stale* gradients would multiply the effective step size by the
        # duplicate count and diverge; averaging over intra-batch
        # duplicates is the convergent serializable approximation.
        row_counts = np.bincount(rows, minlength=P.shape[0])[rows]
        col_counts = np.bincount(cols, minlength=Q.shape[1])[cols]
        _scatter_add(P, rows, (dp / row_counts[:, None]).astype(np.float32, copy=False))
        _scatter_add(Q.T, cols, (dq / col_counts[:, None]).astype(np.float32, copy=False))
    elif policy is ConflictPolicy.LAST_WRITE:
        # duplicate indices: NumPy fancy assignment keeps the last
        # occurrence, exactly the lost-update behaviour of unsynchronized
        # concurrent writers.
        P[rows] = p + dp
        Q.T[cols] = q + dq
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown policy {policy}")

    # loss reduction deliberately widens: summing b float32 squares loses
    # precision, and the result never feeds back into the FP32 model
    # hcclint: disable=kernel-promotion
    return float(np.mean(np.square(err, dtype=np.float64))) if len(err) else 0.0


def sgd_epoch(
    model: MFModel,
    ratings: RatingMatrix,
    lr: float,
    reg: float,
    batch_size: int = 4096,
    policy: ConflictPolicy = ConflictPolicy.ATOMIC,
    rng: np.random.Generator | None = None,
) -> float:
    """One full pass over the ratings in shuffled mini-batches.

    Returns the mean squared error averaged over all batches (pre-update
    errors, so it slightly lags the true post-epoch loss).
    """
    if ratings.nnz == 0:
        return 0.0
    if rng is not None:
        order = rng.permutation(ratings.nnz)
        data = ratings.take(order)
    else:
        data = ratings
    total_sq = 0.0
    for rows, cols, vals in data.batches(batch_size):
        mse = sgd_batch_update(model, rows, cols, vals, lr, reg, policy)
        total_sq += mse * len(rows)
    return total_sq / ratings.nnz


def sgd_epoch_serial(
    model: MFModel,
    ratings: RatingMatrix,
    lr: float,
    reg: float,
) -> float:
    """Pure-Python serial SGD epoch: the exact sequential recurrence.

    This is the ground-truth semantics ("the standard SGD is a serial
    algorithm", paper 2.1).  O(nnz * k) Python-loop cost — use only on
    tiny matrices, e.g. to validate the vectorized kernels.
    """
    P, Q = model.P, model.Q
    total_sq = 0.0
    for i in range(ratings.nnz):
        r, c = int(ratings.rows[i]), int(ratings.cols[i])
        # validation-only serial recurrence (O(nnz*k) Python cost is the
        # documented price); the copies pin the pre-update p_i, q_j pair
        p = P[r].copy()  # hcclint: disable=hot-copy
        q = Q[:, c].copy()  # hcclint: disable=hot-copy
        err = float(ratings.vals[i] - p @ q)
        P[r] = p + lr * (err * q - reg * p)
        Q[:, c] = q + lr * (err * p - reg * q)
        total_sq += err * err
    return total_sq / max(ratings.nnz, 1)


def updates_per_epoch(ratings: RatingMatrix) -> int:
    """Number of SGD parameter updates in one epoch (= nnz).

    This is the numerator of the paper's "computing power" metric
    (Eq. 8): updates/s = nnz * epochs / cost_time.
    """
    return ratings.nnz
