"""The factor model: user matrix P and item matrix Q (paper Figure 1).

``P`` is ``(m, k)`` and ``Q`` is ``(k, n)`` so that the predicted rating
matrix is ``P @ Q`` — the same orientation the paper draws.  Both are
``float32``, matching the FP32 training / FP16 transmission design of
section 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ratings import RatingMatrix


@dataclass
class MFModel:
    """Latent-factor model holding P (m x k) and Q (k x n)."""

    P: np.ndarray
    Q: np.ndarray

    def __post_init__(self) -> None:
        self.P = np.ascontiguousarray(self.P, dtype=np.float32)
        self.Q = np.ascontiguousarray(self.Q, dtype=np.float32)
        if self.P.ndim != 2 or self.Q.ndim != 2:
            raise ValueError("P and Q must be 2-D")
        if self.P.shape[1] != self.Q.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: P is {self.P.shape}, Q is {self.Q.shape}"
            )

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self.P.shape[0]

    @property
    def n(self) -> int:
        return self.Q.shape[1]

    @property
    def k(self) -> int:
        """Latent dimension: columns of P / rows of Q (Table 1)."""
        return self.P.shape[1]

    @property
    def feature_bytes(self) -> int:
        """Total FP32 footprint of the feature matrices, 4k(m+n)."""
        return self.P.nbytes + self.Q.nbytes

    # ------------------------------------------------------------------
    @classmethod
    def init(cls, m: int, n: int, k: int, mean_rating: float = 3.0, seed: int = 0) -> "MFModel":
        """Initialize so that initial predictions hover near the mean rating.

        Entries are ``sqrt(mean/k)`` plus small noise, the common MF
        initialization (used by cuMF and LIBMF): ``p . q ~ mean`` at
        epoch 0, which keeps early SGD steps well-scaled for any rating
        scale (Netflix 1-5 vs. Yahoo R1 0-100).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if mean_rating <= 0:
            raise ValueError("mean_rating must be positive")
        rng = np.random.default_rng(seed)
        base = np.sqrt(mean_rating / k)
        p = base * (1.0 + 0.1 * rng.standard_normal((m, k)))
        q = base * (1.0 + 0.1 * rng.standard_normal((k, n)))
        return cls(p.astype(np.float32), q.astype(np.float32))

    @classmethod
    def init_for(cls, ratings: RatingMatrix, k: int, seed: int = 0) -> "MFModel":
        mean = ratings.mean_rating() or 1.0
        return cls.init(ratings.m, ratings.n, k, mean_rating=max(mean, 1e-3), seed=seed)

    # ------------------------------------------------------------------
    def predict(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Predicted ratings for coordinate pairs: ``sum_k P[r,k] Q[k,c]``."""
        return np.einsum("ij,ji->i", self.P[rows], self.Q[:, cols], optimize=True)

    def predict_dense(self) -> np.ndarray:
        """Full predicted rating matrix R_p = P @ Q (small models only)."""
        return self.P @ self.Q

    def rmse(self, ratings: RatingMatrix) -> float:
        """Root mean square error over the observed entries."""
        if ratings.nnz == 0:
            return 0.0
        err = ratings.vals - self.predict(ratings.rows, ratings.cols)
        # metric reduction deliberately widens; never feeds the FP32 model
        return float(np.sqrt(np.mean(np.square(err, dtype=np.float64))))  # hcclint: disable=kernel-promotion

    def copy(self) -> "MFModel":
        return MFModel(self.P.copy(), self.Q.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MFModel(m={self.m}, n={self.n}, k={self.k})"
