"""HCC-MF: multi-CPU/GPU collaborative computing for SGD-based MF.

A reproduction of Huang et al., "A Novel Multi-CPU/GPU Collaborative
Computing Framework for SGD-based Matrix Factorization" (ICPP 2021).

Quickstart::

    from repro import HCCMF, HCCConfig, NETFLIX, paper_workstation

    ratings = NETFLIX.scaled(50_000).generate(seed=0)
    hcc = HCCMF(paper_workstation(), NETFLIX, HCCConfig(k=16, epochs=10),
                ratings=ratings)
    result = hcc.train()
    print(result.rmse_history[-1], result.utilization)

Subpackages:

* :mod:`repro.core` — the HCC-MF framework: cost model, DP0/DP1/DP2
  partitioning, communication strategies, parameter server.
* :mod:`repro.mf` — SGD-based MF algorithms (Hogwild, FPSGD, CuMF_SGD).
* :mod:`repro.hardware` — the calibrated multi-CPU/GPU platform model.
* :mod:`repro.data` — rating matrices, synthetic datasets, grids.
* :mod:`repro.parallel` — real shared-memory multi-process execution.
* :mod:`repro.obs` — runtime telemetry: span tracing of real runs,
  metrics registry, cost-model drift reports.
* :mod:`repro.experiments` — regenerates every paper table and figure.
* :mod:`repro.analysis` — hcclint static analysis + dynamic race
  detection for the framework's concurrency and cost-model invariants.
"""

from repro.core import (
    HCCMF,
    HCCConfig,
    CommConfig,
    PartitionStrategy,
    TransmitMode,
    CommBackendKind,
    TrainResult,
    TimeCostModel,
    PartitionPlan,
    dp0,
    dp1,
    dp2,
    computing_power,
    utilization,
)
from repro.data import (
    RatingMatrix,
    DatasetSpec,
    NETFLIX,
    YAHOO_R1,
    R1_STAR,
    YAHOO_R2,
    MOVIELENS_20M,
    generate_low_rank,
)
from repro.hardware import (
    Platform,
    Processor,
    paper_workstation,
    single_processor,
)
from repro.mf import MFModel, HogwildSGD, FPSGD, CuMFSGD
from repro.obs import Telemetry
from repro.parallel import SharedMemoryTrainer

__version__ = "1.0.0"

__all__ = [
    "HCCMF",
    "HCCConfig",
    "CommConfig",
    "PartitionStrategy",
    "TransmitMode",
    "CommBackendKind",
    "TrainResult",
    "TimeCostModel",
    "PartitionPlan",
    "dp0",
    "dp1",
    "dp2",
    "computing_power",
    "utilization",
    "RatingMatrix",
    "DatasetSpec",
    "NETFLIX",
    "YAHOO_R1",
    "R1_STAR",
    "YAHOO_R2",
    "MOVIELENS_20M",
    "generate_low_rank",
    "Platform",
    "Processor",
    "paper_workstation",
    "single_processor",
    "MFModel",
    "HogwildSGD",
    "FPSGD",
    "CuMFSGD",
    "SharedMemoryTrainer",
    "Telemetry",
    "__version__",
]
