"""Recovery decisions: what the engine does about a health report.

Three-level escalation, configured by
:class:`~repro.core.config.RecoveryPolicy`:

* **RETRY** — transient failure (stragglers, corrupted payload, cause
  unknown): re-run the failed epoch from the last synced model, after
  an exponential backoff.
* **REDISTRIBUTE** — worker death: renormalize the surviving workers'
  shard fractions over the unit simplex (:func:`redistribute`, the
  same rate-proportional rescale DP1's compensation loop applies) and
  continue degraded.
* **ABORT** — retries exhausted, or a death that would leave fewer
  than ``min_workers`` survivors: write a final checkpoint (when the
  run has a checkpoint path) and raise :class:`TrainingAborted`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import RecoveryPolicy
from repro.core.partition import PartitionPlan, _normalize
from repro.resilience.health import HealthReport


class RecoveryAction(enum.Enum):
    """What the engine does next after a failure."""

    RETRY = "retry"
    REDISTRIBUTE = "redistribute"
    ABORT = "abort"


class TrainingAborted(RuntimeError):
    """Recovery gave up; carries where, why, and any final checkpoint."""

    def __init__(
        self,
        epoch: int,
        cause: str,
        checkpoint_path: "str | None" = None,
        summary: "ResilienceSummary | None" = None,
    ):
        self.epoch = epoch
        self.cause = cause
        self.checkpoint_path = checkpoint_path
        #: the run's summary up to the abort (decision sequence included),
        #: so harnesses can compare aborted runs across planes
        self.summary = summary
        saved = (
            f"; state through epoch {epoch} checkpointed to {checkpoint_path}"
            if checkpoint_path is not None
            else "; no checkpoint path was configured, progress is lost"
        )
        super().__init__(
            f"training aborted at epoch {epoch} after exhausting recovery: "
            f"{cause}{saved}"
        )


def decide(
    policy: RecoveryPolicy,
    report: HealthReport,
    retries_so_far: int,
    n_workers: int,
) -> RecoveryAction:
    """Map a health report onto the policy's escalation ladder."""
    dead = report.dead_ranks
    if dead:
        survivors = n_workers - len(dead)
        if policy.redistribute and survivors >= policy.min_workers:
            return RecoveryAction.REDISTRIBUTE
        return RecoveryAction.ABORT
    if retries_so_far < policy.max_retries:
        return RecoveryAction.RETRY
    return RecoveryAction.ABORT


def redistribute(
    plan: PartitionPlan, dead_ranks: "tuple[int, ...] | list[int] | set[int]"
) -> PartitionPlan:
    """Reassign dead workers' shards across the survivors.

    Survivor fractions keep their *relative* proportions — the same
    rate-proportional scaling DP0/DP1 derived them from — and are
    renormalized onto the unit simplex, so each survivor absorbs a
    share of the lost work proportional to its measured throughput.
    Predicted times (when the plan carries them) scale with the
    fraction growth, rates being locally constant — exactly how DP2
    extrapolates Algorithm 1's rescale.
    """
    dead = set(dead_ranks)
    unknown = dead - set(range(plan.n_workers))
    if unknown:
        raise ValueError(f"dead ranks {sorted(unknown)} not in the plan")
    survivors = [r for r in range(plan.n_workers) if r not in dead]
    if not survivors:
        raise ValueError("cannot redistribute: no surviving workers")
    if not dead:
        return plan
    old = np.asarray([plan.fractions[r] for r in survivors], dtype=np.float64)
    new = _normalize(old)
    if plan.predicted_times:
        pred = tuple(
            float(plan.predicted_times[r] * ni / max(oi, 1e-30))
            for r, oi, ni in zip(survivors, old, new)
        )
    else:
        pred = ()
    return PartitionPlan("degraded", tuple(map(float, new)), pred,
                         rounds=plan.rounds)


@dataclass
class ResilienceSummary:
    """What the resilience plane did during one engine run."""

    retries: int = 0
    redistributions: int = 0
    degraded_epochs: int = 0
    checkpoints_written: int = 0
    resumed_from_epoch: "int | None" = None
    #: human-readable record of each failure and the action taken
    failures: list[str] = field(default_factory=list)
    #: structured record of each failure: (global epoch, error type
    #: name, action value) — plane-independent, unlike ``failures``
    #: whose prose carries process exit codes; the chaos-parity harness
    #: diffs this sequence across the sim and process planes
    decisions: list[tuple[int, str, str]] = field(default_factory=list)
    final_workers: "int | None" = None

    @property
    def clean(self) -> bool:
        """True when the run never saw a failure."""
        return not self.failures

    def describe(self) -> str:
        bits = [
            f"retries={self.retries}",
            f"redistributions={self.redistributions}",
            f"degraded_epochs={self.degraded_epochs}",
            f"checkpoints={self.checkpoints_written}",
        ]
        if self.resumed_from_epoch is not None:
            bits.append(f"resumed_from={self.resumed_from_epoch}")
        if self.final_workers is not None:
            bits.append(f"final_workers={self.final_workers}")
        return ", ".join(bits)
