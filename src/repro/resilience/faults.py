"""Fault injection for the process plane (docs/resilience.md).

A :class:`FaultPlan` is an immutable script of failures to inject into
a :class:`~repro.engine.backends.ProcessBackend` run.  Faults are keyed
by *global* epoch (checkpoint-resumed and recovery-restarted runs keep
counting where they left off) and worker rank, and each fires at most
once: after a failure the engine prunes everything at or before the
failed epoch (:meth:`FaultPlan.without_epochs_through`), so a retried
epoch does not trip over the fault that killed it.

Four fault kinds cover the failure taxonomy:

* ``kill`` — the worker dies at the top of the epoch.  Soft kills raise
  inside the worker (a crashing process that still runs interpreter
  teardown); hard kills ``os._exit`` without any cleanup (SIGKILL-like).
  Neither touches the barrier — a real crashed process cannot abort a
  rendezvous — so the server detects the death from the exit code.
* ``delay`` — the worker sleeps before stamping one barrier, turning
  it into a straggler; a delay past ``barrier_timeout_s`` surfaces as
  a :class:`~repro.engine.backends.WorkerSyncError`.
* ``drop`` — the worker's push payload is lost on the wire: the push
  buffer carries the epoch base instead of the trained result, so the
  server merges a zero delta (the epoch's work from that worker
  silently vanishes — which the additive merge tolerates by design).
* ``corrupt`` — the push payload arrives as garbage (NaN), which the
  server's payload validation rejects as a
  :class:`~repro.engine.backends.WirePayloadError`.

Plans are plain frozen dataclasses, so they pickle into spawned worker
processes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KILL = "kill"
DELAY = "delay"
DROP = "drop"
CORRUPT = "corrupt"

_KINDS = (KILL, DELAY, DROP, CORRUPT)
_BARRIER_POINTS = ("start", "end")


@dataclass(frozen=True)
class Fault:
    """One injected failure: what happens to which rank at which epoch."""

    kind: str
    rank: int
    epoch: int
    #: delay only: how long the worker stalls before stamping
    seconds: float = 0.0
    #: delay only: which barrier the stall precedes
    point: str = "start"
    #: kill only: die via os._exit (no cleanup) instead of abort+raise
    hard: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {_KINDS}")
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.point not in _BARRIER_POINTS:
            raise ValueError(f"point must be one of {_BARRIER_POINTS}")
        if self.kind != DELAY and self.seconds:
            raise ValueError(f"seconds only applies to {DELAY!r} faults")
        if self.hard and self.kind != KILL:
            raise ValueError(f"hard only applies to {KILL!r} faults")

    def describe(self) -> str:
        detail = ""
        if self.kind == DELAY:
            detail = f" by {self.seconds:g}s before the {self.point} barrier"
        elif self.kind == KILL and self.hard:
            detail = " (hard)"
        return f"{self.kind} worker-{self.rank} at epoch {self.epoch}{detail}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable script of faults; built fluently, pickled to workers.

    ``FaultPlan().kill(1, epoch=2).delay_barrier(0, epoch=4, seconds=3)``
    """

    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- builders --------------------------------------------------------
    def _with(self, fault: Fault) -> "FaultPlan":
        return replace(self, faults=self.faults + (fault,))

    def kill(self, rank: int, epoch: int, hard: bool = False) -> "FaultPlan":
        """Worker ``rank`` dies at the top of ``epoch``."""
        return self._with(Fault(KILL, rank, epoch, hard=hard))

    def delay_barrier(
        self, rank: int, epoch: int, seconds: float, point: str = "start"
    ) -> "FaultPlan":
        """Worker ``rank`` stalls before stamping one of ``epoch``'s barriers."""
        return self._with(Fault(DELAY, rank, epoch, seconds=seconds, point=point))

    def drop_payload(self, rank: int, epoch: int) -> "FaultPlan":
        """Worker ``rank``'s push for ``epoch`` is lost on the wire."""
        return self._with(Fault(DROP, rank, epoch))

    def corrupt_payload(self, rank: int, epoch: int) -> "FaultPlan":
        """Worker ``rank``'s push for ``epoch`` arrives as garbage."""
        return self._with(Fault(CORRUPT, rank, epoch))

    # -- queries ---------------------------------------------------------
    def for_rank(self, rank: int) -> tuple[Fault, ...]:
        """The faults one worker process needs to carry with it."""
        return tuple(f for f in self.faults if f.rank == rank)

    def without_epochs_through(self, epoch: int) -> "FaultPlan":
        """Drop every fault at or before ``epoch`` (already fired).

        Called by the engine after a recovery restart: the failed epoch
        is re-run, and a fault keyed to it must not fire twice.
        """
        return replace(
            self, faults=tuple(f for f in self.faults if f.epoch > epoch)
        )

    def remap_ranks(
        self, dead_ranks: "tuple[int, ...] | list[int] | set[int]", n_workers: int
    ) -> "FaultPlan":
        """Renumber pending faults after a redistribution removes ranks.

        ``redistribute()`` compacts the survivors onto ranks
        ``0..n-1``, so a fault scheduled for (old) rank ``r`` must
        follow the worker it was aimed at to that worker's *new* rank.
        Faults aimed at a dead rank are dropped — their target no
        longer exists — as are faults on ranks outside the plan.
        """
        dead = set(dead_ranks)
        new_rank: dict[int, int] = {}
        for rank in range(n_workers):
            if rank in dead:
                continue
            new_rank[rank] = len(new_rank)
        kept = tuple(
            replace(f, rank=new_rank[f.rank])
            for f in self.faults
            if f.rank in new_rank
        )
        return replace(self, faults=kept)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return "; ".join(f.describe() for f in self.faults)


def fault_at(
    faults: tuple[Fault, ...], kind: str, epoch: int
) -> Fault | None:
    """First fault of ``kind`` scheduled for ``epoch`` (worker-side lookup)."""
    for fault in faults:
        if fault.kind == kind and fault.epoch == epoch:
            return fault
    return None
