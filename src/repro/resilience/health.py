"""The health plane: classify workers after a failed rendezvous.

The process plane already keeps per-rank *progress stamps* — a shared
int64 slot each worker bumps before the start (``2e+1``) and end
(``2e+2``) barriers of epoch ``e`` — which
:class:`~repro.engine.backends.WorkerSyncError` reads to name the ranks
that never arrived.  This module adds the second signal needed to pick
a recovery action: the OS process state.  A missing rank whose process
is *alive* is a straggler (retry can work); a process that exited — by
crash, signal, or a clean exit before finishing its epochs — is dead
(its shard must move to survivors or the run must abort).

:func:`classify` is plane-independent: the process backend feeds it
reaped ``Process.exitcode`` values, the sim backend feeds the exit
codes its injected kills *would* have produced (13 hard, 1 soft, None
alive) — so both planes hand the recovery policy identical evidence,
which is what the chaos-parity harness (:mod:`repro.testing`) verifies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


class WorkerState(enum.Enum):
    """One worker's condition at failure time."""

    HEALTHY = "healthy"        # reached the barrier, process alive
    STRAGGLING = "straggling"  # behind the barrier but still running
    DEAD = "dead"              # process exited (crash, signal, or early)


@dataclass(frozen=True)
class WorkerHealth:
    """One rank's classification plus the evidence it rests on."""

    rank: int
    state: WorkerState
    #: ``Process.exitcode``: None while alive, negative for a signal
    exitcode: int | None = None

    def describe(self) -> str:
        extra = ""
        if self.exitcode is not None:
            extra = f" (exit {self.exitcode})"
        return f"worker-{self.rank}: {self.state.value}{extra}"


@dataclass(frozen=True)
class HealthReport:
    """Every worker's state at the moment a failure surfaced."""

    workers: tuple[WorkerHealth, ...]
    #: what raised: the stringified engine-side exception
    cause: str = ""

    @property
    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(w.rank for w in self.workers if w.state is WorkerState.DEAD)

    @property
    def straggler_ranks(self) -> tuple[int, ...]:
        return tuple(
            w.rank for w in self.workers if w.state is WorkerState.STRAGGLING
        )

    @property
    def healthy_ranks(self) -> tuple[int, ...]:
        return tuple(
            w.rank for w in self.workers if w.state is WorkerState.HEALTHY
        )

    @property
    def ok(self) -> bool:
        return not self.dead_ranks and not self.straggler_ranks

    def describe(self) -> str:
        return "; ".join(w.describe() for w in self.workers) or "no workers"


def classify(
    n_workers: int,
    missing_ranks: Sequence[int],
    exitcodes: Sequence[int | None],
    cause: str = "",
) -> HealthReport:
    """Fuse barrier progress and process state into a health report.

    ``missing_ranks`` are the ranks whose progress stamps never reached
    the failed barrier (what :class:`WorkerSyncError` carries);
    ``exitcodes`` is each rank's ``Process.exitcode`` at failure time.

    * a nonzero (or signal) exit code is **dead** regardless of stamps —
      a killed worker may have stamped before dying;
    * a missing rank that exited cleanly is also **dead**: it ended
      before completing its epochs, so it will never arrive;
    * a missing rank still running is a **straggler**;
    * everything else is **healthy**.
    """
    if len(exitcodes) != n_workers:
        raise ValueError("need one exit code (or None) per worker")
    missing = set(missing_ranks)
    workers = []
    for rank in range(n_workers):
        code = exitcodes[rank]
        if code is not None and code != 0:
            state = WorkerState.DEAD
        elif rank in missing:
            state = WorkerState.DEAD if code == 0 else WorkerState.STRAGGLING
        else:
            state = WorkerState.HEALTHY
        workers.append(WorkerHealth(rank, state, code))
    return HealthReport(tuple(workers), cause=cause)
