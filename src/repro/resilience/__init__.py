"""repro.resilience: failure detection, recovery, and fault injection.

HCC-MF's cost model (Eq. 1-5) assumes every worker survives every
epoch; this package is what happens when one does not
(docs/resilience.md):

* :mod:`repro.resilience.health` — classify workers as healthy /
  straggling / dead from the barrier progress stamps plus OS process
  exit codes (the health plane);
* :mod:`repro.resilience.policy` — turn a health report and a
  :class:`~repro.core.config.RecoveryPolicy` into a recovery action
  (retry with backoff, redistribute the dead shard across survivors,
  or checkpoint-and-abort), and renormalize partition plans around
  dead ranks;
* :mod:`repro.resilience.faults` — the fault-injection harness
  (:class:`FaultPlan`): kill a worker at an epoch, delay a barrier,
  drop or corrupt a wire payload — used by the tests and the
  ``repro fault-smoke`` CLI command to prove every recovery path.

The engine (:mod:`repro.engine.pipeline`) consumes all three; nothing
here imports the engine, so the dependency points one way.
"""

from repro.resilience.faults import Fault, FaultPlan
from repro.resilience.health import HealthReport, WorkerHealth, WorkerState, classify
from repro.resilience.policy import (
    RecoveryAction,
    ResilienceSummary,
    TrainingAborted,
    decide,
    redistribute,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "HealthReport",
    "RecoveryAction",
    "ResilienceSummary",
    "TrainingAborted",
    "WorkerHealth",
    "WorkerState",
    "classify",
    "decide",
    "redistribute",
]
