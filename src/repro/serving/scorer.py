"""Batched top-k scoring over a store snapshot (vectorized P·Qᵀ).

CuMF_SGD's observation (PAPERS.md) carries straight over to inference:
the throughput shape of MF is one dense matmul, so a *batch* of users
scores as ``P[users] @ Q`` — one BLAS call for the whole request —
followed by a per-row selection.  The scorer adds the filtering real
recommenders need:

* **exclude-seen** masks (a :class:`SeenIndex` built from the training
  ratings, or any ``user -> item ids`` mapping);
* **allow-list candidates** (score only a given item subset, e.g. the
  retrieval stage's output);
* **per-request k** (one ``k`` per user in the batch, or one for all).

Ordering is fully deterministic: items are ranked by descending score
with ties broken by ascending item id, which is exactly the
``lexsort((item, -score))`` brute-force oracle the property tests
replay.  Every batch is served from **one** snapshot — the scorer grabs
``store.snapshot()`` exactly once per call, so a hot-swap midway
through a batch can never mix factors from two models; the snapshot's
version is stamped on the result.

The optional FP16 path (``precision="fp16"``) scores against the
snapshot's wire-quantized factors — the same binary16 rounding the FP16
channel applies on the wire — while accumulating in FP32.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.ratings import RatingMatrix
from repro.serving.store import ModelStore

#: scoring precisions: fp32 = raw snapshot factors; fp16 = wire-quantized
PRECISIONS = ("fp32", "fp16")


class SeenIndex:
    """Per-user seen-item lookup for exclude-seen filtering (CSR-style)."""

    def __init__(self, indptr: np.ndarray, items: np.ndarray, m: int):
        self._indptr = indptr
        self._items = items
        self.m = m

    @classmethod
    def from_ratings(cls, ratings: RatingMatrix) -> "SeenIndex":
        """Index every observed (user, item) pair of a rating matrix."""
        order = np.argsort(ratings.rows, kind="stable")
        rows = ratings.rows[order]
        items = ratings.cols[order]
        indptr = np.zeros(ratings.m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=ratings.m), out=indptr[1:])
        return cls(indptr, items, ratings.m)

    def items_for(self, user: int) -> np.ndarray:
        """Item ids the user has already rated (unsorted, possibly empty)."""
        if not 0 <= user < self.m:
            return np.empty(0, dtype=np.int64)
        return self._items[self._indptr[user]:self._indptr[user + 1]]


@dataclass(frozen=True)
class TopKResult:
    """One batch's recommendations, all served from a single snapshot."""

    users: np.ndarray           # (B,) user ids as queried
    items: list[np.ndarray]     # per-user item ids, best first
    scores: list[np.ndarray]    # per-user FP32 scores, aligned with items
    version: int                # snapshot version that served the batch
    ks: tuple[int, ...]         # requested k per user

    def __len__(self) -> int:
        return len(self.users)


def _seen_items(exclude, user: int) -> np.ndarray:
    if hasattr(exclude, "items_for"):
        return np.asarray(exclude.items_for(user), dtype=np.int64)
    seen = exclude.get(user)
    if seen is None:
        return np.empty(0, dtype=np.int64)
    return np.asarray(seen, dtype=np.int64)


def _select_row(scores: np.ndarray, allowed: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-k allowed entries: score desc, index asc.

    Exact under ties: strictly-above-threshold entries are ordered by
    ``lexsort((index, -score))``; remaining slots fill with threshold
    entries in ascending index order — precisely the truncation of the
    full brute-force ordering, without sorting all of ``scores``.
    """
    idx = np.flatnonzero(allowed)
    if k <= 0 or idx.size == 0:
        return np.empty(0, dtype=np.int64)
    vals = scores[idx]
    if k >= idx.size:
        return idx[np.lexsort((idx, -vals))]
    kth = np.partition(vals, vals.size - k)[vals.size - k]
    above = vals > kth
    top = idx[above]
    top = top[np.lexsort((top, -vals[above]))]
    need = k - top.size
    if need > 0:
        top = np.concatenate([top, idx[vals == kth][:need]])
    return top


class Scorer:
    """Answers batched top-k queries against a :class:`ModelStore`."""

    def __init__(self, store: ModelStore, *, precision: str = "fp32"):
        if precision not in PRECISIONS:
            raise ValueError(f"precision must be one of {PRECISIONS}")
        self.store = store
        self.precision = precision

    def top_k(
        self,
        users: Sequence[int] | np.ndarray,
        k: int | Sequence[int],
        *,
        exclude: "SeenIndex | Mapping[int, Sequence[int]] | None" = None,
        candidates: Sequence[int] | np.ndarray | None = None,
    ) -> TopKResult:
        """Top-k items per user, filtered, from one consistent snapshot.

        ``k`` may be a single int or one per user; a user with fewer
        allowed candidates than ``k`` gets a short (possibly empty)
        list rather than padding.  ``candidates`` restricts scoring to
        an allow-list of item ids (deduplicated); ``exclude`` removes
        already-seen items per user.
        """
        snap = self.store.snapshot()   # the one consistency point
        P, Q = snap.quantized() if self.precision == "fp16" else (snap.P, snap.Q)

        users = np.asarray(users, dtype=np.int64).ravel()
        if users.size == 0:
            return TopKResult(users, [], [], snap.version, ())
        if users.min() < 0 or users.max() >= snap.m:
            raise ValueError(
                f"user id out of range for snapshot v{snap.version} "
                f"({snap.m} users)"
            )
        ks = np.broadcast_to(np.asarray(k, dtype=np.int64), users.shape)
        if ks.min() < 0:
            raise ValueError("k must be non-negative")

        if candidates is not None:
            cand = np.unique(np.asarray(candidates, dtype=np.int64))
            if cand.size and (cand[0] < 0 or cand[-1] >= snap.n):
                raise ValueError(
                    f"candidate item id out of range for snapshot "
                    f"v{snap.version} ({snap.n} items)"
                )
            scores = P[users] @ Q[:, cand]
        else:
            cand = None
            scores = P[users] @ Q

        allowed = np.ones(scores.shape, dtype=bool)
        # an empty item axis (empty allow-list) has nothing to exclude,
        # and the searchsorted clamp below cannot index an empty cand
        if exclude is not None and scores.shape[1] > 0:
            for i, user in enumerate(users):
                seen = _seen_items(exclude, int(user))
                if seen.size == 0:
                    continue
                if cand is not None:
                    # positions of seen items inside the sorted allow-list
                    pos = np.searchsorted(cand, seen)
                    pos = pos[(pos < cand.size) & (cand[np.minimum(pos, cand.size - 1)] == seen)]
                    allowed[i, pos] = False
                else:
                    allowed[i, seen[(seen >= 0) & (seen < snap.n)]] = False

        items: list[np.ndarray] = []
        out_scores: list[np.ndarray] = []
        for i in range(users.size):
            sel = _select_row(scores[i], allowed[i], int(ks[i]))
            items.append(cand[sel] if cand is not None else sel)
            out_scores.append(scores[i][sel])
        return TopKResult(users, items, out_scores, snap.version,
                          tuple(int(x) for x in ks))
