"""repro.serving — the serving plane: top-k queries over trained models.

Training produces checkpoints; this package turns them into a service
(the north star's "millions of users under heavy traffic" read path):

* :mod:`repro.serving.store` — :class:`ModelStore` loads
  :mod:`repro.core.checkpoint` checkpoints and atomically hot-swaps
  snapshots under live traffic; readers always see one consistent
  ``(P, Q, version)`` triple, and a failed swap degrades to the last
  good snapshot (counted as ``serving_swap_failed``), never a crash;
* :mod:`repro.serving.scorer` — :class:`Scorer` answers batched top-k
  queries by vectorized P·Qᵀ with exclude-seen masks, allow-list
  candidates, per-request k, deterministic tie-breaking, and an
  optional FP16-precision path matching the wire codec's semantics;
* :mod:`repro.serving.loadgen` — closed-loop / Poisson load generation
  measuring p50/p99 latency and QPS against a declared :class:`SLO`;
* :mod:`repro.serving.bench` — the ``repro serve-bench`` suite emitting
  schema-validated ``BENCH_serving.json`` documents that compare (and
  regress-gate) exactly like ``BENCH_train.json``.

See docs/serving.md for the architecture and the SLO methodology.
"""

from repro.serving.bench import (
    ServingBenchConfig,
    run_serving_suite,
    serving_metrics,
    slo_block,
)
from repro.serving.loadgen import (
    MODES,
    SLO,
    LoadGenConfig,
    LoadReport,
    run_loadgen,
)
from repro.serving.scorer import PRECISIONS, Scorer, SeenIndex, TopKResult
from repro.serving.store import (
    SWAP_FAILURE_REASONS,
    ModelSnapshot,
    ModelStore,
    ServingError,
    SwapResult,
)

__all__ = [
    "MODES",
    "PRECISIONS",
    "SLO",
    "SWAP_FAILURE_REASONS",
    "LoadGenConfig",
    "LoadReport",
    "ModelSnapshot",
    "ModelStore",
    "Scorer",
    "SeenIndex",
    "ServingBenchConfig",
    "ServingError",
    "SwapResult",
    "TopKResult",
    "run_loadgen",
    "run_serving_suite",
    "serving_metrics",
    "slo_block",
]
