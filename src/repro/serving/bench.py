"""The serving perf suite behind ``repro serve-bench``.

Emits one ``BENCH_serving.json`` through the same schema, provenance,
and :func:`~repro.obs.bench.compare_docs` machinery as the training
suite, so serving regressions gate in CI exactly like training
regressions (exit code 3 from ``--compare``).  Metrics per run:

* ``serving/topk/p50_ms`` / ``serving/topk/p99_ms`` — request latency
  percentiles from a closed-loop load generation run over the pinned
  Netflix-shaped workload (exclude-seen filtering on, so the measured
  path is the realistic one);
* ``serving/topk/qps`` — sustained closed-loop throughput;
* ``serving/topk[fp16]/p50_ms`` / ``serving/topk[fp16]/qps`` — the
  FP16-precision scoring path;
* ``serving/swap/seconds`` — checkpoint hot-swap latency (load + atomic
  publish), the freshness cost of serving from snapshots.

The section registers itself in the :mod:`repro.obs.bench` suite
registry as ``"serving"``, so ``repro bench --suites serving`` also
works; ``repro serve-bench`` is the dedicated front door that adds SLO
declaration and the serving-specific knobs.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.mf.model import MFModel
from repro.obs.bench import (
    BenchConfig,
    MetricResult,
    _elapsed,
    kernel_workload,
    make_document,
    register_suite,
)
from repro.serving.loadgen import SLO, LoadGenConfig, LoadReport, run_loadgen
from repro.serving.scorer import Scorer, SeenIndex
from repro.serving.store import ModelStore


@dataclass(frozen=True)
class ServingBenchConfig:
    """Serving-specific workload knobs layered over :class:`BenchConfig`."""

    requests: int = 300
    batch_size: int = 16
    topk: int = 10
    mode: str = "closed"
    concurrency: int = 2
    rate_qps: float = 500.0

    def __post_init__(self) -> None:
        for field_name in ("requests", "batch_size", "topk", "concurrency"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @classmethod
    def from_bench(cls, config: BenchConfig) -> "ServingBenchConfig":
        """Scale the serving workload to the bench preset (quick = smoke)."""
        if config.quick:
            return cls(requests=60, batch_size=8, concurrency=2)
        return cls()

    def loadgen(self, seed: int) -> LoadGenConfig:
        return LoadGenConfig(
            requests=self.requests,
            batch_size=self.batch_size,
            k=self.topk,
            mode=self.mode,
            concurrency=self.concurrency,
            rate_qps=self.rate_qps,
            seed=seed,
        )


def _build_serving_fixture(config: BenchConfig, tmpdir: str):
    """The pinned serving workload: model + checkpoint + seen index."""
    from repro.core.checkpoint import Checkpoint, save_checkpoint

    ratings = kernel_workload(config.nnz, config.seed)
    model = MFModel.init_for(ratings, config.k, seed=config.seed)
    path = os.path.join(tmpdir, "serving-ckpt")
    save_checkpoint(Checkpoint(model=model, epoch=1), path)
    store = ModelStore(path)
    return ratings, store, path


def serving_metrics(
    config: BenchConfig,
    serving: ServingBenchConfig | None = None,
) -> list[MetricResult]:
    """The registered ``serving`` suite section."""
    serving = serving if serving is not None else ServingBenchConfig.from_bench(config)
    reports, fp16_reports, swap_times = _measure(config, serving)

    meta = {
        "requests": serving.requests,
        "batch_size": serving.batch_size,
        "topk": serving.topk,
        "mode": serving.mode,
        "concurrency": serving.concurrency,
        "nnz": config.nnz,
        "k": config.k,
        "exclude": "seen",
    }
    out = [
        MetricResult(
            name="serving/topk/p50_ms", unit="ms", kind="time",
            repeats=tuple(r.p50_ms for r in reports), meta=dict(meta),
        ),
        MetricResult(
            name="serving/topk/p99_ms", unit="ms", kind="time",
            repeats=tuple(r.p99_ms for r in reports), meta=dict(meta),
        ),
        MetricResult(
            name="serving/topk/qps", unit="req/s", kind="throughput",
            repeats=tuple(r.qps for r in reports), meta=dict(meta),
        ),
        MetricResult(
            name="serving/topk[fp16]/p50_ms", unit="ms", kind="time",
            repeats=tuple(r.p50_ms for r in fp16_reports),
            meta=dict(meta, precision="fp16"),
        ),
        MetricResult(
            name="serving/topk[fp16]/qps", unit="req/s", kind="throughput",
            repeats=tuple(r.qps for r in fp16_reports),
            meta=dict(meta, precision="fp16"),
        ),
        MetricResult(
            name="serving/swap/seconds", unit="s", kind="time",
            repeats=tuple(swap_times),
            meta={"nnz": config.nnz, "k": config.k},
        ),
    ]
    return out


def _measure(config: BenchConfig, serving: ServingBenchConfig):
    reports: list[LoadReport] = []
    fp16_reports: list[LoadReport] = []
    swap_times: list[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmpdir:
        ratings, store, path = _build_serving_fixture(config, tmpdir)
        seen = SeenIndex.from_ratings(ratings)
        scorer = Scorer(store)
        fp16_scorer = Scorer(store, precision="fp16")
        for rep in range(config.repeats):
            lg = serving.loadgen(config.seed + rep)
            reports.append(run_loadgen(scorer, lg, exclude=seen))
            fp16_reports.append(run_loadgen(fp16_scorer, lg, exclude=seen))
            swap_times.append(_elapsed(lambda: store.swap(path)))
    return reports, fp16_reports, swap_times


register_suite("serving", serving_metrics)


def slo_block(slo: SLO, metrics: list[MetricResult]) -> dict:
    """The document's ``slo`` object: targets, measured means, verdicts."""
    by_name = {m.name: m for m in metrics}
    measured = {
        "p50_ms": by_name["serving/topk/p50_ms"].mean,
        "p99_ms": by_name["serving/topk/p99_ms"].mean,
        "qps": by_name["serving/topk/qps"].mean,
    }
    violations = slo.violations(
        measured["p50_ms"], measured["p99_ms"], measured["qps"]
    )
    return {
        "targets": slo.to_dict(),
        "measured": measured,
        "ok": not violations,
        "violations": violations,
    }


def run_serving_suite(
    config: BenchConfig | None = None,
    serving: ServingBenchConfig | None = None,
    slo: SLO | None = None,
    log=None,
) -> dict:
    """Run the serving suite and return a ``suite="serving"`` document."""
    config = config if config is not None else BenchConfig()
    serving = serving if serving is not None else ServingBenchConfig.from_bench(config)
    if log is not None:
        log(f"suite serving: {serving.mode} x {serving.requests} requests "
            f"({config.repeats} repeat(s))")
    metrics = serving_metrics(config, serving)
    doc = make_document(metrics, config, suite="serving")
    if slo is not None and slo.declared:
        doc["slo"] = slo_block(slo, metrics)
    return doc
