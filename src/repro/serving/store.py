"""Snapshot store: load checkpoints, hot-swap them under live traffic.

The serving plane reads models that the training plane keeps
overwriting (Joshi et al.'s asynchronous parameter exchange, PAPERS.md:
parameters update *underneath* consumers without a global pause).  The
contract here is the read-side half of that design:

* a reader always sees one **consistent** ``(P, Q, version)`` triple —
  an immutable :class:`ModelSnapshot` grabbed in a single reference
  read, never a P from one checkpoint paired with a Q from another;
* a failed swap (missing path, torn/corrupt file, wrong format
  version) **degrades to the last good snapshot** and increments the
  ``serving_swap_failed`` counter — traffic keeps being answered from
  the model that was already serving, and the failure is observable
  instead of fatal;
* writers (swap calls) serialize on a lock; readers take no lock at
  all — publishing a snapshot is one reference assignment, which is
  atomic under the CPython memory model.

Checkpoint bytes come from :mod:`repro.core.checkpoint` (the training
plane's crash-atomic NPZ + JSON pair); factors are loaded read-only so
no reader can tear a snapshot that other threads are scoring against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.checkpoint import CheckpointVersionError, load_checkpoint
from repro.core.compression import compress_fp16, decompress_fp16
from repro.obs.registry import MetricsRegistry


class ServingError(RuntimeError):
    """The serving plane cannot answer (e.g. no snapshot ever loaded)."""


#: swap-failure classification, the ``reason`` label on
#: ``serving_swap_failed`` (docs/serving.md lists what each covers)
SWAP_FAILURE_REASONS = ("missing", "version-mismatch", "corrupt")


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable served model: the consistent ``(P, Q, version)`` triple.

    ``version`` is assigned by the owning :class:`ModelStore` and
    increases by one per successful swap, so every response can name
    exactly which model produced it.  The factor matrices are frozen
    (``writeable=False``); :meth:`quantized` derives the FP16-wire view
    lazily and caches it on the snapshot.
    """

    P: np.ndarray
    Q: np.ndarray
    version: int
    epoch: int
    path: str
    config: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.P.ndim != 2 or self.Q.ndim != 2 or self.P.shape[1] != self.Q.shape[0]:
            raise ValueError(
                f"inconsistent factors: P is {self.P.shape}, Q is {self.Q.shape}"
            )
        if self.version < 1:
            raise ValueError("snapshot version starts at 1")

    @property
    def m(self) -> int:
        return self.P.shape[0]

    @property
    def n(self) -> int:
        return self.Q.shape[1]

    @property
    def k(self) -> int:
        return self.P.shape[1]

    def quantized(self) -> tuple[np.ndarray, np.ndarray]:
        """The FP16-precision factors: wire-codec semantics, FP32 compute.

        Values are rounded through IEEE binary16 exactly as the FP16
        wire channel would transmit them (clamp to the finite range,
        round to nearest half-precision), then held as FP32 so the
        scoring matmul accumulates at full precision — the same
        FP32-compute / FP16-precision split as training Strategy 2.
        Computed once per snapshot and cached; the cached arrays are
        frozen like the originals.
        """
        cached = getattr(self, "_quantized", None)
        if cached is None:
            cached = (
                decompress_fp16(compress_fp16(self.P)),
                decompress_fp16(compress_fp16(self.Q)),
            )
            for arr in cached:
                arr.flags.writeable = False
            # idempotent publish: racing threads compute equal pairs,
            # and the dataclass is frozen so this is the one mutation
            object.__setattr__(self, "_quantized", cached)
        return cached


@dataclass(frozen=True)
class SwapResult:
    """What one :meth:`ModelStore.swap` call did."""

    ok: bool
    version: int            # the version now serving (unchanged on failure)
    path: str
    reason: str | None = None   # one of SWAP_FAILURE_REASONS on failure
    error: str | None = None


def _classify_failure(exc: Exception) -> str:
    if isinstance(exc, FileNotFoundError):
        return "missing"
    if isinstance(exc, CheckpointVersionError):
        return "version-mismatch"
    return "corrupt"


class ModelStore:
    """Loads checkpoints and atomically publishes them to readers.

    One store serves one model lineage.  ``snapshot()`` is the entire
    read-side API: it returns the current :class:`ModelSnapshot`, and
    everything a request touches must come from that one object (the
    :class:`~repro.serving.scorer.Scorer` grabs it exactly once per
    batch).  ``swap(path)`` is the write side; it never raises for a
    bad checkpoint — it reports, counts, and keeps serving.
    """

    def __init__(self, path: str | None = None, *,
                 registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._snapshot: ModelSnapshot | None = None
        if path is not None:
            self.load(path)

    # -- read side -------------------------------------------------------
    def snapshot(self) -> ModelSnapshot:
        """The current snapshot: one reference read, no lock."""
        snap = self._snapshot
        if snap is None:
            raise ServingError("no model loaded: call load() before serving")
        return snap

    @property
    def version(self) -> int:
        """Version of the serving snapshot (0 before the first load)."""
        snap = self._snapshot
        return 0 if snap is None else snap.version

    # -- write side ------------------------------------------------------
    def load(self, path: str) -> ModelSnapshot:
        """First load (or a must-succeed swap): raises on failure."""
        result = self.swap(path)
        if not result.ok:
            raise ServingError(
                f"cannot load checkpoint {path} ({result.reason}): {result.error}"
            )
        return self.snapshot()

    def swap(self, path: str) -> SwapResult:
        """Atomically publish the checkpoint at ``path``.

        On any failure the last good snapshot keeps serving, the
        ``serving_swap_failed`` counter gains a classified increment,
        and the result says what went wrong — a swap is never allowed
        to take the service down.
        """
        try:
            ckpt = load_checkpoint(path, readonly=True)
        except Exception as exc:
            reason = _classify_failure(exc)
            self.registry.counter(
                "serving_swap_failed",
                help="hot-swaps rejected; last good snapshot kept serving",
            ).inc(reason=reason)
            self.registry.event(
                "serving_swap", ok=False, path=str(path),
                reason=reason, error=str(exc), version=self.version,
            )
            return SwapResult(ok=False, version=self.version, path=str(path),
                              reason=reason, error=str(exc))
        with self._lock:
            snap = ModelSnapshot(
                P=ckpt.model.P,
                Q=ckpt.model.Q,
                version=self.version + 1,
                epoch=ckpt.epoch,
                path=str(path),
                config=dict(ckpt.config),
            )
            self._snapshot = snap
        self.registry.counter(
            "serving_swap_total", help="successful snapshot hot-swaps",
        ).inc()
        self.registry.event(
            "serving_swap", ok=True, path=str(path),
            version=snap.version, epoch=snap.epoch,
        )
        return SwapResult(ok=True, version=snap.version, path=str(path))

    def swap_failures(self) -> float:
        """Total ``serving_swap_failed`` count across reasons (0 if none)."""
        if "serving_swap_failed" not in self.registry:
            return 0.0
        counter = self.registry.get("serving_swap_failed")
        return sum(s.value for s in counter.samples())
