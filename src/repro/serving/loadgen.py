"""Closed-loop / Poisson load generator with SLO verdicts.

The NVIDIA NCF exemplar (SNIPPETS.md) treats inference benchmarking as
a first-class deliverable next to training; this module is that for the
serving plane.  Two arrival modes:

* ``closed`` — N concurrent clients, each issuing its next request the
  moment the previous one returns (classic closed-loop: measures the
  service's sustainable throughput at a fixed concurrency);
* ``poisson`` — a single paced client whose inter-arrival gaps are
  exponentially distributed at ``rate_qps`` (an open-loop approximation
  that exercises the latency distribution under randomized spacing;
  a response slower than the next arrival delays it, so it degrades
  gracefully toward closed behaviour at saturation).

Every request's latency is measured with ``time.perf_counter`` (HCC110:
one monotonic time base for all timing code) and summarized as p50/p99
milliseconds and QPS.  An :class:`SLO` declares targets; the report's
:meth:`~LoadReport.check_slo` turns measurements into named violations
so the CLI and CI can gate on them.

The clock and sleep functions are injectable (the unit tests drive a
fake clock for deterministic percentile math); production callers use
the defaults.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.serving.scorer import Scorer, SeenIndex

#: arrival modes run_loadgen accepts
MODES = ("closed", "poisson")


@dataclass(frozen=True)
class SLO:
    """Declared service-level objectives; ``None`` targets are unchecked."""

    p50_ms: float | None = None
    p99_ms: float | None = None
    min_qps: float | None = None

    @property
    def declared(self) -> bool:
        return any(v is not None for v in (self.p50_ms, self.p99_ms, self.min_qps))

    def to_dict(self) -> dict:
        return {"p50_ms": self.p50_ms, "p99_ms": self.p99_ms,
                "min_qps": self.min_qps}

    def violations(self, p50_ms: float, p99_ms: float, qps: float) -> list[str]:
        """Named violations for one set of measurements (empty = all met)."""
        out: list[str] = []
        if self.p50_ms is not None and p50_ms > self.p50_ms:
            out.append(f"p50 {p50_ms:.3f}ms exceeds SLO {self.p50_ms:g}ms")
        if self.p99_ms is not None and p99_ms > self.p99_ms:
            out.append(f"p99 {p99_ms:.3f}ms exceeds SLO {self.p99_ms:g}ms")
        if self.min_qps is not None and qps < self.min_qps:
            out.append(
                f"throughput {qps:,.1f} qps below SLO {self.min_qps:g} qps"
            )
        return out


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation run's knobs."""

    requests: int = 200
    batch_size: int = 8
    k: int = 10
    mode: str = "closed"
    concurrency: int = 2        # closed mode: concurrent clients
    rate_qps: float = 500.0     # poisson mode: mean arrival rate
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        for field_name in ("requests", "batch_size", "k", "concurrency"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")


@dataclass(frozen=True)
class LoadReport:
    """Measured latency/throughput for one run, plus SLO checking."""

    mode: str
    requests: int
    batch_size: int
    k: int
    concurrency: int
    latencies_ms: tuple[float, ...]
    elapsed_s: float
    versions: tuple[int, ...]   # distinct snapshot versions that served

    @property
    def p50_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 50))

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 99))

    @property
    def qps(self) -> float:
        return self.requests / max(self.elapsed_s, 1e-9)

    def check_slo(self, slo: SLO) -> list[str]:
        """Human-readable violations; empty means every target held."""
        return slo.violations(self.p50_ms, self.p99_ms, self.qps)

    def render(self, slo: SLO | None = None) -> str:
        lines = [
            f"loadgen[{self.mode}]: {self.requests} requests x batch "
            f"{self.batch_size} x top-{self.k} "
            f"({self.concurrency} client(s))",
            f"  latency: p50 {self.p50_ms:.3f}ms  p99 {self.p99_ms:.3f}ms",
            f"  throughput: {self.qps:,.1f} qps over {self.elapsed_s:.3f}s",
            f"  snapshots seen: {len(self.versions)} "
            f"(v{min(self.versions)}..v{max(self.versions)})"
            if self.versions else "  snapshots seen: 0",
        ]
        if slo is not None and slo.declared:
            violations = self.check_slo(slo)
            if violations:
                lines.extend(f"  SLO VIOLATED: {v}" for v in violations)
            else:
                lines.append("  SLO: all declared targets met")
        return "\n".join(lines)


def run_loadgen(
    scorer: Scorer,
    config: LoadGenConfig,
    *,
    exclude: SeenIndex | None = None,
    clock: Callable[[], float] = time.perf_counter,
    sleep: Callable[[float], None] = time.sleep,
) -> LoadReport:
    """Drive ``scorer`` with the configured arrival process and measure it."""
    snap = scorer.store.snapshot()
    user_space = snap.m
    if config.mode == "closed":
        lat, versions, elapsed = _run_closed(
            scorer, config, user_space, exclude, clock
        )
    else:
        lat, versions, elapsed = _run_poisson(
            scorer, config, user_space, exclude, clock, sleep
        )
    return LoadReport(
        mode=config.mode,
        requests=len(lat),
        batch_size=config.batch_size,
        k=config.k,
        concurrency=config.concurrency if config.mode == "closed" else 1,
        latencies_ms=tuple(lat),
        elapsed_s=elapsed,
        versions=tuple(sorted(set(versions))),
    )


def _one_request(scorer, rng, config, user_space, exclude, clock):
    users = rng.integers(0, user_space, size=config.batch_size)
    t0 = clock()
    result = scorer.top_k(users, config.k, exclude=exclude)
    return (clock() - t0) * 1e3, result.version


def _run_closed(scorer, config, user_space, exclude, clock):
    """N clients, each back-to-back; a shared budget caps total requests."""
    budget = {"left": config.requests}
    budget_lock = threading.Lock()
    results: list[list[tuple[float, int]]] = [
        [] for _ in range(config.concurrency)
    ]
    errors: list[Exception] = []

    def client(slot: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            while True:
                with budget_lock:
                    if budget["left"] <= 0:
                        return
                    budget["left"] -= 1
                results[slot].append(_one_request(
                    scorer, rng, config, user_space, exclude, clock
                ))
        except Exception as exc:  # surfaced to the caller below
            errors.append(exc)

    seeds = np.random.SeedSequence(config.seed).spawn(config.concurrency)
    threads = [
        threading.Thread(target=client, args=(i, int(s.generate_state(1)[0])),
                         daemon=True)
        for i, s in enumerate(seeds)
    ]
    t0 = clock()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    elapsed = max(clock() - t0, 1e-9)
    if errors:
        raise errors[0]
    flat = [rec for slot in results for rec in slot]
    return [d for d, _ in flat], [v for _, v in flat], elapsed


def _run_poisson(scorer, config, user_space, exclude, clock, sleep):
    """One paced client with exponential inter-arrival gaps."""
    rng = np.random.default_rng(config.seed)
    gaps = rng.exponential(1.0 / config.rate_qps, size=config.requests)
    lat: list[float] = []
    versions: list[int] = []
    t0 = clock()
    for gap in gaps:
        if gap > 0:
            sleep(float(gap))
        d, v = _one_request(scorer, rng, config, user_space, exclude, clock)
        lat.append(d)
        versions.append(v)
    elapsed = max(clock() - t0, 1e-9)
    return lat, versions, elapsed
