"""Unit tests for the time-cost model (Eq. 1-5)."""

import pytest

from repro.core.config import (
    CommBackendKind,
    CommConfig,
    HCCConfig,
    PartitionStrategy,
    TransmitMode,
)
from repro.core.cost_model import Regime, TimeCostModel
from repro.data.datasets import MOVIELENS_20M, NETFLIX, YAHOO_R1
from repro.hardware.topology import paper_workstation


@pytest.fixture
def model():
    return TimeCostModel(paper_workstation(16), NETFLIX, k=128)


@pytest.fixture
def fractions(model):
    return model.derive_partition(PartitionStrategy.DP1).fractions


class TestPrimitives:
    def test_independent_time_matches_table4(self, model):
        gpu = [w for w in model.platform.workers if w.name == "2080S#gpu0"][0]
        t = model.independent_time(gpu)
        assert t == pytest.approx(NETFLIX.nnz / 1_052_866_849, rel=1e-6)

    def test_compute_time_linear_in_fraction(self, model):
        w = model.platform.workers[1]
        t_half = model.compute_time(w, 0.5)
        t_quarter = model.compute_time(w, 0.25)
        assert t_half == pytest.approx(2 * t_quarter, rel=0.05)

    def test_compute_time_zero(self, model):
        assert model.compute_time(model.platform.workers[0], 0.0) == 0.0

    def test_compute_time_range_checked(self, model):
        with pytest.raises(ValueError):
            model.compute_time(model.platform.workers[0], 1.5)

    def test_pull_equals_push(self, model):
        """Eq. 2's premise: pull and push cost the same."""
        for w in model.platform.workers:
            assert model.pull_time(w) == pytest.approx(model.push_time(w))

    def test_sync_time_eq3(self, model):
        """T_sync per worker = 3 * 4 bytes * k * n / B_server (Q-only)."""
        expected = 3 * 4 * 128 * NETFLIX.n / (67.30 * 1e9)
        assert model.sync_time() == pytest.approx(expected, rel=1e-3)

    def test_sync_larger_under_pq(self):
        q = TimeCostModel(paper_workstation(16), NETFLIX, 128, CommConfig())
        pq = TimeCostModel(
            paper_workstation(16), NETFLIX, 128,
            CommConfig(transmit=TransmitMode.P_AND_Q),
        )
        assert pq.sync_time() > q.sync_time()


class TestEpochCost:
    def test_total_is_max_plus_exposed(self, model, fractions):
        cost = model.epoch_cost(fractions)
        assert cost.total == pytest.approx(cost.max_worker_time + cost.exposed_sync)

    def test_worker_count_checked(self, model):
        with pytest.raises(ValueError):
            model.epoch_cost([0.5, 0.5])

    def test_serial_time_decomposition(self, model, fractions):
        cost = model.epoch_cost(fractions, streams=1)
        for wc in cost.workers:
            assert wc.epoch_time == pytest.approx(wc.serial_time)
            assert wc.serial_time == pytest.approx(wc.pull + wc.compute + wc.push)

    def test_streams_shrink_epoch(self):
        m = TimeCostModel(paper_workstation(16), YAHOO_R1, k=128)
        fr = m.derive_partition(PartitionStrategy.DP1).fractions
        t1 = m.epoch_cost(fr, streams=1).total
        t4 = m.epoch_cost(fr, streams=4).total
        assert t4 < t1

    def test_spans_cover_phases(self, model, fractions):
        cost = model.epoch_cost(fractions)
        spans = cost.spans()
        assert len(spans) == 3 * len(cost.workers)  # pull, compute, push each

    def test_netflix_is_compute_bound(self, model, fractions):
        assert model.epoch_cost(fractions).regime is Regime.COMPUTE_BOUND

    def test_r1_is_sync_bound(self):
        m = TimeCostModel(paper_workstation(16), YAHOO_R1, k=128)
        fr = m.derive_partition(PartitionStrategy.DP1).fractions
        assert m.epoch_cost(fr).regime is Regime.SYNC_BOUND

    def test_workers_override_prices_a_subset(self, model, fractions):
        survivors = list(model.platform.workers[1:])
        dead_fraction = fractions[0]
        scaled = [f / (1 - dead_fraction) for f in fractions[1:]]
        cost = model.epoch_cost(scaled, workers=survivors)
        assert len(cost.workers) == len(survivors)
        assert [wc.name for wc in cost.workers] == [w.name for w in survivors]

    def test_workers_override_length_checked(self, model, fractions):
        with pytest.raises(ValueError):
            model.epoch_cost(fractions, workers=list(model.platform.workers[:2]))


class TestDegradedEpochCost:
    def test_survivors_get_renormalized_fractions(self, model, fractions):
        cost = model.degraded_epoch_cost(fractions, dead_ranks={0})
        assert len(cost.workers) == model.platform.n_workers - 1
        # each survivor's share grew by 1/(1 - x_dead), so the slowest
        # survivor must not get cheaper than its healthy-epoch self
        healthy = model.epoch_cost(fractions)
        by_name = {wc.name: wc for wc in healthy.workers}
        for wc in cost.workers:
            assert wc.compute >= by_name[wc.name].compute

    def test_monotone_in_compute_bound_regime(self, model, fractions):
        """Killing a worker never makes a compute-bound epoch cheaper:
        the survivors shoulder strictly more work at the same rates.
        (Sync-bound cases can legitimately get cheaper — fewer merges.)"""
        healthy = model.epoch_cost(fractions)
        assert healthy.regime is Regime.COMPUTE_BOUND
        for dead in range(model.platform.n_workers):
            degraded = model.degraded_epoch_cost(fractions, dead_ranks={dead})
            assert degraded.total >= healthy.total - 1e-12

    def test_more_deaths_cost_at_least_as_much(self, model, fractions):
        one = model.degraded_epoch_cost(fractions, dead_ranks={0})
        two = model.degraded_epoch_cost(fractions, dead_ranks={0, 1})
        assert two.total >= one.total - 1e-12

    def test_fraction_length_checked(self, model):
        with pytest.raises(ValueError):
            model.degraded_epoch_cost([0.5, 0.5], dead_ranks={0})

    def test_all_dead_rejected(self, model, fractions):
        with pytest.raises(ValueError):
            model.degraded_epoch_cost(
                fractions, dead_ranks=set(range(model.platform.n_workers))
            )


class TestCommComputeRatio:
    def test_movielens_flagged(self):
        """Section 3.4/4.6: MovieLens' comm rivals its compute."""
        m = TimeCostModel(paper_workstation(16), MOVIELENS_20M, k=128)
        w = m.platform.workers[-1]  # a GPU
        assert m.comm_compute_ratio(w, 0.4) > 0.2

    def test_netflix_negligible(self, model):
        gpu = model.platform.workers[-1]
        assert model.comm_compute_ratio(gpu, 0.4) < 0.1

    def test_zero_fraction_infinite(self, model):
        assert model.comm_compute_ratio(model.platform.workers[0], 0.0) == float("inf")


class TestDerivePartition:
    def test_even(self, model):
        plan = model.derive_partition(PartitionStrategy.EVEN)
        assert plan.strategy == "even"
        assert len(set(plan.fractions)) == 1

    def test_dp0_reports_runtime_imbalance(self, model):
        plan = model.derive_partition(PartitionStrategy.DP0)
        assert plan.imbalance() > 0.05  # the co-run bias DP1 fixes

    def test_dp1_balances(self, model):
        plan = model.derive_partition(PartitionStrategy.DP1)
        assert plan.imbalance() <= 0.1 + 1e-9

    def test_dp1_beats_dp0(self, model):
        t0 = model.epoch_cost(model.derive_partition(PartitionStrategy.DP0).fractions).total
        t1 = model.epoch_cost(model.derive_partition(PartitionStrategy.DP1).fractions).total
        assert t1 < t0

    def test_auto_picks_dp1_on_netflix(self, model):
        assert model.derive_partition(PartitionStrategy.AUTO).strategy == "dp1"

    def test_auto_picks_dp2_on_r1(self):
        m = TimeCostModel(paper_workstation(16), YAHOO_R1, k=128)
        assert m.derive_partition(PartitionStrategy.AUTO).strategy == "dp2"

    def test_dp2_on_r1_beats_dp1(self):
        m = TimeCostModel(paper_workstation(16), YAHOO_R1, k=128)
        t1 = m.epoch_cost(m.derive_partition(PartitionStrategy.DP1).fractions).total
        t2 = m.epoch_cost(m.derive_partition(PartitionStrategy.DP2).fractions).total
        assert t2 < t1

    def test_gpus_get_most_data(self, model):
        plan = model.derive_partition(PartitionStrategy.DP1)
        by_name = dict(zip([w.name for w in model.platform.workers], plan.fractions))
        assert by_name["2080S#gpu0"] > by_name["6242-24T#cpu1"]
        assert by_name["2080#gpu1"] > by_name["6242#cpu0w"]


class TestBackendEffect:
    def test_comm_p_inflates_epoch(self):
        fast = TimeCostModel(paper_workstation(16), NETFLIX, 128,
                             CommConfig(backend=CommBackendKind.COMM))
        slow = TimeCostModel(paper_workstation(16), NETFLIX, 128,
                             CommConfig(backend=CommBackendKind.COMM_P))
        fr = fast.derive_partition(PartitionStrategy.DP1).fractions
        assert slow.epoch_cost(fr).total > fast.epoch_cost(fr).total


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            TimeCostModel(paper_workstation(16), NETFLIX, k=0)

    def test_bad_lambda(self):
        with pytest.raises(ValueError):
            TimeCostModel(paper_workstation(16), NETFLIX, lambda_threshold=0)
