"""Unit tests for physical-channel contention (the Figure 2 caveat)."""

import pytest

from repro.core.config import HCCConfig, PartitionStrategy
from repro.core.cost_model import TimeCostModel
from repro.core.framework import HCCMF
from repro.data.datasets import MOVIELENS_20M, NETFLIX
from repro.experiments.whatif import gpu_pool, sweep_channel_contention
from repro.hardware.processor import Processor
from repro.hardware.specs import PCIE3_X16, RTX_2080, RTX_2080S, XEON_6242
from repro.hardware.topology import Platform, paper_workstation


def _two_gpus(shared: bool) -> Platform:
    plat = Platform(server=Processor(XEON_6242, instance="s"))
    ch = "slot" if shared else None
    plat.add_worker(Processor(RTX_2080S, instance="a"), PCIE3_X16, channel=ch)
    plat.add_worker(Processor(RTX_2080, instance="b"), PCIE3_X16, channel=ch)
    return plat


class TestChannelAccounting:
    def test_exclusive_by_default(self):
        plat = paper_workstation(16)
        for w in plat.workers:
            assert plat.channel_sharing(w) == 1
            assert plat.channel_of(w) is None

    def test_shared_counts(self):
        plat = _two_gpus(shared=True)
        for w in plat.workers:
            assert plat.channel_sharing(w) == 2
            assert plat.channel_of(w) == "slot"

    def test_mixed_channels(self):
        plat = Platform(server=Processor(XEON_6242, instance="s"))
        plat.add_worker(Processor(RTX_2080S, instance="a"), PCIE3_X16, channel="x")
        plat.add_worker(Processor(RTX_2080, instance="b"), PCIE3_X16)
        assert plat.channel_sharing("2080S#a") == 1  # alone on "x"
        assert plat.channel_sharing("2080#b") == 1

    def test_unknown_worker(self):
        plat = paper_workstation(16)
        with pytest.raises(KeyError):
            plat.channel_sharing("ghost")


class TestContentionCost:
    def test_shared_link_doubles_transfer_time(self):
        excl = TimeCostModel(_two_gpus(False), NETFLIX, 128)
        shared = TimeCostModel(_two_gpus(True), NETFLIX, 128)
        w_e = excl.platform.workers[0]
        w_s = shared.platform.workers[0]
        # latency aside, double the effective bytes
        assert shared.pull_time(w_s) > 1.9 * excl.pull_time(w_e)

    def test_contention_hurts_comm_bound_data_most(self):
        def epoch(shared, spec):
            m = TimeCostModel(_two_gpus(shared), spec, 128)
            plan = m.derive_partition(PartitionStrategy.DP1)
            return m.epoch_cost(plan.fractions).total

        ml_penalty = epoch(True, MOVIELENS_20M) / epoch(False, MOVIELENS_20M)
        netflix_penalty = epoch(True, NETFLIX) / epoch(False, NETFLIX)
        assert ml_penalty > netflix_penalty
        assert ml_penalty > 1.2

    def test_streams_filter_preserves_channels(self):
        from repro.core.config import CommConfig

        plat = paper_workstation(16)
        hcc = HCCMF(plat, NETFLIX, HCCConfig(k=128, comm=CommConfig(streams=4)))
        for w in hcc.platform.workers:
            assert hcc.platform.channel_of(w) == plat.channel_of(w)


class TestContentionSweep:
    def test_shared_link_breaks_scaling(self):
        rows = {r.label: r for r in sweep_channel_contention(MOVIELENS_20M, max_gpus=3)}
        excl3 = rows["3x 2080S, exclusive slots"].total_time
        shared3 = rows["3x 2080S, shared link"].total_time
        shared1 = rows["1x 2080S, shared link"].total_time
        assert shared3 > excl3
        # with the shared link, 3 GPUs are barely (or not) better than 1
        assert shared3 > 0.9 * shared1

    def test_single_gpu_unaffected(self):
        rows = {r.label: r for r in sweep_channel_contention(MOVIELENS_20M, max_gpus=2)}
        assert rows["1x 2080S, shared link"].total_time == pytest.approx(
            rows["1x 2080S, exclusive slots"].total_time
        )

    def test_gpu_pool_flag(self):
        plat = gpu_pool("2080S", 3, shared_channel=True)
        assert all(plat.channel_sharing(w) == 3 for w in plat.workers)
