"""Unit tests for the channel middlewares (repro.engine.channels)."""

import numpy as np
import pytest

from repro.core.comm import CommPlan
from repro.core.config import CommConfig, TransmitMode
from repro.data.datasets import NETFLIX
from repro.engine.channels import (
    Channel,
    DoubleBufferChannel,
    Fp16Channel,
    QOnlyChannel,
    QRotateChannel,
    WireTraffic,
    channel_for,
)

M, N, K = 120, 40, 8


class TestWireTraffic:
    def test_rejects_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            WireTraffic(-1, 0, 0, 0)

    def test_frozen(self):
        t = WireTraffic(1, 2, 3, 4)
        with pytest.raises(AttributeError):
            t.pull_values = 9


class TestTrafficAccounting:
    def test_base_channel_moves_both_matrices(self):
        t = Channel().traffic(M, N, K)
        assert t.pull_values == t.push_values == K * (M + N)
        assert t.final_push_values == 0
        assert t.sync_values == K * (M + N)

    def test_q_only_strategy1(self):
        t = QOnlyChannel().traffic(M, N, K)
        assert t.pull_values == t.push_values == K * N
        assert t.final_push_values == K * M  # P, once after training
        assert t.sync_values == K * N

    def test_q_rotate_has_no_server_sync(self):
        t = QRotateChannel().traffic(M, N, K)
        assert t.sync_values == 0
        assert t.final_push_values == K * (M + N)

    def test_wrappers_delegate_traffic_inward(self):
        assert Fp16Channel(QOnlyChannel()).traffic(M, N, K) == QOnlyChannel().traffic(M, N, K)
        assert DoubleBufferChannel(QOnlyChannel()).traffic(M, N, K) == QOnlyChannel().traffic(M, N, K)

    def test_fp16_halves_bytes_not_values(self):
        fp32 = QOnlyChannel()
        fp16 = Fp16Channel(QOnlyChannel())
        assert fp16.traffic(M, N, K) == fp32.traffic(M, N, K)
        assert fp16.wire_itemsize == fp32.wire_itemsize // 2


class TestWireFormat:
    def test_base_is_fp32(self):
        ch = Channel()
        assert ch.wire_dtype == "float32"
        assert not ch.wire_is_fp16

    def test_fp16_wrapper_changes_wire_dtype_only(self):
        ch = Fp16Channel(QOnlyChannel())
        assert ch.wire_dtype == "float16"
        assert ch.wire_is_fp16
        assert not ch.transmits_p  # payload selection still delegates inward

    def test_fp32_codec_roundtrip_exact(self):
        ch = QOnlyChannel()
        values = np.random.default_rng(0).standard_normal((N, K)).astype(np.float32)
        wire = np.zeros_like(values, dtype=ch.wire_dtype)
        ch.encode(values, wire)
        out = ch.decode(wire)
        np.testing.assert_array_equal(out, values)
        assert out.dtype == np.float32
        assert out is not wire  # decode is the receiver's own copy

    def test_fp16_codec_roundtrip_within_half_precision(self):
        ch = Fp16Channel(QOnlyChannel())
        values = np.random.default_rng(1).standard_normal((N, K)).astype(np.float32)
        wire = np.zeros(values.shape, dtype=ch.wire_dtype)
        ch.encode(values, wire)
        out = ch.decode(wire)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, values, rtol=2e-3, atol=1e-4)


class TestStacking:
    def test_depth_and_streams(self):
        assert Channel().depth == 1
        assert QOnlyChannel().depth == 1
        db = DoubleBufferChannel(QOnlyChannel(), streams=3)
        assert db.depth == 2
        assert db.streams == 3

    def test_double_buffer_needs_two_streams(self):
        with pytest.raises(ValueError, match="streams >= 2"):
            DoubleBufferChannel(QOnlyChannel(), streams=1)

    def test_describe_reads_outermost_first(self):
        stack = DoubleBufferChannel(Fp16Channel(QOnlyChannel()))
        assert stack.describe() == "double-buffer(fp16(q-only(full)))"

    def test_channels_are_picklable(self):
        import pickle

        stack = DoubleBufferChannel(Fp16Channel(QOnlyChannel()))
        clone = pickle.loads(pickle.dumps(stack))
        assert clone.describe() == stack.describe()
        assert clone.wire_dtype == stack.wire_dtype


class TestChannelFor:
    def test_q_only_default(self):
        ch = channel_for(CommConfig(), NETFLIX.m, NETFLIX.n)
        assert ch.describe() == "q-only(full)"

    def test_full_stack(self):
        comm = CommConfig(transmit=TransmitMode.Q_ONLY, fp16=True, streams=2)
        ch = channel_for(comm, NETFLIX.m, NETFLIX.n)
        assert ch.describe() == "double-buffer(fp16(q-only(full)))"
        assert ch.wire_is_fp16 and ch.depth == 2

    def test_pq_mode_is_bare_channel(self):
        ch = channel_for(CommConfig(transmit=TransmitMode.P_AND_Q), NETFLIX.m, NETFLIX.n)
        assert ch.transmits_p
        assert ch.describe() == "full"

    def test_equal_configs_produce_equal_stacks(self):
        a = channel_for(CommConfig(fp16=True), NETFLIX.m, NETFLIX.n)
        b = channel_for(CommConfig(fp16=True), NETFLIX.m, NETFLIX.n)
        assert a.describe() == b.describe()


class TestCommPlanBridge:
    """CommPlan.for_dataset delegates its byte math to the channel stack."""

    @pytest.mark.parametrize("transmit", [TransmitMode.P_AND_Q,
                                          TransmitMode.Q_ONLY,
                                          TransmitMode.Q_ROTATE])
    @pytest.mark.parametrize("fp16", [False, True])
    def test_bytes_match_closed_form(self, transmit, fp16):
        k = 16
        comm = CommConfig(transmit=transmit, fp16=fp16)
        plan = CommPlan.for_dataset(NETFLIX, k, comm)
        big, small = max(NETFLIX.m, NETFLIX.n), min(NETFLIX.m, NETFLIX.n)
        size = 2 if fp16 else 4
        if transmit is TransmitMode.P_AND_Q:
            assert plan.epoch_pull == k * (big + small) * size
            assert plan.final_push_extra == 0
        else:
            assert plan.epoch_pull == k * small * size
        if transmit is TransmitMode.Q_ONLY:
            assert plan.final_push_extra == k * big * size
            assert plan.sync_values == k * small
        if transmit is TransmitMode.Q_ROTATE:
            assert plan.sync_values == 0

    def test_comm_plan_equals_channel_comm_plan(self):
        comm = CommConfig(fp16=True)
        via_classmethod = CommPlan.for_dataset(NETFLIX, 32, comm)
        via_channel = channel_for(comm, NETFLIX.m, NETFLIX.n).comm_plan(NETFLIX, 32)
        assert via_classmethod == via_channel
