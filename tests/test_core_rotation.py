"""Cross-layer tests for the Q_ROTATE future-work mode."""

import numpy as np
import pytest

from repro.core.comm import CommPlan
from repro.core.config import CommConfig, HCCConfig, TransmitMode
from repro.core.cost_model import Regime, TimeCostModel
from repro.core.framework import HCCMF
from repro.core.worker import WorkerRuntime
from repro.data.datasets import MOVIELENS_20M, NETFLIX
from repro.data.grid import partition_rows
from repro.hardware.processor import Processor
from repro.hardware.specs import XEON_6242
from repro.hardware.topology import paper_workstation
from repro.mf.model import MFModel


class TestCommPlan:
    def test_no_sync_values(self):
        plan = CommPlan.for_dataset(
            MOVIELENS_20M, 128, CommConfig(transmit=TransmitMode.Q_ROTATE)
        )
        assert plan.sync_values == 0

    def test_gross_bytes_match_q_only(self):
        rotate = CommPlan.for_dataset(
            MOVIELENS_20M, 128, CommConfig(transmit=TransmitMode.Q_ROTATE)
        )
        q_only = CommPlan.for_dataset(
            MOVIELENS_20M, 128, CommConfig(transmit=TransmitMode.Q_ONLY)
        )
        assert rotate.epoch_pull == q_only.epoch_pull

    def test_final_gather_includes_q(self):
        rotate = CommPlan.for_dataset(
            MOVIELENS_20M, 128, CommConfig(transmit=TransmitMode.Q_ROTATE)
        )
        q_only = CommPlan.for_dataset(
            MOVIELENS_20M, 128, CommConfig(transmit=TransmitMode.Q_ONLY)
        )
        assert rotate.final_push_extra > q_only.final_push_extra


class TestCostModel:
    def test_rotation_is_compute_bound(self):
        m = TimeCostModel(
            paper_workstation(16), MOVIELENS_20M, 128,
            CommConfig(transmit=TransmitMode.Q_ROTATE),
        )
        assert m.sync_time() == 0.0
        from repro.core.config import PartitionStrategy

        plan = m.derive_partition(PartitionStrategy.AUTO)
        cost = m.epoch_cost(plan.fractions)
        assert cost.regime is Regime.COMPUTE_BOUND
        assert cost.exposed_sync == 0.0

    def test_rotation_chunks_transfers(self):
        m = TimeCostModel(
            paper_workstation(16), MOVIELENS_20M, 128,
            CommConfig(transmit=TransmitMode.Q_ROTATE),
        )
        from repro.core.config import PartitionStrategy
        from repro.hardware.timeline import Phase

        plan = m.derive_partition(PartitionStrategy.DP1)
        cost = m.epoch_cost(plan.fractions)
        gpu = cost.workers[-1]
        pulls = [s for s in gpu.spans if s.phase is Phase.PULL]
        assert len(pulls) == m.platform.n_workers  # one hop per rotation step


class TestWorkerRotation:
    @pytest.fixture
    def setup(self, small_ratings):
        data = small_ratings.shuffle(0)
        assignment = partition_rows(data, [0.6, 0.4])[0]
        rt = WorkerRuntime(0, Processor(XEON_6242), assignment, data, seed=0)
        model = MFModel.init_for(data, 8, seed=0)
        return rt, model, data

    def test_blocks_partition_shard(self, setup):
        rt, _, data = setup
        edges = np.linspace(0, data.n, 4).astype(np.int64)
        rt.prepare_column_blocks(edges)
        total = sum(len(ix) for ix in rt._block_entries)
        assert total == rt.nnz

    def test_step_only_touches_owned_columns(self, setup):
        rt, model, data = setup
        edges = np.linspace(0, data.n, 4).astype(np.int64)
        rt.prepare_column_blocks(edges)
        q_before = model.Q.copy()
        rt.run_rotation_step(model, 1, lr=0.01, reg=0.01)
        changed = np.flatnonzero(np.any(model.Q != q_before, axis=0))
        assert np.all(changed >= edges[1])
        assert np.all(changed < edges[2])

    def test_step_requires_preparation(self, setup):
        rt, model, _ = setup
        with pytest.raises(RuntimeError, match="prepare_column_blocks"):
            rt.run_rotation_step(model, 0, 0.01, 0.01)

    def test_bad_edges(self, setup):
        rt, _, _ = setup
        with pytest.raises(ValueError):
            rt.prepare_column_blocks(np.array([5, 10]))


class TestFrameworkRotation:
    def test_converges_like_q_only(self):
        data = NETFLIX.scaled(15_000).generate(seed=3)
        results = {}
        for mode in (TransmitMode.Q_ONLY, TransmitMode.Q_ROTATE):
            cfg = HCCConfig(
                k=8, epochs=6, learning_rate=0.01, seed=3,
                comm=CommConfig(transmit=mode),
            )
            res = HCCMF(paper_workstation(16), NETFLIX, cfg, ratings=data).train()
            results[mode] = res.rmse_history
        for mode, history in results.items():
            assert history[-1] < history[0], mode
        assert results[TransmitMode.Q_ROTATE][-1] == pytest.approx(
            results[TransmitMode.Q_ONLY][-1], abs=0.1
        )

    def test_rotation_faster_on_movielens(self):
        times = {}
        for mode in (TransmitMode.Q_ONLY, TransmitMode.Q_ROTATE):
            cfg = HCCConfig(k=128, epochs=20, comm=CommConfig(transmit=mode))
            times[mode] = HCCMF(paper_workstation(16), MOVIELENS_20M, cfg).train().total_time
        assert times[TransmitMode.Q_ROTATE] < times[TransmitMode.Q_ONLY]
