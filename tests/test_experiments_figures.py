"""Shape tests for the reproduced tables and figures.

These assert the *qualitative* paper results (who wins, rough factors,
crossovers) rather than absolute seconds — the contract DESIGN.md
section 4 sets out.
"""

import pytest

from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    fig3a,
    fig3b,
    fig5_timing_sequences,
    fig6_async_pipeline,
    fig7,
    fig8,
    fig9,
    table2,
    table4,
    table5,
    table6,
)


@pytest.fixture(scope="module")
def r_fig3a():
    return fig3a()


@pytest.fixture(scope="module")
def r_table4():
    return table4()


@pytest.fixture(scope="module")
def r_fig8():
    return fig8()


@pytest.fixture(scope="module")
def r_table5():
    return table5()


@pytest.fixture(scope="module")
def r_fig9():
    return fig9()


class TestFig3:
    def test_collaborations_beat_their_parts(self, r_fig3a):
        rows = r_fig3a.row_map()
        assert rows["6242-2080"][2] < rows["2080"][2]
        assert rows["6242-2080S"][2] < rows["2080S"][2]
        assert rows["2080-2080S"][2] < rows["2080S"][2]

    def test_bad_configurations_erase_benefit(self, r_fig3a):
        rows = r_fig3a.row_map()
        good = rows["6242-2080S"][2]
        for label in (
            "6242-2080S(Bad communication)",
            "6242-2080S(Unbalanced data)",
            "6242-2080S(Bad threads conf)",
        ):
            assert rows[label][2] > 2 * good

    def test_combo_approaches_v100(self, r_fig3a):
        """The paper's economics argument: 6242-2080S ~ V100 performance."""
        rows = r_fig3a.row_map()
        assert rows["6242-2080S"][2] == pytest.approx(rows["V100"][2], rel=0.25)

    def test_cpu_slowest_single(self, r_fig3a):
        rows = r_fig3a.row_map()
        assert rows["6242"][2] > rows["2080"][2] > rows["2080S"][2]

    def test_prices_fig3b(self):
        rows = fig3b().row_map()
        # near-V100 performance at under 1/3 of the V100's price
        assert rows["6242-2080S"][1] < rows["V100"][1] / 2.5


class TestTable2:
    def test_model_within_percent_of_paper(self):
        for row in table2().rows:
            _, iw_model, dp0_model, iw_paper, dp0_paper = row
            assert iw_model == pytest.approx(iw_paper, rel=0.01)
            assert dp0_model == pytest.approx(dp0_paper, rel=0.02)

    def test_dp0_boost_direction(self):
        for row in table2().rows:
            assert row[2] > row[1]


class TestFig5Fig6:
    def test_fig5_ordering(self):
        r = fig5_timing_sequences()
        times = r.column("epoch_time_s")
        assert times[0] > times[1] > times[2]  # original > DP1 > DP2

    def test_fig5_dp2_hides_sync(self):
        r = fig5_timing_sequences()
        exposed = dict(zip(r.column("configuration"), r.column("exposed_sync_s")))
        assert exposed["optimized, sync hidden (DP2)"] < exposed["optimized, sync ignored (DP1)"]

    def test_fig5_gantts_render(self):
        r = fig5_timing_sequences()
        assert len(r.extra["gantt"]) == 3
        for art in r.extra["gantt"].values():
            assert "legend" in art

    def test_fig6_exposed_comm_shrinks(self):
        r = fig6_async_pipeline(streams=4)
        exposed = r.column("exposed_comm_s")
        assert exposed[0] > exposed[1] > exposed[3]
        # ~1/streams of the serial exposure
        assert exposed[3] == pytest.approx(exposed[0] / 4, rel=0.05)


class TestTable4:
    def test_single_rates_match_paper_cells(self, r_table4):
        rows = r_table4.row_map()
        assert rows["Netflix"][4] == pytest.approx(1_052_866_849, rel=0.01)
        assert rows["R2"][1] == pytest.approx(266_293_289, rel=0.01)

    def test_ideal_is_sum(self, r_table4):
        for row in r_table4.rows:
            assert row[5] == pytest.approx(sum(row[1:5]), rel=0.02)

    def test_utilization_ordering_matches_paper(self, r_table4):
        util = dict(zip(r_table4.column("dataset"), r_table4.column("utilization")))
        assert util["Netflix"] > 0.8
        assert util["R2"] > 0.8
        assert 0.35 < util["R1"] < 0.75
        assert util["MovieLens-20m"] < util["R2"]
        assert util["MovieLens-20m"] == min(util.values())

    def test_hcc_below_ideal(self, r_table4):
        for row in r_table4.rows:
            assert row[6] < row[5]


class TestFig8:
    def test_dp1_cuts_total_vs_dp0(self, r_fig8):
        red = r_fig8.extra["reductions"]
        assert 0.05 < red[("Netflix", 4, "dp1")] < 0.25
        assert 0.05 < red[("R2", 4, "dp1")] < 0.2

    def test_dp2_cuts_total_vs_dp1_on_r1star(self, r_fig8):
        red = r_fig8.extra["reductions"]
        assert red[("R1*", 4, "dp2")] > 0.05

    def test_dp1_balances_computing(self, r_fig8):
        comp = [
            row[5]
            for row in r_fig8.rows
            if row[0] == "Netflix" and row[1] == 4 and row[2] == "dp1"
        ]
        assert max(comp) / min(comp) < 1.12

    def test_dp0_unbalanced_computing(self, r_fig8):
        comp = [
            row[5]
            for row in r_fig8.rows
            if row[0] == "Netflix" and row[1] == 4 and row[2] == "dp0"
        ]
        assert max(comp) / min(comp) > 1.1


class TestTable5:
    def test_q_only_speedups_by_dataset(self, r_table5):
        rows = {(r[0], r[1], r[2]): r for r in r_table5.rows}
        netflix = rows[("COMM", "Netflix", "Q")][4]
        r1 = rows[("COMM", "R1", "Q")][4]
        r2 = rows[("COMM", "R2", "Q")][4]
        # paper: ~18x Netflix >> ~7.5x R2 > ~2.9x R1
        assert netflix > r2 > r1
        assert r1 == pytest.approx(2.7, rel=0.2)
        assert netflix > 15

    def test_fp16_doubles_q_only(self, r_table5):
        rows = {(r[0], r[1], r[2]): r for r in r_table5.rows}
        for ds in ("Netflix", "R1", "R2"):
            q = rows[("COMM", ds, "Q")][3]
            half = rows[("COMM", ds, "half-Q")][3]
            assert q / half == pytest.approx(2.0, rel=0.05)

    def test_comm_p_much_slower(self, r_table5):
        rows = {(r[0], r[1], r[2]): r for r in r_table5.rows}
        for ds in ("Netflix", "R1", "R2"):
            ratio = rows[("COMM-P", ds, "P&Q")][3] / rows[("COMM", ds, "P&Q")][3]
            assert 5.5 < ratio < 8.5

    def test_same_trend_under_both_backends(self, r_table5):
        """Section 4.4: 'the same communication performance trend is
        reflected in each strategy' under COMM and COMM-P."""
        rows = {(r[0], r[1], r[2]): r for r in r_table5.rows}
        for ds in ("Netflix", "R1", "R2"):
            a = rows[("COMM", ds, "Q")][4]
            b = rows[("COMM-P", ds, "Q")][4]
            assert a == pytest.approx(b, rel=0.15)


class TestFig9:
    def test_power_monotone_in_workers(self, r_fig9):
        """Computing power grows with each added worker — up to a 5%
        plateau tolerance on sync-bound datasets, where the time-shared
        4th worker's extra merge roughly cancels its capacity (the very
        reason the paper's Figure 9(c) stops R1 at three workers)."""
        for ds in ("Netflix", "R2", "R1", "R1*"):
            by_scale = {}
            for row in r_fig9.rows:
                if row[0] == ds:
                    by_scale[row[1]] = row[5]
            scales = sorted(by_scale)
            for a, b in zip(scales, scales[1:]):
                assert by_scale[b] > 0.95 * by_scale[a]
            assert by_scale[scales[-1]] > by_scale[scales[0]]

    def test_ordinary_worker_efficiency_netflix(self, r_fig9):
        eff = r_fig9.extra["worker_efficiency"]
        for (ds, worker), e in eff.items():
            if ds == "Netflix" and "cpu0w" not in worker:
                assert e > 0.7  # paper: >80% for ordinary workers
            if ds == "Netflix" and "cpu0w" in worker:
                assert e > 0.55  # paper: >70% for the special worker

    def test_r1_workers_degraded(self, r_fig9):
        eff = r_fig9.extra["worker_efficiency"]
        r1_vals = [e for (ds, _), e in eff.items() if ds == "R1"]
        netflix_vals = [e for (ds, _), e in eff.items() if ds == "Netflix"]
        assert max(r1_vals) < min(netflix_vals)

    def test_r1_stops_at_three_workers(self, r_fig9):
        scales = {row[1] for row in r_fig9.rows if row[0] == "R1"}
        assert max(scales) == 3


class TestTable6:
    def test_second_gpu_barely_helps(self):
        r = table6()
        single = r.extra["totals"]["single"]
        dual = r.extra["totals"]["dual"]
        # compute halves but total shrinks far less (paper 0.559 -> 0.449)
        assert dual < single
        assert dual / single > 0.6

    def test_comm_does_not_shrink_with_workers(self):
        r = table6()
        rows = [row for row in r.rows if row[0].startswith("HCC")]
        single_pull = [row[2] for row in rows if row[0] == "HCC 2080S"][0]
        dual_pulls = [row[2] for row in rows if row[0] == "HCC 2080S-2080"]
        for p in dual_pulls:
            assert p == pytest.approx(single_pull, rel=0.05)


class TestFig7Scaled:
    """Fig 7 at reduced scale so the whole module stays fast."""

    @pytest.fixture(scope="class")
    def result(self):
        return fig7(max_nnz=12_000, epochs=10, k=8, seed=1)

    def test_all_methods_converge(self, result):
        for ds, methods in result.extra["curves"].items():
            for name, series in methods.items():
                assert series["rmse"][-1] < series["rmse"][0], (ds, name)

    def test_hcc_fastest(self, result):
        for row in result.rows:
            _, method, _, _, speed, _ = row
            if method != "HCC":
                assert speed > 1.0

    def test_speedup_ordering_matches_paper(self, result):
        """FPSGD is always the slowest; CuMF sits between."""
        by = {(r[0], r[1]): r[4] for r in result.rows}
        for ds in ("Netflix", "R1", "R2"):
            assert by[(ds, "FPSGD")] > by[(ds, "cuMF_SGD")] >= 1.0

    def test_time_axes_consistent(self, result):
        for methods in result.extra["curves"].values():
            for series in methods.values():
                t = series["time"]
                assert all(b > a for a, b in zip(t, t[1:]))


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig3a", "fig3b", "table2", "fig5", "fig6", "fig7",
            "table4", "fig8", "table5", "fig9", "table6",
        }
