"""Integration tests for the fault-tolerant engine (docs/resilience.md).

These spawn real OS processes and inject real failures (process death,
stragglers, corrupted wire payloads), so sizes are small and barrier
timeouts short.  Worker death is detected from exit codes, not the
timeout, so the kill tests stay fast.
"""

import multiprocessing as mp
import signal
import time

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint
from repro.core.config import HCCConfig, RecoveryPolicy
from repro.core.framework import HCCMF
from repro.core.partition import PartitionPlan
from repro.data.datasets import NETFLIX
from repro.engine import ProcessBackend, QOnlyChannel, WorkerSyncError
from repro.engine.pipeline import AdditiveDeltaSync, EpochEngine
from repro.hardware.topology import paper_workstation
from repro.parallel.executor import SharedMemoryTrainer
from repro.resilience import FaultPlan, TrainingAborted, WorkerState


@pytest.fixture(scope="module")
def data():
    return NETFLIX.scaled(4000).generate(seed=4)


#: no backoff sleeps in tests
FAST_RETRY = dict(backoff_base_s=0.0)


class TestKillRecovery:
    def test_kill_redistributes_and_converges(self, data):
        """The headline guarantee: kill 1 of 3 workers mid-run and the
        run still completes every epoch on the survivors, with final
        RMSE within 5% of the fault-free baseline."""
        kw = dict(k=8, n_workers=3, lr=0.01, seed=0, barrier_timeout_s=5.0)
        baseline = SharedMemoryTrainer(data, **kw).train(epochs=4)
        res = SharedMemoryTrainer(
            data,
            fault_plan=FaultPlan().kill(2, epoch=1),
            recovery=RecoveryPolicy(min_workers=2, **FAST_RETRY),
            **kw,
        ).train(epochs=4)

        assert len(res.rmse_history) == 4
        assert res.n_workers == 2  # degraded: the dead shard moved
        summary = res.resilience
        assert summary is not None
        assert summary.redistributions == 1
        assert summary.degraded_epochs >= 1
        assert summary.final_workers == 2
        assert not summary.clean
        assert any("redistribute" in line for line in summary.failures)
        rel = abs(res.rmse_history[-1] - baseline.rmse_history[-1])
        rel /= baseline.rmse_history[-1]
        assert rel <= 0.05
        assert np.all(np.isfinite(res.model.P))
        assert np.all(np.isfinite(res.model.Q))

    def test_hard_kill_detected_from_exit_code(self, data):
        """A hard kill (os._exit, no interpreter teardown) travels the
        same detection path: exit code lands, shard redistributes."""
        res = SharedMemoryTrainer(
            data, k=8, n_workers=3, lr=0.01, seed=0, barrier_timeout_s=5.0,
            fault_plan=FaultPlan().kill(1, epoch=1, hard=True),
            recovery=RecoveryPolicy(min_workers=2, **FAST_RETRY),
        ).train(epochs=3)
        assert len(res.rmse_history) == 3
        assert res.n_workers == 2
        assert res.resilience.redistributions == 1

    def test_death_below_min_workers_aborts_with_checkpoint(self, data, tmp_path):
        """Too few survivors: the run checkpoints what it has and raises
        TrainingAborted naming the epoch and checkpoint."""
        path = tmp_path / "abort-ckpt"
        with pytest.raises(TrainingAborted) as ei:
            SharedMemoryTrainer(
                data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=5.0,
                fault_plan=FaultPlan().kill(1, epoch=1),
                recovery=RecoveryPolicy(min_workers=2, **FAST_RETRY),
                checkpoint_every=1, checkpoint_path=path,
            ).train(epochs=4)
        err = ei.value
        assert err.epoch == 1  # epoch 0 completed, epoch 1 failed
        assert str(path) in str(err)
        saved = load_checkpoint(path)
        assert saved.epoch == 1
        assert len(saved.rmse_history) == 1


class TestTransientRecovery:
    def test_corrupt_payload_retries_same_workers(self, data):
        """NaN push payload: validation rejects the epoch before any
        merge, the epoch retries, no worker is removed."""
        res = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=5.0,
            fault_plan=FaultPlan().corrupt_payload(1, epoch=1),
            recovery=RecoveryPolicy(max_retries=2, **FAST_RETRY),
        ).train(epochs=3)
        assert len(res.rmse_history) == 3
        assert res.n_workers == 2  # nobody died
        summary = res.resilience
        assert summary.retries == 1
        assert summary.redistributions == 0
        assert any("WirePayloadError" in line for line in summary.failures)

    def test_straggler_classified_and_retried(self, data):
        """A worker sleeping past barrier_timeout_s is a straggler, not
        a corpse: WorkerSyncError -> retry with the same worker count."""
        res = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=2.0,
            fault_plan=FaultPlan().delay_barrier(0, epoch=1, seconds=8.0),
            recovery=RecoveryPolicy(max_retries=1, **FAST_RETRY),
        ).train(epochs=3)
        assert len(res.rmse_history) == 3
        assert res.n_workers == 2
        summary = res.resilience
        assert summary.retries == 1
        assert any("straggling" in line for line in summary.failures)

    def test_dropped_payload_is_silently_tolerated(self, data):
        """A dropped push merges a zero delta: no error, no recovery
        action, the run just loses that worker-epoch of progress."""
        res = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=5.0,
            fault_plan=FaultPlan().drop_payload(1, epoch=1),
            recovery=RecoveryPolicy(**FAST_RETRY),
        ).train(epochs=3)
        assert len(res.rmse_history) == 3
        assert res.resilience.clean

    def test_retries_exhausted_aborts(self, data):
        with pytest.raises(TrainingAborted) as ei:
            SharedMemoryTrainer(
                data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=5.0,
                fault_plan=FaultPlan().corrupt_payload(0, epoch=0),
                recovery=RecoveryPolicy(max_retries=0, **FAST_RETRY),
            ).train(epochs=2)
        assert ei.value.epoch == 0
        assert ei.value.checkpoint_path is None
        assert "no checkpoint path" in str(ei.value)

    def test_no_recovery_policy_raises_raw_error(self, data):
        """Without recovery= the engine keeps its historical contract:
        the failure propagates unchanged."""
        from repro.engine import WirePayloadError

        with pytest.raises(WirePayloadError):
            SharedMemoryTrainer(
                data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=5.0,
                fault_plan=FaultPlan().corrupt_payload(0, epoch=0),
            ).train(epochs=2)

    def test_clean_run_with_policy_reports_clean_summary(self, data):
        res = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0,
            recovery=RecoveryPolicy(**FAST_RETRY),
        ).train(epochs=2)
        assert res.resilience is not None
        assert res.resilience.clean
        assert res.resilience.final_workers == 2

    def test_recovery_policy_rides_config(self, data):
        cfg = HCCConfig(recovery=RecoveryPolicy(max_retries=1, **FAST_RETRY))
        trainer = SharedMemoryTrainer(data, k=8, n_workers=2, config=cfg)
        assert trainer.recovery is cfg.recovery


class TestRealDeadWorkerDiagnostics:
    def test_externally_killed_worker_is_named_and_classified(self, data):
        """Not injection: SIGKILL a live worker process from outside and
        check the whole diagnostic chain — WorkerSyncError names the
        rank, health_report calls it dead, survivors are reaped."""
        backend = ProcessBackend(
            data, k=8, n_workers=2, lr=0.01, seed=0, barrier_timeout_s=30.0
        )
        plan = PartitionPlan("dp0", (0.5, 0.5))
        backend.open(plan, QOnlyChannel(), AdditiveDeltaSync(), None, 3)
        try:
            # run epoch 0 to completion so both workers are provably live
            backend.pull(0)
            backend.push(0)
            backend.sync(0)

            victim = backend._procs[1]
            victim.kill()
            victim.join(timeout=10.0)

            with pytest.raises(WorkerSyncError) as ei:
                backend.pull(1)  # next rendezvous can never complete
            err = ei.value
            assert err.epoch == 1
            assert 1 in err.missing_ranks
            assert "worker-1" in str(err)

            report = backend.health_report(err)
            by_rank = {w.rank: w for w in report.workers}
            assert by_rank[1].state is WorkerState.DEAD
            assert by_rank[1].exitcode is not None
            assert by_rank[0].state is not WorkerState.DEAD
        finally:
            backend.close()
        # teardown reaped everyone, survivor included
        assert all(not proc.is_alive() for proc in backend._procs)


def _ignore_sigterm(started):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    started.set()
    while True:
        time.sleep(0.05)


class TestTeardownEscalation:
    def test_terminate_escalates_to_kill(self):
        """A worker masking SIGTERM must still be reaped: terminate(),
        a bounded join, then kill() — no zombie holding shm mappings."""
        ctx = mp.get_context("fork")
        started = ctx.Event()
        proc = ctx.Process(target=_ignore_sigterm, args=(started,))
        proc.start()
        try:
            assert started.wait(timeout=10.0)
            ProcessBackend._terminate_stragglers([proc], grace_s=0.5)
            assert not proc.is_alive()
            assert proc.exitcode == -signal.SIGKILL
        finally:
            if proc.is_alive():  # pragma: no cover - failure path
                proc.kill()
            proc.join(timeout=5.0)

    def test_cooperative_worker_needs_no_kill(self):
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=time.sleep, args=(60,))
        proc.start()
        ProcessBackend._terminate_stragglers([proc], grace_s=5.0)
        assert not proc.is_alive()
        assert proc.exitcode == -signal.SIGTERM


class TestCheckpointResume:
    def test_process_plane_resume_matches_straight_run(self, data, tmp_path):
        """Stop at epoch 2, resume to 4: the resumed run continues the
        exact RMSE trajectory of the uninterrupted run (workers replay
        their per-epoch RNG draws past the offset)."""
        kw = dict(k=8, n_workers=2, lr=0.01, seed=0)
        path = tmp_path / "ckpt"
        straight = SharedMemoryTrainer(data, **kw).train(epochs=4)
        SharedMemoryTrainer(
            data, checkpoint_every=2, checkpoint_path=path, **kw
        ).train(epochs=2)
        resumed = SharedMemoryTrainer(data, resume_from=path, **kw).train(epochs=4)

        assert resumed.rmse_history == straight.rmse_history
        assert resumed.resilience.resumed_from_epoch == 2
        assert resumed.resilience.checkpoints_written == 0

    def test_sim_plane_resume_is_bitwise_identical(self, data, tmp_path):
        """The sim plane is fully deterministic, so resume must be exact
        to the bit, not just to a tolerance."""
        platform = paper_workstation(16)
        cfg = HCCConfig(k=8, epochs=6, learning_rate=0.01, seed=1)
        path = tmp_path / "sim-ckpt"

        straight = HCCMF(platform, NETFLIX, cfg, ratings=data).train()
        HCCMF(platform, NETFLIX, cfg, ratings=data).train(
            epochs=3, checkpoint_every=3, checkpoint_path=path
        )
        resumed = HCCMF(platform, NETFLIX, cfg, ratings=data).train(
            epochs=6, resume_from=path
        )

        assert resumed.rmse_history == straight.rmse_history
        assert np.array_equal(resumed.model.P, straight.model.P)
        assert np.array_equal(resumed.model.Q, straight.model.Q)

    def test_checkpoint_cadence(self, data, tmp_path):
        path = tmp_path / "cadence"
        res = SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0,
            checkpoint_every=2, checkpoint_path=path,
        ).train(epochs=5)
        # epochs 2, 4 hit the cadence; the run does not force a final write
        assert res.resilience.checkpoints_written == 2
        assert load_checkpoint(path).epoch == 4

    def test_resume_past_target_rejected(self, data, tmp_path):
        path = tmp_path / "done"
        SharedMemoryTrainer(
            data, k=8, n_workers=2, lr=0.01, seed=0,
            checkpoint_every=3, checkpoint_path=path,
        ).train(epochs=3)
        with pytest.raises(ValueError, match="already at epoch"):
            SharedMemoryTrainer(
                data, k=8, n_workers=2, lr=0.01, seed=0, resume_from=path
            ).train(epochs=3)

    def test_engine_validates_checkpoint_config(self, data):
        backend = ProcessBackend(data, k=8, n_workers=2, seed=0)
        with pytest.raises(ValueError, match="checkpoint_path"):
            EpochEngine(backend, checkpoint_every=2)
        with pytest.raises(ValueError, match="non-negative"):
            EpochEngine(backend, checkpoint_every=-1, checkpoint_path="x")

    def test_facade_rejects_checkpointing_without_ratings(self):
        hcc = HCCMF(paper_workstation(16), NETFLIX, HCCConfig(k=8, epochs=2))
        with pytest.raises(ValueError, match="ratings"):
            hcc.train(checkpoint_every=1, checkpoint_path="x")


class TestResilienceTelemetry:
    def test_counters_and_events_flow(self, data):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        SharedMemoryTrainer(
            data, k=8, n_workers=3, lr=0.01, seed=0, barrier_timeout_s=5.0,
            telemetry=telemetry,
            fault_plan=FaultPlan().kill(2, epoch=1),
            recovery=RecoveryPolicy(min_workers=2, **FAST_RETRY),
        ).train(epochs=3)

        by_name = {s.name: s.value for s in telemetry.registry.samples()}
        assert by_name["resilience_redistributions_total"] == 1
        assert by_name["resilience_degraded_epochs_total"] >= 1
        kinds = [e["event"] for e in telemetry.registry.events]
        assert "resilience_failure" in kinds
        assert "resilience_redistribution" in kinds

    def test_timeline_preserves_all_attempts(self, data):
        """Spans from the failed attempt survive the backend re-open:
        the assembled timeline carries both attempt 0 (up to the kill)
        and attempt 1 (the post-redistribution rerun), tagged apart."""
        from repro.hardware.timeline import Phase
        from repro.obs import Telemetry

        telemetry = Telemetry()
        SharedMemoryTrainer(
            data, k=8, n_workers=3, lr=0.01, seed=0, barrier_timeout_s=5.0,
            telemetry=telemetry,
            fault_plan=FaultPlan().kill(2, epoch=1),
            recovery=RecoveryPolicy(min_workers=2, **FAST_RETRY),
        ).train(epochs=3)

        spans = telemetry.timeline.spans
        attempts = {s.attempt for s in spans}
        assert {0, 1} <= attempts
        # the failed attempt still shows epoch-0 work from every rank
        attempt0_workers = {
            s.worker for s in spans
            if s.attempt == 0 and s.epoch == 0 and s.phase is Phase.COMPUTE
        }
        assert len(attempt0_workers) == 3
        # the rerun covers the originally-failed epoch on the survivors
        attempt1_epochs = {s.epoch for s in spans if s.attempt == 1}
        assert 1 in attempt1_epochs
        # timestamps share one origin: no retry span predates the run
        assert min(s.start for s in spans) >= 0.0
