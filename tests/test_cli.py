"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "Netflix"
        assert args.partition == "auto"
        assert not args.fp16

    def test_bad_partition_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--partition", "dp9"])

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert not args.json
        assert args.min_severity == "warning"

    def test_lint_bad_severity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--min-severity", "fatal"])

    def test_race_check_defaults(self):
        args = build_parser().parse_args(["race-check"])
        assert args.workers == 3
        assert not args.inject_overlap


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Netflix" in out
        assert "99072112" in out

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "2080S" in out
        assert "UPI" in out

    def test_train_timing_only(self, capsys):
        assert main([
            "train", "--timing-only", "--epochs", "3", "--k", "128",
        ]) == 0
        out = capsys.readouterr().out
        assert "partition: dp1" in out
        assert "rmse" not in out

    def test_train_numeric_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main([
            "train", "--dataset", "netflix", "--nnz", "4000",
            "--epochs", "2", "--k", "8", "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "rmse:" in out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_train_q_rotate(self, capsys):
        assert main([
            "train", "--dataset", "MovieLens-20m", "--nnz", "4000",
            "--epochs", "2", "--k", "8", "--transmit", "q-rotate",
        ]) == 0
        assert "rmse:" in capsys.readouterr().out

    def test_analyze_synthetic(self, capsys):
        assert main(["analyze", "--dataset", "R2", "--nnz", "4000"]) == 0
        out = capsys.readouterr().out
        assert "reuse" in out and "recommended" in out

    def test_analyze_file(self, capsys, tmp_path):
        from repro.data.datasets import NETFLIX
        from repro.data.io import save_text

        path = tmp_path / "r.txt"
        save_text(NETFLIX.scaled(2000).generate(seed=0), path)
        assert main(["analyze", "--file", str(path)]) == 0
        assert "Gini" in capsys.readouterr().out

    def test_autotune(self, capsys):
        assert main(["autotune", "--dataset", "MovieLens-20m"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "advice:" in out

    def test_autotune_no_rotation(self, capsys):
        assert main(["autotune", "--no-rotation"]) == 0
        assert "q-rotate" not in capsys.readouterr().out

    def test_reproduce_selected(self, capsys):
        assert main(["reproduce", "fig3b"]) == 0
        assert "[fig3b]" in capsys.readouterr().out

    def test_reproduce_unknown_id(self, capsys):
        assert main(["reproduce", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_ablate_selected(self, capsys):
        assert main(["ablate", "lambda"]) == 0
        assert "[ablate-lambda]" in capsys.readouterr().out

    def test_ablate_unknown_id(self, capsys):
        assert main(["ablate", "nope"]) == 2
        assert "unknown ablation" in capsys.readouterr().err

    def test_lint_src_is_clean(self, capsys):
        """Acceptance gate: the shipped tree lints clean at the default
        (warning) threshold."""
        assert main(["lint", "src"]) == 0
        assert "hcclint:" in capsys.readouterr().out

    def test_lint_reports_violations(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "HCC105" in out and "mutable-default" in out

    def test_lint_json_output(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        assert main(["lint", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["issues"][0]["rule_id"] == "HCC105"

    def test_lint_min_severity_gates_exit_code(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        assert main(["lint", "--min-severity", "error", str(bad)]) == 1
        capsys.readouterr()
        # a warning-level finding passes under --min-severity error
        warn = tmp_path / "warn.py"
        warn.write_text(
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass FooPlan:\n    x: int = 0\n"
        )
        assert main(["lint", "--min-severity", "error", str(warn)]) == 0

    def test_lint_rule_catalogue(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "HCC101" in out and "shm-lifecycle" in out

    def test_lint_missing_path(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert capsys.readouterr().err

    def test_race_check(self, capsys):
        assert main(["race-check", "--workers", "2", "--nnz", "800",
                     "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "race-check: PASS" in out

    def test_race_check_inject_overlap(self, capsys):
        assert main(["race-check", "--workers", "2", "--nnz", "800",
                     "--epochs", "1", "--inject-overlap"]) == 0
        out = capsys.readouterr().out
        assert "injected overlap detected: yes" in out
        assert "race-check: PASS" in out


class TestObservabilityCli:
    def test_train_parser_telemetry_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.executor == "model"
        assert args.metrics is None
        assert not args.drift

    def test_obs_report_parser(self):
        args = build_parser().parse_args(["obs-report", "--trace", "t.json"])
        assert args.trace == "t.json"
        assert args.metrics is None

    def test_train_metrics_written(self, capsys, tmp_path):
        metrics = tmp_path / "m.jsonl"
        assert main([
            "train", "--nnz", "4000", "--epochs", "2", "--k", "8",
            "--metrics", str(metrics),
        ]) == 0
        assert "metric lines" in capsys.readouterr().out
        lines = [json.loads(line) for line in metrics.read_text().splitlines()]
        names = {rec.get("name") for rec in lines if rec["type"] == "sample"}
        assert "epoch_rmse" in names

    def test_train_drift_report(self, capsys):
        assert main([
            "train", "--nnz", "4000", "--epochs", "2", "--k", "8", "--drift",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost-model drift report" in out
        assert "computing" in out

    def test_train_drift_requires_numeric_plane(self, capsys):
        assert main(["train", "--timing-only", "--drift"]) == 2
        assert "drift" in capsys.readouterr().err

    def test_process_executor_rejects_timing_only(self, capsys):
        assert main(["train", "--executor", "process", "--timing-only"]) == 2
        assert capsys.readouterr().err

    def test_process_executor_full_telemetry(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main([
            "train", "--executor", "process", "--workers", "2",
            "--nnz", "2000", "--epochs", "2", "--k", "8",
            "--trace", str(trace), "--metrics", str(metrics), "--drift",
        ]) == 0
        out = capsys.readouterr().out
        assert "rmse:" in out
        assert "cost-model drift report" in out
        events = json.loads(trace.read_text())["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert lanes == {"worker-0", "worker-1", "server"}
        assert metrics.read_text().strip()

    def test_obs_report_requires_an_input(self, capsys):
        assert main(["obs-report"]) == 2
        assert capsys.readouterr().err

    def test_obs_report_renders_trace_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        assert main([
            "train", "--nnz", "4000", "--epochs", "2", "--k", "8",
            "--trace", str(trace), "--metrics", str(metrics),
        ]) == 0
        capsys.readouterr()
        assert main([
            "obs-report", "--trace", str(trace), "--metrics", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "spans," in out  # "trace: ... (N spans, makespan ...)"
        assert "epoch_rmse" in out

    def test_obs_report_missing_file(self, capsys, tmp_path):
        assert main(["obs-report", "--trace", str(tmp_path / "no.json")]) == 2
        assert capsys.readouterr().err

    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.out == "BENCH_train.json"
        assert args.quick is False
        assert args.threshold == pytest.approx(5.0)
        assert args.suites == "kernel,epoch,wire"

    def test_bench_quick_wire_suite_writes_valid_document(
        self, capsys, tmp_path
    ):
        from repro.obs.schema import validate_bench

        out = tmp_path / "BENCH_train.json"
        assert main([
            "bench", "--quick", "--suites", "wire", "--out", str(out),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        assert validate_bench(json.loads(out.read_text())) == []

    def test_bench_unknown_suite(self, capsys):
        assert main(["bench", "--suites", "gpu"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_bench_self_compare_passes(self, capsys, tmp_path):
        out = tmp_path / "b.json"
        assert main([
            "bench", "--quick", "--suites", "wire", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--compare", str(out), "--against", str(out),
        ]) == 0
        assert "compare: OK" in capsys.readouterr().out

    def test_bench_compare_detects_injected_regression(
        self, capsys, tmp_path
    ):
        out = tmp_path / "b.json"
        assert main([
            "bench", "--quick", "--suites", "wire", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        for metric in doc["metrics"]:
            # halve every throughput: unambiguous regression
            metric["repeats"] = [r / 2 for r in metric["repeats"]]
            for key in ("mean", "stdev", "min", "max"):
                metric[key] = metric[key] / 2
        slowed = tmp_path / "slowed.json"
        slowed.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main([
            "bench", "--compare", str(out), "--against", str(slowed),
        ]) == 3
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_compare_missing_file(self, capsys, tmp_path):
        assert main([
            "bench", "--compare", str(tmp_path / "no.json"),
            "--against", str(tmp_path / "no.json"),
        ]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_bench_profile_and_hotpaths_report(self, capsys, tmp_path):
        hotpaths = tmp_path / "hp.json"
        assert main([
            "bench", "--profile", "--quick", "--nnz", "2000",
            "--profile-out", str(hotpaths), "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "attributed to engine stages" in out
        assert "compute" in out
        assert main(["obs-report", "--hotpaths", str(hotpaths)]) == 0
        assert "hotpaths:" in capsys.readouterr().out

    def test_obs_report_bad_hotpaths_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"other\"}")
        assert main(["obs-report", "--hotpaths", str(bad)]) == 2
        assert "cannot read hotpaths" in capsys.readouterr().err

    def test_fault_smoke_parser_defaults(self):
        args = build_parser().parse_args(["fault-smoke"])
        assert args.workers == 3
        assert args.epochs == 4
        assert args.tolerance == pytest.approx(0.05)
        assert args.barrier_timeout == pytest.approx(5.0)

    def test_fault_smoke_passes(self, capsys):
        assert main([
            "fault-smoke", "--nnz", "4000", "--epochs", "3", "--k", "8",
            "--workers", "2", "--barrier-timeout", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault-smoke: OK" in out
        assert "redistributions=1" in out

    def test_fault_smoke_needs_two_workers(self, capsys):
        assert main(["fault-smoke", "--workers", "1"]) == 2
        assert "at least 2 workers" in capsys.readouterr().err

    def test_chaos_parity_parser_defaults(self):
        args = build_parser().parse_args(["chaos-parity"])
        assert args.seed == 0
        assert args.process_scenarios == -1
        assert args.sim_scenarios == 8
        assert args.rmse_tol == pytest.approx(0.08)
        assert args.drift_bound == pytest.approx(1.0)

    def test_chaos_parity_small_gate_passes(self, capsys):
        # one cross-plane scenario, the rest of the matrix sim-only,
        # plus a small randomized sweep — the check.sh stage's shape
        assert main([
            "chaos-parity", "--seed", "0",
            "--process-scenarios", "1", "--sim-scenarios", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario kill-soft" in out
        assert "(sim only)" in out
        assert "randomized sweep: 3/3 scenarios clean" in out
        assert "chaos-parity: OK" in out
