"""Unit tests for the ALS comparator and biased MF."""

import numpy as np
import pytest

from repro.data.datasets import NETFLIX
from repro.data.synthetic import SyntheticConfig, generate_low_rank
from repro.mf.als import ALS, als_flops_per_rating
from repro.mf.biased import BiasedMF
from repro.mf.sgd import HogwildSGD


class TestALS:
    def test_converges_fast_per_epoch(self, small_ratings):
        a = ALS(k=8, reg=0.1, seed=0)
        a.fit(small_ratings, epochs=4)
        assert a.history.rmse[-1] < a.history.rmse[0]
        # closed-form solves: big drop in very few epochs
        assert a.history.rmse[1] < 0.7 * a.history.rmse[0]

    def test_beats_sgd_per_epoch(self, small_ratings):
        a = ALS(k=8, reg=0.1, seed=0)
        a.fit(small_ratings, epochs=4)
        h = HogwildSGD(k=8, lr=0.01, seed=0)
        h.fit(small_ratings, epochs=4)
        assert a.history.rmse[-1] < h.history.rmse[-1]

    def test_exact_on_noiseless_low_rank(self):
        """Hand-built rank-3 data (no clipping/quantization artifacts):
        ALS with k >= rank must recover it almost exactly."""
        from repro.data.ratings import RatingMatrix

        rng = np.random.default_rng(2)
        u = rng.standard_normal((50, 3))
        v = rng.standard_normal((3, 40))
        dense = (u @ v).astype(np.float32)
        flat = rng.choice(50 * 40, size=1200, replace=False)
        data = RatingMatrix(50, 40, flat // 40, flat % 40, dense[flat // 40, flat % 40])
        a = ALS(k=6, reg=1e-5, seed=0)
        a.fit(data, epochs=10)
        assert a.history.rmse[-1] < 0.05

    def test_regularization_shrinks_factors(self, small_ratings):
        weak = ALS(k=6, reg=1e-4, seed=0)
        strong = ALS(k=6, reg=5.0, seed=0)
        weak.fit(small_ratings, epochs=3)
        strong.fit(small_ratings, epochs=3)
        assert np.linalg.norm(strong.model.P) < np.linalg.norm(weak.model.P)

    def test_parameters_finite(self, small_ratings):
        a = ALS(k=8, reg=0.05, seed=0)
        a.fit(small_ratings, epochs=3)
        assert np.all(np.isfinite(a.model.P))
        assert np.all(np.isfinite(a.model.Q))

    def test_validation(self):
        with pytest.raises(ValueError):
            ALS(k=0)
        with pytest.raises(ValueError):
            ALS(k=4, reg=-1)

    def test_flops_model(self):
        # larger k costs quadratically-plus per rating
        assert als_flops_per_rating(64, 100) > 10 * als_flops_per_rating(16, 100)
        # sparse entities pay more amortized solve cost
        assert als_flops_per_rating(32, 5) > als_flops_per_rating(32, 500)
        with pytest.raises(ValueError):
            als_flops_per_rating(0, 10)


class TestBiasedMF:
    def test_converges(self, small_ratings):
        b = BiasedMF(k=8, lr=0.02, seed=0)
        b.fit(small_ratings, epochs=8)
        assert b.history.rmse[-1] < b.history.rmse[0]

    def test_biases_learn_on_biased_data(self):
        """With injected user/item bias structure, BiasedMF must learn
        non-trivial bias vectors."""
        cfg = SyntheticConfig(
            m=300, n=120, nnz=9000, rank=4, noise=0.05,
            rating_min=0.0, rating_max=10.0, rating_step=0.0,
            user_bias_std=1.5, item_bias_std=1.0,
        )
        data = generate_low_rank(cfg, seed=4)
        b = BiasedMF(k=6, lr=0.03, seed=0)
        b.fit(data, epochs=15)
        assert float(np.std(b.user_bias)) > 0.2
        assert b.history.rmse[-1] < b.history.rmse[0]

    def test_recovers_ground_truth_biases(self):
        """Pure bias-structured data (rank 0 + biases): the learned user
        biases must correlate strongly with the injected ones."""
        from repro.data.ratings import RatingMatrix

        rng = np.random.default_rng(7)
        m, n, nnz = 150, 80, 5000
        bu = rng.normal(0.0, 1.5, m)
        bi = rng.normal(0.0, 1.0, n)
        mu = 5.0
        flat = rng.choice(m * n, size=nnz, replace=False)
        rows, cols = flat // n, flat % n
        vals = (mu + bu[rows] + bi[cols] + rng.normal(0, 0.05, nnz)).astype(np.float32)
        data = RatingMatrix(m, n, rows, cols, vals)
        b = BiasedMF(k=4, lr=0.05, seed=0)
        b.fit(data, epochs=25)
        corr = np.corrcoef(b.user_bias, bu)[0, 1]
        assert corr > 0.8

    def test_mu_is_global_mean(self, small_ratings):
        b = BiasedMF(k=4, seed=0)
        b.fit(small_ratings, epochs=1)
        assert b.mu == pytest.approx(small_ratings.mean_rating())

    def test_predict_requires_fit(self):
        b = BiasedMF(k=4)
        with pytest.raises(RuntimeError):
            b.predict(np.array([0]), np.array([0]))

    def test_rmse_consistent_with_predict(self, small_ratings):
        b = BiasedMF(k=4, seed=0)
        b.fit(small_ratings, epochs=2)
        err = small_ratings.vals - b.predict(small_ratings.rows, small_ratings.cols)
        assert b.rmse(small_ratings) == pytest.approx(
            float(np.sqrt(np.mean(err.astype(np.float64) ** 2))), rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedMF(k=0)
        with pytest.raises(ValueError):
            BiasedMF(k=4, batch_size=0)


class TestSyntheticBiases:
    def test_bias_injection_changes_values(self):
        base = SyntheticConfig(m=80, n=60, nnz=1000, rating_step=0.0, noise=0.0)
        biased = SyntheticConfig(m=80, n=60, nnz=1000, rating_step=0.0, noise=0.0,
                                 user_bias_std=2.0, item_bias_std=2.0)
        a = generate_low_rank(base, seed=1)
        b = generate_low_rank(biased, seed=1)
        # same coordinates, shifted values
        np.testing.assert_array_equal(a.rows, b.rows)
        assert not np.allclose(a.vals, b.vals)

    def test_user_rows_shift_together(self):
        cfg = SyntheticConfig(m=50, n=40, nnz=1500, rating_min=0, rating_max=100,
                              rating_step=0.0, noise=0.0, user_bias_std=8.0,
                              row_skew=0.0, col_skew=0.0)
        base_cfg = SyntheticConfig(m=50, n=40, nnz=1500, rating_min=0, rating_max=100,
                                   rating_step=0.0, noise=0.0,
                                   row_skew=0.0, col_skew=0.0)
        biased = generate_low_rank(cfg, seed=3)
        plain = generate_low_rank(base_cfg, seed=3)
        # per-user mean deltas should have larger spread under bias
        def user_means(r):
            sums = np.bincount(r.rows, weights=r.vals, minlength=r.m)
            cnts = np.bincount(r.rows, minlength=r.m).clip(min=1)
            return sums / cnts
        spread_biased = np.std(user_means(biased) - user_means(plain))
        assert spread_biased > 1.0
